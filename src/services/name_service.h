// The Apiary name service: string names -> logical service ids, so loosely
// coupled accelerators can discover each other without compile-time wiring.
#ifndef SRC_SERVICES_NAME_SERVICE_H_
#define SRC_SERVICES_NAME_SERVICE_H_

#include <map>
#include <string>

#include "src/core/accelerator.h"
#include "src/services/opcodes.h"
#include "src/stats/summary.h"

namespace apiary {

class NameService : public Accelerator {
 public:
  void OnMessage(const Message& msg, TileApi& api) override;

  std::string name() const override { return "name_service"; }
  uint32_t LogicCellCost() const override { return 5000; }

  const CounterSet& counters() const { return counters_; }

 private:
  std::map<std::string, ServiceId> registry_;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_SERVICES_NAME_SERVICE_H_
