// Experiment E1: direct-attached Apiary vs host-mediated (Coyote-style)
// baseline.
//
// Paper basis (Section 1): "By bypassing the CPU, a direct-attached
// accelerator reduces CPU overhead, lowers latencies, and further reduces
// energy" and "Apiary can improve latency, latency variability, resource
// overhead, and energy efficiency."
//
// Both systems serve the same request (64B echo with a 200-cycle accelerator
// service time) from the same open-loop Poisson clients across a load sweep;
// we report median/tail latency and an activity-based energy proxy per op.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/baseline/hosted.h"
#include "src/core/energy.h"
#include "src/services/gateway.h"
#include "src/workload/client.h"

using namespace apiary;

namespace {

constexpr Cycle kAccelCycles = 200;
constexpr uint64_t kRequests = 1000;
constexpr uint32_t kRequestBytes = 64;

struct RunStats {
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double energy_uj_per_op = 0;
  double completed_frac = 0;
};

ClientHost::RequestFactory EchoFactory() {
  return [](uint64_t, Rng& rng) {
    ClientRequest req;
    req.opcode = kOpEcho;
    req.payload.assign(kRequestBytes, static_cast<uint8_t>(rng.NextBelow(256)));
    return req;
  };
}

RunStats RunApiary(double load_per_1k) {
  BenchBoard bb;
  ApiaryOs& os = bb.os;
  AppId app = os.CreateApp("svc");
  auto* echo = new EchoAccelerator(kAccelCycles);
  ServiceId svc = 0;
  os.Deploy(app, std::unique_ptr<Accelerator>(echo), &svc);
  auto* gw = new NetGateway();
  ServiceId gw_svc = 0;
  const TileId gw_tile = os.Deploy(app, std::unique_ptr<Accelerator>(gw), &gw_svc);
  (void)os.GrantSendToService(gw_tile, kNetworkService);
  gw->SetBackend(os.GrantSendToService(gw_tile, svc));
  bb.sim.Run(3000);  // MAC bring-up before offering load.

  ClientConfig ccfg;
  ccfg.server_endpoint = bb.board.mac100g()->address();
  ccfg.dst_service = gw_svc;
  ccfg.open_loop = true;
  ccfg.requests_per_1k_cycles = load_per_1k;
  ccfg.max_requests = kRequests;
  ClientHost client(ccfg, &bb.net, EchoFactory());
  bb.sim.Register(&client);
  bb.sim.RunUntil([&] { return client.received() >= kRequests; },
                  static_cast<Cycle>(kRequests * 1000.0 / load_per_1k) + 3'000'000);

  RunStats out;
  out.p50_us = bb.sim.CyclesToNs(client.latency().P50()) / 1000.0;
  out.p99_us = bb.sim.CyclesToNs(client.latency().P99()) / 1000.0;
  out.p999_us = bb.sim.CyclesToNs(client.latency().P999()) / 1000.0;
  out.completed_frac =
      static_cast<double>(client.received()) / static_cast<double>(client.sent());
  // Energy proxy: NoC flit-hops + monitor checks + accelerator busy cycles.
  const EnergyModel em;
  const uint64_t flits = bb.board.mesh().TotalFlitsRouted();
  const uint64_t checks = os.AggregateMonitorCounters().Get("monitor.sends");
  const double pj = static_cast<double>(flits) * em.pj_per_flit_hop +
                    static_cast<double>(checks) * em.pj_per_monitor_check +
                    static_cast<double>(client.received()) * kAccelCycles * em.pj_per_accel_cycle;
  out.energy_uj_per_op = pj / 1e6 / static_cast<double>(client.received());
  return out;
}

RunStats RunHosted(double load_per_1k) {
  Simulator sim(250.0);
  ExternalNetwork net(25);
  sim.Register(&net);
  HostedConfig cfg;
  cfg.accel_cycles = kAccelCycles;
  HostedSystem hosted(cfg, sim, &net);

  ClientConfig ccfg;
  ccfg.server_endpoint = 0;  // Hosted system registered first.
  ccfg.dst_service = 0;
  ccfg.open_loop = true;
  ccfg.requests_per_1k_cycles = load_per_1k;
  ccfg.max_requests = kRequests;
  ClientHost client(ccfg, &net, EchoFactory());
  sim.Register(&client);
  sim.RunUntil([&] { return client.received() >= kRequests; },
               static_cast<Cycle>(kRequests * 1000.0 / load_per_1k) + 3'000'000);

  RunStats out;
  out.p50_us = sim.CyclesToNs(client.latency().P50()) / 1000.0;
  out.p99_us = sim.CyclesToNs(client.latency().P99()) / 1000.0;
  out.p999_us = sim.CyclesToNs(client.latency().P999()) / 1000.0;
  const uint64_t done = client.received() == 0 ? 1 : client.received();
  out.completed_frac =
      static_cast<double>(client.received()) / static_cast<double>(client.sent());
  const EnergyModel em;
  const double pj = static_cast<double>(hosted.pcie_bytes()) * em.pj_per_pcie_byte +
                    static_cast<double>(done) * kAccelCycles * em.pj_per_accel_cycle;
  out.energy_uj_per_op = (pj / 1e6 + em.HostCpuMicrojoules(hosted.cpu_busy_cycles(), 250.0)) /
                         static_cast<double>(done);
  return out;
}

}  // namespace

void AddJsonRow(BenchJson& json, double per_us, const char* system, const RunStats& s) {
  json.BeginRow();
  json.Metric("load_req_per_us", per_us);
  json.Metric("system", system);
  json.Metric("p50_us", s.p50_us);
  json.Metric("p99_us", s.p99_us);
  json.Metric("p999_us", s.p999_us);
  json.Metric("energy_uj_per_op", s.energy_uj_per_op);
  json.Metric("completed_frac", s.completed_frac);
}

int main(int argc, char** argv) {
  std::printf("E1: direct-attached Apiary vs host-mediated baseline\n");
  std::printf("workload: %uB echo requests, %llu per run, open-loop Poisson\n", kRequestBytes,
              static_cast<unsigned long long>(kRequests));
  std::printf("(1 cycle = 4ns at 250 MHz; hosted CPU path costs ~875 cycles/op)\n");

  BenchJson json("e1_direct_vs_hosted");
  json.Param("request_bytes", static_cast<uint64_t>(kRequestBytes));
  json.Param("requests", kRequests);
  json.Param("accel_cycles", static_cast<uint64_t>(kAccelCycles));

  Table table("E1: latency and energy vs offered load");
  table.SetHeader({"load (req/us)", "system", "p50 (us)", "p99 (us)", "p99.9 (us)",
                   "energy/op (uJ)", "done %"});
  for (double load_per_1k : {0.25, 0.5, 1.0, 1.1}) {
    const RunStats apiary_stats = RunApiary(load_per_1k);
    const RunStats hosted_stats = RunHosted(load_per_1k);
    const double per_us = load_per_1k / 4.0;  // req/1k-cycles -> req/us at 4ns.
    table.AddRow({Table::Num(per_us, 3), "apiary", Table::Num(apiary_stats.p50_us, 2),
                  Table::Num(apiary_stats.p99_us, 2), Table::Num(apiary_stats.p999_us, 2),
                  Table::Num(apiary_stats.energy_uj_per_op, 3),
                  Table::Num(100 * apiary_stats.completed_frac, 1)});
    table.AddRow({Table::Num(per_us, 3), "hosted", Table::Num(hosted_stats.p50_us, 2),
                  Table::Num(hosted_stats.p99_us, 2), Table::Num(hosted_stats.p999_us, 2),
                  Table::Num(hosted_stats.energy_uj_per_op, 3),
                  Table::Num(100 * hosted_stats.completed_frac, 1)});
    AddJsonRow(json, per_us, "apiary", apiary_stats);
    AddJsonRow(json, per_us, "hosted", hosted_stats);
  }
  table.Print();
  const std::string json_path = JsonPathArg(argc, argv);
  if (!json_path.empty()) {
    json.WriteFile(json_path);
  }
  std::printf(
      "\nexpected shape (paper Section 1): apiary's p50 beats hosted by roughly the\n"
      "PCIe+CPU mediation cost at low load; as offered load approaches the single\n"
      "mediating core's capacity (~1.14 req/1k-cycles) the hosted tail explodes while\n"
      "apiary stays flat; energy/op gap is dominated by host CPU watts.\n");
  return 0;
}
