// Microservice call chain across two boards — the paper's Section 1 target:
// "Our initial target is services within a microservice application...
// Calls to other modules may be local or remote."
//
// Topology:
//   board A:  [gateway] -> [thumbnailer app]  --local-->  [checksum svc]
//                                             --remote--> [compressor svc] (board B)
//
// A client sends an image frame; the thumbnailer encodes it (local compute),
// checksums the bitstream through a *local* service call, then ships it to a
// *remote* compression service through the bridge — and the client receives
// the compressed, checksummed result. No accelerator knows or cares where
// its dependencies run.
#include <cstdio>
#include <memory>

#include "src/accel/checksum.h"
#include "src/accel/compressor.h"
#include "src/accel/video_encoder.h"
#include "src/core/kernel.h"
#include "src/core/service_ids.h"
#include "src/services/gateway.h"
#include "src/services/network_service.h"
#include "src/services/remote_bridge.h"
#include "src/sim/simulator.h"
#include "src/stats/table.h"
#include "src/workload/client.h"
#include "src/workload/frame_source.h"

using namespace apiary;

namespace {

// The application service: encodes a frame, checksums it locally, compresses
// it remotely, replies with u32 crc + compressed bitstream.
class Thumbnailer : public Accelerator {
 public:
  Thumbnailer(ServiceId crc_svc, ServiceId bridge_svc, uint32_t remote_board,
              ServiceId remote_bridge_svc, ServiceId remote_compress_svc)
      : crc_svc_(crc_svc), bridge_svc_(bridge_svc), remote_board_(remote_board),
        remote_bridge_svc_(remote_bridge_svc), remote_compress_svc_(remote_compress_svc) {}

  void OnMessage(const Message& msg, TileApi& api) override {
    if (msg.kind == MsgKind::kResponse) {
      OnDependencyReply(msg, api);
      return;
    }
    if (msg.payload.size() < 8) {
      Message err;
      err.opcode = msg.opcode;
      err.status = MsgStatus::kBadRequest;
      api.Reply(msg, std::move(err));
      return;
    }
    // Stage 1 (local compute): DCT-encode the frame.
    const uint32_t w = GetU32(msg.payload, 0);
    const uint32_t h = GetU32(msg.payload, 4);
    Job job;
    job.client_request = msg;
    job.bitstream = EncodeFrame(msg.payload.data() + 8, w, h, 40);
    const uint64_t id = next_id_++;
    // Stage 2 (local service call): checksum the bitstream.
    Message crc;
    crc.opcode = kOpChecksum;
    crc.payload = job.bitstream;
    crc.request_id = MakeId(id, 1);
    jobs_[id] = std::move(job);
    if (!api.Send(std::move(crc), api.LookupService(crc_svc_)).ok()) {
      FailJob(id, MsgStatus::kBackpressure, api);
    }
  }

  std::string name() const override { return "thumbnailer"; }
  uint32_t LogicCellCost() const override { return 50000; }

  uint64_t completed = 0;

 private:
  struct Job {
    Message client_request;
    std::vector<uint8_t> bitstream;
    uint32_t crc = 0;
  };

  static uint64_t MakeId(uint64_t job, uint64_t stage) { return (job << 4) | stage; }

  void FailJob(uint64_t id, MsgStatus status, TileApi& api) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return;
    }
    Message err;
    err.opcode = it->second.client_request.opcode;
    err.status = status;
    api.Reply(it->second.client_request, std::move(err));
    jobs_.erase(it);
  }

  void OnDependencyReply(const Message& msg, TileApi& api) {
    const uint64_t id = msg.request_id >> 4;
    const uint64_t stage = msg.request_id & 0xf;
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return;
    }
    if (msg.status != MsgStatus::kOk) {
      FailJob(id, msg.status, api);
      return;
    }
    if (stage == 1) {
      // CRC arrived; stage 3 (remote service call): compress off-board.
      it->second.crc = GetU32(msg.payload, 0);
      Message call;
      call.opcode = kOpRemoteCall;
      PutU32(call.payload, remote_board_);
      PutU32(call.payload, remote_bridge_svc_);
      PutU32(call.payload, remote_compress_svc_);
      call.payload.push_back(static_cast<uint8_t>(kOpCompress));
      call.payload.push_back(static_cast<uint8_t>(kOpCompress >> 8));
      call.payload.insert(call.payload.end(), it->second.bitstream.begin(),
                          it->second.bitstream.end());
      call.request_id = MakeId(id, 2);
      if (!api.Send(std::move(call), api.LookupService(bridge_svc_)).ok()) {
        FailJob(id, MsgStatus::kBackpressure, api);
      }
      return;
    }
    // Stage 3 reply: compressed bitstream from the remote board.
    Message reply;
    reply.opcode = it->second.client_request.opcode;
    PutU32(reply.payload, it->second.crc);
    reply.payload.insert(reply.payload.end(), msg.payload.begin(), msg.payload.end());
    api.Reply(it->second.client_request, std::move(reply));
    jobs_.erase(it);
    ++completed;
  }

  ServiceId crc_svc_;
  ServiceId bridge_svc_;
  uint32_t remote_board_;
  ServiceId remote_bridge_svc_;
  ServiceId remote_compress_svc_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, Job> jobs_;
};

}  // namespace

int main() {
  Simulator sim(250.0);
  ExternalNetwork net(50);
  sim.Register(&net);
  BoardConfig cfg;
  cfg.part_number = "VU9P";
  cfg.mesh = MeshConfig{4, 4, 8, 512};
  cfg.dram.capacity_bytes = 64ull << 20;
  Board board_a(cfg, sim, &net);
  Board board_b(cfg, sim, &net);
  ApiaryOs os_a(board_a);
  ApiaryOs os_b(board_b);

  // Network services on both boards.
  os_a.DeployService(kNetworkService,
                     std::make_unique<NetworkService>(
                         &os_a, std::make_unique<Mac100GAdapter>(board_a.mac100g())));
  os_b.DeployService(kNetworkService,
                     std::make_unique<NetworkService>(
                         &os_b, std::make_unique<Mac100GAdapter>(board_b.mac100g())));

  // Board B: the remote compression microservice, exposed via its bridge.
  auto* bridge_b = new RemoteBridge();
  ServiceId bridge_b_svc = 0;
  const TileId bb_tile = os_b.Deploy(os_b.CreateApp("bridge"),
                                     std::unique_ptr<Accelerator>(bridge_b), &bridge_b_svc);
  (void)os_b.GrantSendToService(bb_tile, kNetworkService);
  auto* compressor = new CompressorAccelerator(16);
  ServiceId comp_svc = 0;
  os_b.Deploy(os_b.CreateApp("zsvc"), std::unique_ptr<Accelerator>(compressor), &comp_svc);
  bridge_b->ExposeService(comp_svc, os_b.GrantSendToService(bb_tile, comp_svc));

  // Board A: bridge, checksum service, the thumbnailer app, and a gateway.
  auto* bridge_a = new RemoteBridge();
  ServiceId bridge_a_svc = 0;
  const TileId ba_tile = os_a.Deploy(os_a.CreateApp("bridge"),
                                     std::unique_ptr<Accelerator>(bridge_a), &bridge_a_svc);
  (void)os_a.GrantSendToService(ba_tile, kNetworkService);

  AppId app = os_a.CreateApp("thumbnail-chain");
  ServiceId crc_svc = 0;
  os_a.Deploy(app, std::make_unique<ChecksumAccelerator>(8), &crc_svc);
  auto* thumbnailer = new Thumbnailer(crc_svc, bridge_a_svc, board_b.mac100g()->address(),
                                      bridge_b_svc, comp_svc);
  ServiceId thumb_svc = 0;
  const TileId tt = os_a.Deploy(app, std::unique_ptr<Accelerator>(thumbnailer), &thumb_svc);
  (void)os_a.GrantSendToService(tt, crc_svc);
  (void)os_a.GrantSendToService(tt, bridge_a_svc);
  auto* gw = new NetGateway();
  ServiceId gw_svc = 0;
  const TileId gt = os_a.Deploy(app, std::unique_ptr<Accelerator>(gw), &gw_svc);
  (void)os_a.GrantSendToService(gt, kNetworkService);
  gw->SetBackend(os_a.GrantSendToService(gt, thumb_svc));

  // A client drives frames through the whole chain.
  constexpr uint32_t kW = 48;
  constexpr uint32_t kH = 48;
  ClientConfig ccfg;
  ccfg.server_endpoint = board_a.mac100g()->address();
  ccfg.dst_service = gw_svc;
  ccfg.open_loop = false;
  ccfg.concurrency = 2;
  ccfg.max_requests = 12;
  ClientHost client(ccfg, &net, [&](uint64_t index, Rng&) {
    ClientRequest req;
    req.opcode = kOpAppBase + 99;
    req.payload = FrameToRequestPayload(kW, kH, GenerateFrame(kW, kH, 5, index));
    return req;
  });
  sim.Register(&client);

  std::printf("microservice chain: client ==> [gateway|board A] -> thumbnailer\n");
  std::printf("  -> (local)  checksum service,  board A\n");
  std::printf("  -> (remote) compression service, board B via bridge\n\n");

  sim.RunUntil([&] { return client.received() >= ccfg.max_requests; }, 20'000'000);

  // Validate the final artifact end to end.
  uint64_t valid = 0;
  if (!client.last_response().empty() && client.last_response().size() > 4) {
    const uint32_t crc = GetU32(client.last_response(), 0);
    std::vector<uint8_t> compressed(client.last_response().begin() + 4,
                                    client.last_response().end());
    const auto bitstream = LzDecompress(compressed);
    if (!bitstream.empty() && Crc32(bitstream) == crc) {
      uint32_t w = 0;
      uint32_t h = 0;
      if (!DecodeFrame(bitstream, &w, &h).empty() && w == kW && h == kH) {
        valid = 1;
      }
    }
  }

  Table table("Microservice chain results");
  table.SetHeader({"metric", "value"});
  table.AddRow({"requests completed", Table::Int(client.received())});
  table.AddRow({"errors", Table::Int(client.errors())});
  table.AddRow({"chain p50 latency (us)",
                Table::Num(static_cast<double>(client.latency().P50()) * 4 / 1000, 1)});
  table.AddRow({"chain p99 latency (us)",
                Table::Num(static_cast<double>(client.latency().P99()) * 4 / 1000, 1)});
  table.AddRow({"remote calls bridged", Table::Int(thumbnailer->completed)});
  table.AddRow({"final artifact validates (crc+decode)", valid ? "yes" : "NO"});
  table.Print();
  return client.received() >= ccfg.max_requests && valid == 1 ? 0 : 1;
}
