// Named-counter registry: each simulated component exposes its event counts
// through a CounterSet so experiments can dump machine-readable metrics.
#ifndef SRC_STATS_SUMMARY_H_
#define SRC_STATS_SUMMARY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace apiary {

class CounterSet {
 public:
  void Add(const std::string& name, uint64_t delta = 1) { counters_[name] += delta; }
  void Set(const std::string& name, uint64_t value) { counters_[name] = value; }
  uint64_t Get(const std::string& name) const;
  void Reset() { counters_.clear(); }

  // Merge `other` into this set (summing matching names).
  void Merge(const CounterSet& other);

  const std::map<std::string, uint64_t>& counters() const { return counters_; }

  // "name=value name=value ..." in sorted order.
  std::string ToString() const;

 private:
  std::map<std::string, uint64_t> counters_;
};

// Basic running statistics over doubles (for rates, utilizations).
class RunningStat {
 public:
  void Record(double x);
  uint64_t count() const { return n_; }
  double Mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  double Min() const { return n_ == 0 ? 0.0 : min_; }
  double Max() const { return n_ == 0 ? 0.0 : max_; }
  double StdDev() const;

 private:
  uint64_t n_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace apiary

#endif  // SRC_STATS_SUMMARY_H_
