# Empty dependencies file for table1_logic_cells.
# This may be replaced when dependencies are built.
