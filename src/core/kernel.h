// ApiaryOs: the board-level kernel object.
//
// Owns one Tile per NoC endpoint, the physical-memory segment allocator, the
// logical service registry, and the trusted management operations: deploying
// accelerators/services, granting and revoking capabilities, configuring
// rate limits, and fault handling. This is the "hardware microkernel"
// control plane of Section 4; the per-tile data plane lives in Monitor.
#ifndef SRC_CORE_KERNEL_H_
#define SRC_CORE_KERNEL_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/service_ids.h"
#include "src/core/tile.h"
#include "src/fpga/board.h"
#include "src/mem/segment_allocator.h"

namespace apiary {

struct DeployOptions {
  // Pin to a specific tile; otherwise the first vacant tile is used.
  std::optional<TileId> tile;
  // Skip partial-reconfiguration latency (time-zero board bring-up).
  bool immediate = true;
  FaultPolicy fault_policy = FaultPolicy::kFailStop;
};

class ApiaryOs {
 public:
  explicit ApiaryOs(Board& board, MonitorConfig monitor_config = MonitorConfig{});

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  // ------------------------------------------------------------------
  // Applications and deployment.
  // ------------------------------------------------------------------
  AppId CreateApp(const std::string& name);
  const std::string& AppName(AppId app) const;
  const std::vector<TileId>& AppTiles(AppId app) const;

  // Deploys an OS service under a well-known logical name. Returns the tile
  // it landed on, or kInvalidTile on failure (no vacant tile / too big).
  TileId DeployService(ServiceId service, std::unique_ptr<Accelerator> accel,
                       DeployOptions options = DeployOptions{});

  // Deploys an application accelerator; it receives a fresh logical
  // endpoint id (returned via `out_service` if non-null).
  TileId Deploy(AppId app, std::unique_ptr<Accelerator> accel,
                ServiceId* out_service = nullptr, DeployOptions options = DeployOptions{});

  // Replaces the accelerator on `tile` (partial reconfiguration; clears the
  // fault state once the new bitstream is live).
  bool Reconfigure(TileId tile, std::unique_ptr<Accelerator> accel, bool immediate = false);

  // Points an existing logical service name at a different tile (hot-standby
  // failover: the replacement was configured in advance on a spare tile).
  // Existing capabilities keep naming the old tile; grant fresh ones.
  void RebindService(ServiceId service, TileId tile);

  // ------------------------------------------------------------------
  // Capabilities.
  // ------------------------------------------------------------------
  // Grants `src` the right to send requests to the tile hosting `dst`, and
  // installs `src` on that tile's accept list. Responses flow back via the
  // implicit reply right. Returns the endpoint CapRef for src's accelerator.
  [[nodiscard]] CapRef GrantSendToService(TileId src, ServiceId dst);

  // Raw tile-to-tile grant (dst named physically; used by tests).
  [[nodiscard]] CapRef GrantSend(TileId src, TileId dst);

  // Allocates `bytes` of board DRAM and installs a memory capability with
  // `rights` (kRightRead/kRightWrite) on `tile`. Dropping the result leaks
  // the segment until the tile is torn down.
  [[nodiscard]] std::optional<CapRef> GrantMemory(TileId tile, uint64_t bytes,
                                                  uint32_t rights);

  // Installs a capability for an existing segment (sharing between tiles of
  // one app, or attenuated re-grants).
  [[nodiscard]] CapRef GrantExistingSegment(TileId tile, const Segment& segment,
                                            uint32_t rights);

  // Revokes a capability; if it was the primary grant of a kernel-allocated
  // segment, the segment is freed.
  bool Revoke(TileId tile, CapRef ref);

  void SetRateLimit(TileId tile, uint64_t flits_per_1k_cycles, uint64_t burst_flits);

  // Tenant bandwidth controls: assigns a tile's injected traffic to a NoC
  // arbitration class, and configures the board-wide weight of a class
  // (see Router::SetClassWeight). Both are kernel-only operations.
  void SetArbClass(TileId tile, uint8_t cls);
  void SetNocClassWeight(uint8_t cls, uint32_t weight);

  // ------------------------------------------------------------------
  // Orchestration support (used by src/orch).
  // ------------------------------------------------------------------
  // Tiles whose dynamic region is currently free (no accelerator and not
  // mid-reconfiguration) — the placement candidates.
  std::vector<TileId> FreeTiles() const;

  // Logic cells available in one dynamic tile region.
  uint64_t TileRegionCells() const { return board_->config().tile_region_cells; }

  // Tears a tile down and returns its region to the free pool: revokes the
  // tile's capabilities, frees its kernel-owned segments, revokes every
  // client capability naming a service hosted here, unregisters those
  // services, and loads a blanking bitstream. `immediate` skips the
  // blanking-bitstream latency (time-zero rewiring and tests).
  bool Undeploy(TileId tile, bool immediate = true);

  // ------------------------------------------------------------------
  // Recovery support (used by the Supervisor, Section 4.4).
  // ------------------------------------------------------------------
  // Re-grants every endpoint capability previously granted WITH `tile` as
  // the source — the step after a reconfigured accelerator comes back up,
  // since Reconfigure revoked its whole capability table.
  void ReinstallTileCaps(TileId tile);

  // Re-grants endpoint capabilities for every client of logical service
  // `dst`, revoking each client's stale capability (which still names the
  // old physical tile) first. Used after RebindService repoints the name.
  void RegrantClientsOf(ServiceId dst);

  // ------------------------------------------------------------------
  // Fault management (Section 4.4).
  // ------------------------------------------------------------------
  void FailStop(TileId tile, const std::string& reason);
  bool PreemptSwap(TileId tile, std::unique_ptr<Accelerator> replacement);

  // ------------------------------------------------------------------
  // Introspection.
  // ------------------------------------------------------------------
  Tile& tile(TileId id) { return *tiles_[id]; }
  const Tile& tile(TileId id) const { return *tiles_[id]; }
  Monitor& monitor(TileId id) { return tiles_[id]->monitor(); }
  uint32_t num_tiles() const { return static_cast<uint32_t>(tiles_.size()); }
  TileId LookupServiceTile(ServiceId service) const;
  Board& board() { return *board_; }
  Simulator& sim() { return board_->sim(); }
  SegmentAllocator& segments() { return *segments_; }

  // Aggregate monitor counters across all tiles.
  CounterSet AggregateMonitorCounters() const;

  // Static logic devoted to monitors (for the overhead experiments).
  uint64_t TotalMonitorCells() const;

 private:
  TileId FindVacantTile() const;
  TileId DeployInternal(AppId app, ServiceId service, std::unique_ptr<Accelerator> accel,
                        const DeployOptions& options);
  // Revokes every capability on `tile` and frees its kernel-owned segments;
  // part of tearing a tile down for reconfiguration.
  void ReleaseTileGrants(TileId tile);

  Board* board_;
  MonitorConfig monitor_config_;
  bool ok_ = true;
  std::string error_;

  std::vector<std::unique_ptr<Tile>> tiles_;
  std::unique_ptr<SegmentAllocator> segments_;

  struct AppInfo {
    std::string name;
    std::vector<TileId> tiles;
  };
  std::vector<AppInfo> apps_;
  // Ordered maps: kernel state is part of the deterministic replay surface,
  // and hash iteration order would vary with the allocator/seed.
  std::map<ServiceId, TileId> service_registry_;
  ServiceId next_app_service_ = kFirstAppService;

  // Kernel-allocated segments keyed by (tile, cap slot) for free-on-revoke.
  std::map<uint64_t, Segment> owned_segments_;

  // Who was granted send-to-whom, by logical name — the kernel's record of
  // the capability graph, replayed after recovery re-installs a tile.
  struct GrantEdge {
    TileId src;
    ServiceId dst;
  };
  std::vector<GrantEdge> grant_log_;
};

}  // namespace apiary

#endif  // SRC_CORE_KERNEL_H_
