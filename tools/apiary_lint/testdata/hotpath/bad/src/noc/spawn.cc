// Bad: every hot-path memory-discipline violation the check bans.
#include <memory>
#include <vector>

namespace apiary {

struct NocPacket {
  std::vector<unsigned char> payload;
};

void Spawn() {
  auto a = std::make_shared<NocPacket>();
  NocPacket* b = new NocPacket();
  std::vector<uint8_t> payload_copy(a->payload.begin(), a->payload.end());
  (void)b;
  (void)payload_copy;
}

}  // namespace apiary
