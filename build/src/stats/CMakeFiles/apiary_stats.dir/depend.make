# Empty dependencies file for apiary_stats.
# This may be replaced when dependencies are built.
