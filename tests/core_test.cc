// Tests for the Apiary core: message wire format, capabilities, the monitor's
// enforcement paths, tiles, and the kernel's management plane.
#include <gtest/gtest.h>

#include "src/core/capability.h"
#include "src/core/kernel.h"
#include "src/core/message.h"
#include "src/core/monitor.h"
#include "src/core/service_ids.h"
#include "src/core/trace.h"
#include "src/sim/random.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

// ---------------------------------------------------------------------
// Message wire format.
// ---------------------------------------------------------------------

TEST(MessageTest, SerializeRoundTripBasic) {
  Message m;
  m.dst_service = 42;
  m.kind = MsgKind::kResponse;
  m.opcode = 0x1234;
  m.status = MsgStatus::kSegFault;
  m.request_id = 0xdeadbeefcafe;
  m.dst_process = 7;
  m.src_tile = 3;
  m.src_service = 9;
  m.src_app = 2;
  m.grant.valid = true;
  m.grant.can_read = true;
  m.grant.segment = Segment{4096, 512};
  m.payload = {1, 2, 3, 4, 5};
  auto bytes = SerializeMessage(m);
  auto back = DeserializeMessage(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dst_service, m.dst_service);
  EXPECT_EQ(back->kind, m.kind);
  EXPECT_EQ(back->opcode, m.opcode);
  EXPECT_EQ(back->status, m.status);
  EXPECT_EQ(back->request_id, m.request_id);
  EXPECT_EQ(back->dst_process, m.dst_process);
  EXPECT_EQ(back->src_tile, m.src_tile);
  EXPECT_EQ(back->src_service, m.src_service);
  EXPECT_EQ(back->src_app, m.src_app);
  EXPECT_TRUE(back->grant.valid);
  EXPECT_TRUE(back->grant.can_read);
  EXPECT_FALSE(back->grant.can_write);
  EXPECT_EQ(back->grant.segment.base, 4096u);
  EXPECT_EQ(back->grant.segment.length, 512u);
  EXPECT_EQ(back->payload, m.payload);
}

// Property: random messages round-trip exactly.
class MessageRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MessageRoundTripTest, RandomMessagesRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Message m;
    m.dst_service = static_cast<ServiceId>(rng.Next());
    m.kind = rng.NextBool(0.5) ? MsgKind::kRequest : MsgKind::kResponse;
    m.opcode = static_cast<uint16_t>(rng.Next());
    m.status = static_cast<MsgStatus>(rng.NextBelow(13));
    m.request_id = rng.Next();
    m.dst_process = static_cast<ProcessId>(rng.Next());
    m.src_tile = static_cast<TileId>(rng.Next());
    m.src_service = static_cast<ServiceId>(rng.Next());
    m.src_app = static_cast<AppId>(rng.Next());
    m.grant.valid = rng.NextBool(0.5);
    m.grant.can_read = rng.NextBool(0.5);
    m.grant.can_write = rng.NextBool(0.5);
    m.grant.segment = Segment{rng.Next(), rng.Next()};
    m.payload.resize(rng.NextBelow(300));
    for (auto& b : m.payload) {
      b = static_cast<uint8_t>(rng.NextBelow(256));
    }
    const auto bytes = SerializeMessage(m);
    EXPECT_EQ(bytes.size(), m.WireBytes());
    auto back = DeserializeMessage(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(SerializeMessage(*back), bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageRoundTripTest, ::testing::Values(1, 2, 3, 4));

TEST(MessageTest, DeserializeRejectsTruncated) {
  Message m;
  m.payload = {1, 2, 3};
  auto bytes = SerializeMessage(m);
  bytes.pop_back();
  EXPECT_FALSE(DeserializeMessage(bytes).has_value());
  EXPECT_FALSE(DeserializeMessage({1, 2, 3}).has_value());
}

TEST(MessageTest, DeserializeRejectsLengthMismatch) {
  Message m;
  m.payload = {1, 2, 3};
  auto bytes = SerializeMessage(m);
  bytes.push_back(0);  // Trailing garbage.
  EXPECT_FALSE(DeserializeMessage(bytes).has_value());
}

TEST(MessageTest, StatusNamesCovered) {
  EXPECT_STREQ(MsgStatusName(MsgStatus::kOk), "ok");
  EXPECT_STREQ(MsgStatusName(MsgStatus::kSegFault), "seg_fault");
  EXPECT_STREQ(MsgStatusName(MsgStatus::kNotFound), "not_found");
}

// ---------------------------------------------------------------------
// Capability references and tables.
// ---------------------------------------------------------------------

TEST(CapRefTest, EncodeDecode) {
  const CapRef ref = MakeCapRef(123, 45);
  EXPECT_EQ(CapRefSlot(ref), 123u);
  EXPECT_EQ(CapRefGeneration(ref), 45u);
}

TEST(CapabilityTableTest, InstallAndLookup) {
  CapabilityTable table(8);
  Capability cap;
  cap.kind = CapKind::kEndpoint;
  cap.rights = kRightSend;
  cap.dst_tile = 3;
  cap.dst_service = 42;
  const CapRef ref = table.Install(cap);
  ASSERT_NE(ref, kInvalidCapRef);
  const Capability* got = table.Lookup(ref);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->dst_tile, 3u);
  EXPECT_EQ(table.live_count(), 1u);
}

TEST(CapabilityTableTest, LookupInvalidRef) {
  CapabilityTable table(8);
  EXPECT_EQ(table.Lookup(kInvalidCapRef), nullptr);
  EXPECT_EQ(table.Lookup(MakeCapRef(3, 0)), nullptr);   // Empty slot.
  EXPECT_EQ(table.Lookup(MakeCapRef(99, 0)), nullptr);  // Out of range.
}

TEST(CapabilityTableTest, RevokeInvalidatesAndBumpsGeneration) {
  CapabilityTable table(8);
  Capability cap;
  const CapRef ref = table.Install(cap);
  ASSERT_TRUE(table.Revoke(ref));
  EXPECT_EQ(table.Lookup(ref), nullptr);
  EXPECT_FALSE(table.Revoke(ref));  // Double revoke fails.
  // Slot reuse gets a new generation; the stale ref still fails.
  const CapRef ref2 = table.Install(cap);
  EXPECT_EQ(CapRefSlot(ref2), CapRefSlot(ref));
  EXPECT_NE(CapRefGeneration(ref2), CapRefGeneration(ref));
  EXPECT_EQ(table.Lookup(ref), nullptr);
  EXPECT_NE(table.Lookup(ref2), nullptr);
}

TEST(CapabilityTableTest, FillsUp) {
  CapabilityTable table(2);
  Capability cap;
  EXPECT_NE(table.Install(cap), kInvalidCapRef);
  EXPECT_NE(table.Install(cap), kInvalidCapRef);
  EXPECT_EQ(table.Install(cap), kInvalidCapRef);
}

TEST(CapabilityTableTest, RevokeAllInvalidatesEverything) {
  CapabilityTable table(4);
  Capability cap;
  const CapRef a = table.Install(cap);
  const CapRef b = table.Install(cap);
  table.RevokeAll();
  EXPECT_EQ(table.Lookup(a), nullptr);
  EXPECT_EQ(table.Lookup(b), nullptr);
  EXPECT_EQ(table.live_count(), 0u);
}

TEST(CapabilityTableTest, FindEndpointForService) {
  CapabilityTable table(8);
  Capability mem;
  mem.kind = CapKind::kMemory;
  // Decoy entry: only its presence matters, not its ref.
  (void)table.Install(mem);
  Capability ep;
  ep.kind = CapKind::kEndpoint;
  ep.dst_service = 55;
  const CapRef ref = table.Install(ep);
  EXPECT_EQ(table.FindEndpointForService(55), ref);
  EXPECT_EQ(table.FindEndpointForService(56), kInvalidCapRef);
}

TEST(CapabilityTest, RightsMask) {
  Capability cap;
  cap.rights = kRightRead | kRightWrite;
  EXPECT_TRUE(cap.HasRights(kRightRead));
  EXPECT_TRUE(cap.HasRights(kRightRead | kRightWrite));
  EXPECT_FALSE(cap.HasRights(kRightSend));
  EXPECT_FALSE(cap.HasRights(kRightRead | kRightGrant));
}

// ---------------------------------------------------------------------
// Monitor enforcement, end to end on a small board.
// ---------------------------------------------------------------------

TEST(MonitorTest, SendWithoutCapabilityDenied) {
  TestBoard tb;
  auto* probe = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  const TileId t = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  ASSERT_NE(t, kInvalidTile);
  Message msg;
  msg.opcode = 1;
  probe->EnqueueSend(msg, MakeCapRef(0, 0));
  tb.sim.Run(5);
  EXPECT_EQ(probe->last_send_result.status, MsgStatus::kNoCapability);
  EXPECT_EQ(tb.os.monitor(t).counters().Get("monitor.send_no_cap"), 1u);
}

TEST(MonitorTest, GrantedSendDeliversWithTrustedStamping) {
  TestBoard tb;
  auto* a = new ProbeAccelerator();
  auto* b = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  ServiceId svc_a = 0;
  ServiceId svc_b = 0;
  const TileId ta = tb.os.Deploy(app, std::unique_ptr<Accelerator>(a), &svc_a);
  const TileId tb_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(b), &svc_b);
  ASSERT_NE(ta, kInvalidTile);
  ASSERT_NE(tb_tile, kInvalidTile);
  const CapRef cap = tb.os.GrantSendToService(ta, svc_b);
  ASSERT_NE(cap, kInvalidCapRef);

  Message msg;
  msg.opcode = 77;
  msg.payload = {9, 9, 9};
  // The sender lies about its identity; the monitor must overwrite it.
  msg.src_tile = 999;
  msg.src_app = 12345;
  msg.dst_service = 31337;
  a->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !b->received.empty(); }, 1000));
  const Message& got = b->received[0];
  EXPECT_EQ(got.opcode, 77u);
  EXPECT_EQ(got.src_tile, ta);       // Stamped, not the forged 999.
  EXPECT_EQ(got.src_app, app);       // Stamped.
  EXPECT_EQ(got.dst_service, svc_b); // From the capability, not the forgery.
  EXPECT_EQ(got.src_service, svc_a);
  EXPECT_EQ(got.payload, msg.payload);
}

TEST(MonitorTest, ReplyRightWorksWithoutExplicitCap) {
  TestBoard tb;
  auto* a = new ProbeAccelerator();
  auto* b = new ProbeAccelerator();
  b->auto_reply = true;
  AppId app = tb.os.CreateApp("a");
  ServiceId svc_b = 0;
  const TileId ta = tb.os.Deploy(app, std::unique_ptr<Accelerator>(a));
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(b), &svc_b);
  const CapRef cap = tb.os.GrantSendToService(ta, svc_b);

  Message msg;
  msg.opcode = 5;
  msg.payload = {1, 2};
  a->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !a->received.empty(); }, 1000));
  EXPECT_EQ(a->received[0].kind, MsgKind::kResponse);
  EXPECT_EQ(a->received[0].payload, msg.payload);
}

TEST(MonitorTest, ReplyWithoutRightDenied) {
  TestBoard tb;
  auto* a = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  const TileId ta = tb.os.Deploy(app, std::unique_ptr<Accelerator>(a));
  tb.sim.Run(3);
  // Fabricate a "request" that was never delivered through the monitor.
  Message fake_request;
  fake_request.src_tile = 2;
  fake_request.src_service = 10;
  Message response;
  const SendResult r = tb.os.monitor(ta).Reply(fake_request, std::move(response));
  EXPECT_EQ(r.status, MsgStatus::kNoCapability);
  EXPECT_EQ(tb.os.monitor(ta).counters().Get("monitor.reply_no_right"), 1u);
}

TEST(MonitorTest, UnsolicitedResponseDropped) {
  TestBoard tb;
  auto* a = new ProbeAccelerator();
  auto* b = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  ServiceId svc_b = 0;
  const TileId ta = tb.os.Deploy(app, std::unique_ptr<Accelerator>(a));
  const TileId tbt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(b), &svc_b);
  const CapRef cap = tb.os.GrantSendToService(ta, svc_b);
  // Send a request a->b; b auto-replies once legitimately...
  b->auto_reply = true;
  Message msg;
  msg.opcode = 1;
  a->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !a->received.empty(); }, 1000));
  // ...then b tries to push a *second* response: no reply right remains.
  Message extra;
  extra.src_tile = ta;
  extra.src_service = 0;
  const SendResult r = tb.os.monitor(tbt).Reply(b->received[0], std::move(extra));
  EXPECT_EQ(r.status, MsgStatus::kNoCapability);
}

TEST(MonitorTest, UngrantedSenderBouncedWithError) {
  TestBoard tb;
  auto* a = new ProbeAccelerator();
  auto* b = new ProbeAccelerator();
  AppId app1 = tb.os.CreateApp("one");
  AppId app2 = tb.os.CreateApp("two");
  ServiceId svc_b = 0;
  const TileId ta = tb.os.Deploy(app1, std::unique_ptr<Accelerator>(a));
  const TileId tbt = tb.os.Deploy(app2, std::unique_ptr<Accelerator>(b), &svc_b);
  // Grant a -> b, then retract b's accept entry to simulate a desynchronized
  // policy (defense in depth: receiver-side check).
  const CapRef cap = tb.os.GrantSendToService(ta, svc_b);
  tb.os.monitor(tbt).DisallowSender(ta);
  Message msg;
  msg.opcode = 9;
  a->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !a->received.empty(); }, 1000));
  EXPECT_EQ(a->received[0].kind, MsgKind::kResponse);
  EXPECT_EQ(a->received[0].status, MsgStatus::kDenied);
  EXPECT_TRUE(b->received.empty());
  EXPECT_EQ(tb.os.monitor(tbt).counters().Get("monitor.recv_denied"), 1u);
}

TEST(MonitorTest, RateLimitCapsInjection) {
  TestBoard tb;
  auto* a = new ProbeAccelerator();
  auto* b = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  ServiceId svc_b = 0;
  const TileId ta = tb.os.Deploy(app, std::unique_ptr<Accelerator>(a));
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(b), &svc_b);
  const CapRef cap = tb.os.GrantSendToService(ta, svc_b);
  tb.os.SetRateLimit(ta, /*flits_per_1k=*/1000, /*burst=*/4);
  tb.sim.Run(3);
  // Burst of 2-flit messages: the first two fit the burst, the third is cut.
  int ok = 0;
  int limited = 0;
  for (int i = 0; i < 3; ++i) {
    Message msg;
    msg.opcode = 1;
    msg.payload.assign(8, 0);
    const SendResult r = tb.os.monitor(ta).Send(std::move(msg), cap);
    if (r.ok()) {
      ++ok;
    } else if (r.status == MsgStatus::kRateLimited) {
      ++limited;
    }
  }
  EXPECT_EQ(ok, 1);  // Header(32B+) -> 3 flits each at these sizes.
  EXPECT_GE(limited, 1);
}

TEST(MonitorTest, FailStopBlocksSendAndBouncesIncoming) {
  TestBoard tb;
  auto* a = new ProbeAccelerator();
  auto* b = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  ServiceId svc_b = 0;
  const TileId ta = tb.os.Deploy(app, std::unique_ptr<Accelerator>(a));
  const TileId tbt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(b), &svc_b);
  const CapRef cap = tb.os.GrantSendToService(ta, svc_b);
  tb.sim.Run(3);
  tb.os.FailStop(tbt, "test");
  EXPECT_EQ(tb.os.monitor(tbt).fault_state(), TileFaultState::kStopped);
  // a's request is bounced with kDestFailed.
  Message msg;
  msg.opcode = 1;
  a->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !a->received.empty(); }, 2000));
  EXPECT_EQ(a->received[0].status, MsgStatus::kDestFailed);
  EXPECT_TRUE(b->received.empty());
  // b itself cannot send.
  Message out;
  EXPECT_EQ(tb.os.monitor(tbt).Send(std::move(out), cap).status, MsgStatus::kTileStopped);
}

TEST(MonitorTest, SpoofedWireSourceDropped) {
  TestBoard tb;
  auto* b = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  ServiceId svc_b = 0;
  const TileId tbt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(b), &svc_b);
  tb.os.monitor(tbt).AllowSender(0);
  tb.sim.Run(3);
  // Inject a raw NoC packet whose wire src (packet.src) disagrees with the
  // serialized header's src_tile — as a compromised NI might attempt.
  Message msg;
  msg.opcode = 1;
  msg.kind = MsgKind::kRequest;
  msg.src_tile = 0;  // Claims tile 0...
  PacketRef packet(new NocPacket());
  packet->src = 1;  // ...but was actually injected at tile 1.
  packet->dst = tbt;
  packet->payload = SerializeMessage(msg);
  tb.board.mesh().ni(1).Inject(packet, tb.sim.now());
  tb.sim.Run(100);
  EXPECT_TRUE(b->received.empty());
  EXPECT_EQ(tb.os.monitor(tbt).counters().Get("monitor.spoofed_src"), 1u);
}

TEST(MonitorTest, MemoryCapAttachesScrubbedGrant) {
  TestBoard tb;
  auto* a = new ProbeAccelerator();
  auto* b = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  ServiceId svc_b = 0;
  const TileId ta = tb.os.Deploy(app, std::unique_ptr<Accelerator>(a));
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(b), &svc_b);
  const CapRef ep = tb.os.GrantSendToService(ta, svc_b);
  auto mem = tb.os.GrantMemory(ta, 4096, kRightRead);
  ASSERT_TRUE(mem.has_value());

  // Without presenting the cap, a forged grant must be scrubbed.
  Message forged;
  forged.opcode = 1;
  forged.grant.valid = true;
  forged.grant.can_write = true;
  forged.grant.segment = Segment{0, 1 << 30};
  a->EnqueueSend(forged, ep);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !b->received.empty(); }, 1000));
  EXPECT_FALSE(b->received[0].grant.valid);

  // Presenting the cap attaches the true segment with the granted rights.
  b->received.clear();
  Message legit;
  legit.opcode = 2;
  a->EnqueueSend(legit, ep, *mem);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !b->received.empty(); }, 1000));
  EXPECT_TRUE(b->received[0].grant.valid);
  EXPECT_TRUE(b->received[0].grant.can_read);
  EXPECT_FALSE(b->received[0].grant.can_write);
  EXPECT_EQ(b->received[0].grant.segment.length, 4096u);
}

TEST(MonitorTest, RevokedMemoryCapRefused) {
  TestBoard tb;
  auto* a = new ProbeAccelerator();
  auto* b = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  ServiceId svc_b = 0;
  const TileId ta = tb.os.Deploy(app, std::unique_ptr<Accelerator>(a));
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(b), &svc_b);
  const CapRef ep = tb.os.GrantSendToService(ta, svc_b);
  auto mem = tb.os.GrantMemory(ta, 4096, kRightRead | kRightWrite);
  ASSERT_TRUE(mem.has_value());
  ASSERT_TRUE(tb.os.Revoke(ta, *mem));
  tb.sim.Run(3);
  Message msg;
  msg.opcode = 1;
  const SendResult r = tb.os.monitor(ta).Send(std::move(msg), ep, *mem);
  EXPECT_EQ(r.status, MsgStatus::kNoCapability);
  // The backing segment returned to the allocator.
  EXPECT_EQ(tb.os.segments().bytes_allocated(), 0u);
}

TEST(MonitorTest, TraceRecordsTraffic) {
  TestBoard tb;
  auto* a = new ProbeAccelerator();
  auto* b = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  ServiceId svc_b = 0;
  const TileId ta = tb.os.Deploy(app, std::unique_ptr<Accelerator>(a));
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(b), &svc_b);
  const CapRef cap = tb.os.GrantSendToService(ta, svc_b);
  Message msg;
  msg.opcode = 33;
  a->EnqueueSend(msg, cap);
  tb.sim.RunUntil([&] { return !b->received.empty(); }, 1000);
  const auto records = tb.os.monitor(ta).trace().Snapshot();
  ASSERT_FALSE(records.empty());
  bool saw_send = false;
  for (const auto& r : records) {
    if (r.event == TraceEvent::kSend && r.opcode == 33) {
      saw_send = true;
    }
  }
  EXPECT_TRUE(saw_send);
  EXPECT_FALSE(TraceRecordToString(records[0]).empty());
}

TEST(TraceRingTest, BoundedAndOldestFirst) {
  TraceRing ring(3);
  for (Cycle c = 0; c < 5; ++c) {
    ring.Record(TraceRecord{c, TraceEvent::kSend, 0, 0, 0, 0, MsgStatus::kOk});
  }
  EXPECT_EQ(ring.total_recorded(), 5u);
  const auto snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].cycle, 2u);
  EXPECT_EQ(snap[2].cycle, 4u);
}

// ---------------------------------------------------------------------
// Tile and kernel management.
// ---------------------------------------------------------------------

TEST(TileTest, BootCallsOnBootOnce) {
  TestBoard tb;
  auto* probe = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  tb.sim.Run(5);
  EXPECT_TRUE(probe->booted);
}

TEST(TileTest, ReconfigurationTakesTime) {
  TestBoard tb;
  auto* first = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  const TileId t = tb.os.Deploy(app, std::unique_ptr<Accelerator>(first));
  tb.sim.Run(5);
  auto* second = new ProbeAccelerator();
  ASSERT_TRUE(tb.os.Reconfigure(t, std::unique_ptr<Accelerator>(second), /*immediate=*/false));
  EXPECT_TRUE(tb.os.tile(t).reconfiguring());
  tb.sim.Run(100);
  // Partial reconfiguration is 4M cycles; far from done.
  EXPECT_TRUE(tb.os.tile(t).reconfiguring());
  EXPECT_FALSE(second->booted);
}

TEST(TileTest, CrashFaultTriggersFailStop) {
  TestBoard tb;
  auto* a = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  ServiceId svc_crash = 0;
  const TileId ta = tb.os.Deploy(app, std::unique_ptr<Accelerator>(a));
  // An accelerator that raises a fault on its first message.
  class Crasher : public Accelerator {
   public:
    void OnMessage(const Message&, TileApi& api) override { api.RaiseFault("boom"); }
    std::string name() const override { return "crasher"; }
    uint32_t LogicCellCost() const override { return 1000; }
  };
  const TileId tc = tb.os.Deploy(app, std::make_unique<Crasher>(), &svc_crash);
  const CapRef cap = tb.os.GrantSendToService(ta, svc_crash);
  Message msg;
  msg.opcode = 1;
  a->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil(
      [&] { return tb.os.monitor(tc).fault_state() == TileFaultState::kStopped; }, 1000));
  EXPECT_NE(tb.os.monitor(tc).fault_reason().find("boom"), std::string::npos);
}

TEST(KernelTest, DeployAssignsDistinctTilesAndServices) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("a");
  ServiceId s1 = 0;
  ServiceId s2 = 0;
  const TileId t1 = tb.os.Deploy(app, std::make_unique<ProbeAccelerator>(), &s1);
  const TileId t2 = tb.os.Deploy(app, std::make_unique<ProbeAccelerator>(), &s2);
  EXPECT_NE(t1, t2);
  EXPECT_NE(s1, s2);
  EXPECT_GE(s1, kFirstAppService);
  EXPECT_EQ(tb.os.LookupServiceTile(s1), t1);
  EXPECT_EQ(tb.os.AppTiles(app).size(), 2u);
  EXPECT_EQ(tb.os.AppName(app), "a");
}

TEST(KernelTest, DeployFailsWhenBoardFull) {
  TestBoard tb(TestBoardOptions{2, 2});
  AppId app = tb.os.CreateApp("a");
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(tb.os.Deploy(app, std::make_unique<ProbeAccelerator>()), kInvalidTile);
  }
  EXPECT_EQ(tb.os.Deploy(app, std::make_unique<ProbeAccelerator>()), kInvalidTile);
}

TEST(KernelTest, DeployRejectsOversizedAccelerator) {
  TestBoard tb;
  class Huge : public ProbeAccelerator {
   public:
    uint32_t LogicCellCost() const override { return 10'000'000; }
  };
  AppId app = tb.os.CreateApp("a");
  EXPECT_EQ(tb.os.Deploy(app, std::make_unique<Huge>()), kInvalidTile);
}

TEST(KernelTest, PinnedDeployUsesRequestedTile) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("a");
  DeployOptions opts;
  opts.tile = 7;
  EXPECT_EQ(tb.os.Deploy(app, std::make_unique<ProbeAccelerator>(), nullptr, opts), 7u);
  // Pinning to an occupied tile fails.
  EXPECT_EQ(tb.os.Deploy(app, std::make_unique<ProbeAccelerator>(), nullptr, opts),
            kInvalidTile);
}

TEST(KernelTest, GrantMemoryAllocatesSegments) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("a");
  const TileId t = tb.os.Deploy(app, std::make_unique<ProbeAccelerator>());
  auto c1 = tb.os.GrantMemory(t, 1 << 20, kRightRead | kRightWrite);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(tb.os.segments().bytes_allocated(), 1u << 20);
  ASSERT_TRUE(tb.os.Revoke(t, *c1));
  EXPECT_EQ(tb.os.segments().bytes_allocated(), 0u);
}

TEST(KernelTest, MonitorCellsScaleWithTiles) {
  TestBoard small(TestBoardOptions{2, 2});
  TestBoard big(TestBoardOptions{4, 4});
  EXPECT_EQ(big.os.TotalMonitorCells(), 4 * small.os.TotalMonitorCells());
}

TEST(KernelTest, PreemptSwapTransfersState) {
  TestBoard tb;
  // A preemptible counter accelerator.
  class Counter : public Accelerator {
   public:
    void OnMessage(const Message&, TileApi&) override {}
    void Tick(TileApi&) override { ++count; }
    std::string name() const override { return "counter"; }
    uint32_t LogicCellCost() const override { return 1000; }
    bool IsPreemptible() const override { return true; }
    std::vector<uint8_t> SaveState() override {
      std::vector<uint8_t> out;
      PutU64(out, count);
      return out;
    }
    void RestoreState(std::span<const uint8_t> state) override {
      std::vector<uint8_t> buf(state.begin(), state.end());
      count = GetU64(buf, 0);
    }
    uint64_t count = 0;
  };
  AppId app = tb.os.CreateApp("a");
  auto* original = new Counter();
  const TileId t = tb.os.Deploy(app, std::unique_ptr<Accelerator>(original));
  tb.sim.Run(50);
  const uint64_t count_before = original->count;
  ASSERT_GT(count_before, 0u);
  auto* replacement = new Counter();
  ASSERT_TRUE(tb.os.PreemptSwap(t, std::unique_ptr<Accelerator>(replacement)));
  EXPECT_EQ(replacement->count, count_before);  // Context carried over.
  tb.sim.Run(10);
  EXPECT_GT(replacement->count, count_before);  // And it keeps running.
}

TEST(KernelTest, PreemptSwapFailsForNonPreemptible) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("a");
  const TileId t = tb.os.Deploy(app, std::make_unique<ProbeAccelerator>());
  tb.sim.Run(3);
  EXPECT_FALSE(tb.os.PreemptSwap(t, std::make_unique<ProbeAccelerator>()));
}

}  // namespace
}  // namespace apiary
