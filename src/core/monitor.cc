#include "src/core/monitor.h"

#include "src/fpga/resource_model.h"
#include "src/noc/packet_pool.h"

namespace apiary {

Monitor::Monitor(TileId tile, NetworkInterface* ni, MonitorConfig config)
    : tile_(tile),
      ni_(ni),
      config_(config),
      cap_table_(config.cap_entries),
      trace_(config.trace_capacity) {}

uint64_t Monitor::MonitorLogicCells() const {
  return MonitorCellCost(ResourceCosts{}, config_.cap_entries);
}

CapRef Monitor::InstallCap(const Capability& cap) { return cap_table_.Install(cap); }

bool Monitor::RevokeCap(CapRef ref) { return cap_table_.Revoke(ref); }

void Monitor::RevokeAllCaps() { cap_table_.RevokeAll(); }

void Monitor::SetRateLimit(uint64_t flits_per_1k_cycles, uint64_t burst_flits) {
  limiter_ = TokenBucket(flits_per_1k_cycles, burst_flits);
}

void Monitor::SetIdentity(AppId app, ServiceId service) {
  app_ = app;
  service_ = service;
}

void Monitor::FailStop(const std::string& reason) {
  if (fault_state_ == TileFaultState::kStopped) {
    return;  // Idempotent: a second fail-stop (watchdog + kernel) is a no-op.
  }
  fault_state_ = TileFaultState::kStopped;
  fault_reason_ = reason;
  // Drain: work queued by the dead accelerator is discarded; queued inbound
  // requests are bounced with kDestFailed so clients fail fast instead of
  // timing out. Peers that keep talking to us get bounced in BeginCycle.
  counters_.Add("monitor.drained_inbox", inbox_.size());
  counters_.Add("monitor.drained_outbox", outbox_.size());
  outbox_.clear();
  for (const Message& msg : inbox_) {
    BounceWithError(msg, MsgStatus::kDestFailed);
  }
  inbox_.clear();
  Trace(TraceEvent::kFault, kInvalidTile, service_, 0, MsgStatus::kDestFailed);
  counters_.Add("monitor.fail_stops");
  // The drain may have queued bounces that only the tile's tick can flush
  // onto the NoC — and external callers (kernel, watchdog) reach a parked
  // tile with no wake of their own.
  owner_wake_.Wake();
}

void Monitor::Restart() {
  fault_state_ = TileFaultState::kHealthy;
  fault_reason_.clear();
  accelerator_faulted_ = false;
  inbox_.clear();
  outbox_.clear();
  reply_rights_.clear();
  pending_responses_.clear();
  counters_.Add("monitor.restarts");
}

void Monitor::RaiseFault(const std::string& reason) {
  accelerator_faulted_ = true;
  counters_.Add("monitor.accel_faults");
  // The owning Tile decides between fail-stop and preemption based on the
  // accelerator's capabilities; record the reason for it.
  fault_reason_ = reason;
  // Fault injectors raise this on parked tiles; the fail-stop decision runs
  // at the tile's next tick.
  owner_wake_.Wake();
}

void Monitor::Trace(TraceEvent event, TileId peer, ServiceId service, uint16_t opcode,
                    MsgStatus status) {
  trace_.Record(TraceRecord{now_, event, tile_, peer, service, opcode, status});
}

CapRef Monitor::LookupService(ServiceId service) {
  return cap_table_.FindEndpointForService(service);
}

bool Monitor::EnqueuePacket(const Message& msg, TileId dst_tile) {
  if (outbox_.size() >= config_.outbox_messages) {
    return false;
  }
  outbox_.push_back(Outbound{now_ + config_.send_pipeline_cycles, dst_tile, msg});
  return true;
}

SendResult Monitor::Send(Message msg, CapRef endpoint, CapRef mem, CapRef mem2) {
  if (fault_state_ != TileFaultState::kHealthy) {
    counters_.Add("monitor.send_tile_stopped");
    return SendResult{MsgStatus::kTileStopped};
  }
  const Capability* cap = cap_table_.Lookup(endpoint);
  if (cap == nullptr || cap->kind != CapKind::kEndpoint || !cap->HasRights(kRightSend)) {
    counters_.Add("monitor.send_no_cap");
    Trace(TraceEvent::kDenySend, kInvalidTile, msg.dst_service, msg.opcode,
          MsgStatus::kNoCapability);
    return SendResult{MsgStatus::kNoCapability};
  }
  // The capability *is* the authority: destination naming comes from the
  // monitor-held capability, not from untrusted accelerator fields.
  msg.dst_service = cap->dst_service;
  msg.kind = MsgKind::kRequest;
  return SendInternal(std::move(msg), cap->dst_tile, mem, mem2);
}

SendResult Monitor::Reply(const Message& request, Message response, CapRef mem) {
  if (fault_state_ != TileFaultState::kHealthy) {
    counters_.Add("monitor.send_tile_stopped");
    return SendResult{MsgStatus::kTileStopped};
  }
  auto it = reply_rights_.find(request.src_tile);
  if (it == reply_rights_.end() || it->second == 0) {
    counters_.Add("monitor.reply_no_right");
    Trace(TraceEvent::kDenySend, request.src_tile, request.src_service, response.opcode,
          MsgStatus::kNoCapability);
    return SendResult{MsgStatus::kNoCapability};
  }
  response.kind = MsgKind::kResponse;
  response.dst_service = request.src_service;
  response.dst_process = request.dst_process;
  if (response.request_id == 0) {
    response.request_id = request.request_id;
  }
  SendResult result = SendInternal(std::move(response), request.src_tile, mem, kInvalidCapRef);
  if (result.ok()) {
    --it->second;
  }
  return result;
}

bool Monitor::FillGrant(CapRef mem, SegmentGrant* out) {
  const Capability* mem_cap = cap_table_.Lookup(mem);
  if (mem_cap == nullptr || mem_cap->kind != CapKind::kMemory) {
    return false;
  }
  out->segment = mem_cap->segment;
  out->can_read = mem_cap->HasRights(kRightRead);
  out->can_write = mem_cap->HasRights(kRightWrite);
  out->can_grant = mem_cap->HasRights(kRightGrant);
  out->valid = true;
  return true;
}

SendResult Monitor::SendInternal(Message msg, TileId dst_tile, CapRef mem, CapRef mem2) {
  // Attach segment grants iff the accelerator presented memory capabilities;
  // otherwise scrub whatever the untrusted logic wrote there.
  msg.grant = SegmentGrant{};
  msg.grant2 = SegmentGrant{};
  if (mem != kInvalidCapRef && !FillGrant(mem, &msg.grant)) {
    counters_.Add("monitor.send_bad_mem_cap");
    return SendResult{MsgStatus::kNoCapability};
  }
  if (mem2 != kInvalidCapRef && !FillGrant(mem2, &msg.grant2)) {
    counters_.Add("monitor.send_bad_mem_cap");
    return SendResult{MsgStatus::kNoCapability};
  }
  // Stamp the trusted identity fields.
  msg.src_tile = tile_;
  msg.src_service = service_;
  msg.src_app = app_;
  if (msg.request_id == 0) {
    msg.request_id = (static_cast<uint64_t>(tile_) << 48) | next_auto_request_id_++;
  }

  const uint32_t flits =
      1 + static_cast<uint32_t>((msg.WireBytes() + kFlitBytes - 1) / kFlitBytes);
  if (flits > ni_->max_packet_flits()) {
    // Larger than the NI could ever inject: fail fast rather than wedge.
    counters_.Add("monitor.send_too_large");
    return SendResult{MsgStatus::kBadRequest};
  }
  // Check both budgets before consuming either, so a denial never leaves a
  // partial charge against the per-tile or tenant-shared bucket.
  const bool shared_ok = shared_limiter_ == nullptr || shared_limiter_->WouldAllow(now_, flits);
  if (!limiter_.WouldAllow(now_, flits) || !shared_ok) {
    counters_.Add("monitor.send_rate_limited");
    Trace(TraceEvent::kDenySend, dst_tile, msg.dst_service, msg.opcode,
          MsgStatus::kRateLimited);
    return SendResult{MsgStatus::kRateLimited};
  }
  limiter_.TryConsume(now_, flits);
  if (shared_limiter_ != nullptr) {
    shared_limiter_->TryConsume(now_, flits);
  }
  if (!EnqueuePacket(msg, dst_tile)) {
    counters_.Add("monitor.send_backpressure");
    return SendResult{MsgStatus::kBackpressure};
  }
  if (msg.kind == MsgKind::kRequest) {
    ++pending_responses_[dst_tile];
  }
  counters_.Add("monitor.sends");
  Trace(TraceEvent::kSend, dst_tile, msg.dst_service, msg.opcode, MsgStatus::kOk);
  return SendResult{MsgStatus::kOk};
}

void Monitor::FlushOutbox() {
  while (!outbox_.empty() && outbox_.front().ready_at <= now_) {
    Outbound& out = outbox_.front();
    const Vc vc = out.msg.kind == MsgKind::kResponse ? Vc::kResponse : Vc::kRequest;
    // Pre-check injection space: serialization consumes the message (the
    // payload moves into the packet), so backpressure must be detected
    // before the message is touched for the retry next cycle to resend it.
    const uint32_t flits =
        1 + static_cast<uint32_t>((out.msg.WireBytes() + kFlitBytes - 1) / kFlitBytes);
    if (!ni_->CanInject(flits, ni_->EffectiveVc(vc))) {
      // NoC backpressure: retry next cycle, preserving order.
      break;
    }
    PacketRef packet = ni_->pool()->Acquire();
    packet->src = tile_;
    packet->dst = out.dst_tile;
    packet->vc = vc;
    packet->arb_class = arb_class_;
    SerializeMessageInto(std::move(out.msg), *packet);
    (void)ni_->Inject(std::move(packet), now_);  // Cannot fail: space checked above.
    counters_.Add("monitor.flits_sent", flits);
    outbox_.pop_front();
  }
}

void Monitor::BounceWithError(const Message& request, MsgStatus status) {
  if (request.kind != MsgKind::kRequest) {
    return;  // Never bounce a response: avoids error loops.
  }
  Message err;
  err.kind = MsgKind::kResponse;
  err.dst_service = request.src_service;
  err.opcode = request.opcode;
  err.status = status;
  err.request_id = request.request_id;
  err.src_tile = tile_;
  err.src_service = service_;
  err.src_app = app_;
  counters_.Add("monitor.error_bounces");
  // Bypasses the rate limiter (the error path is monitor-owned) but still
  // respects the outbox bound so a flood cannot amplify unboundedly.
  EnqueuePacket(err, request.src_tile);
}

void Monitor::DeliverIncoming(Message msg) {
  if (inbox_.size() >= config_.inbox_messages) {
    counters_.Add("monitor.inbox_overflow");
    BounceWithError(msg, MsgStatus::kBackpressure);
    return;
  }
  if (msg.kind == MsgKind::kRequest) {
    ++reply_rights_[msg.src_tile];
  }
  counters_.Add("monitor.delivered");
  Trace(TraceEvent::kDeliver, msg.src_tile, msg.src_service, msg.opcode, msg.status);
  inbox_.push_back(std::move(msg));
}

void Monitor::BeginCycle(Cycle now) {
  now_ = now;
  while (true) {
    PacketRef packet = ni_->Retrieve();
    if (packet == nullptr) {
      break;
    }
    auto msg = DeserializeMessage(*packet);
    if (!msg.has_value()) {
      counters_.Add("monitor.malformed");
      continue;
    }
    // Defense in depth: the wire src must match the NoC-level source the
    // trusted routers carried.
    if (msg->src_tile != packet->src) {
      counters_.Add("monitor.spoofed_src");
      continue;
    }
    if (fault_state_ != TileFaultState::kHealthy) {
      counters_.Add("monitor.recv_while_stopped");
      Trace(TraceEvent::kDenyReceive, msg->src_tile, msg->src_service, msg->opcode,
            MsgStatus::kDestFailed);
      BounceWithError(*msg, MsgStatus::kDestFailed);
      continue;
    }
    if (msg->kind == MsgKind::kResponse) {
      auto it = pending_responses_.find(msg->src_tile);
      if (it == pending_responses_.end() || it->second == 0) {
        counters_.Add("monitor.recv_unsolicited_response");
        Trace(TraceEvent::kDenyReceive, msg->src_tile, msg->src_service, msg->opcode,
              MsgStatus::kDenied);
        continue;
      }
      --it->second;
      DeliverIncoming(std::move(*msg));
      continue;
    }
    // Requests require the sender to be on the kernel-installed accept list.
    if (allowed_senders_.find(msg->src_tile) == allowed_senders_.end()) {
      counters_.Add("monitor.recv_denied");
      Trace(TraceEvent::kDenyReceive, msg->src_tile, msg->src_service, msg->opcode,
            MsgStatus::kDenied);
      BounceWithError(*msg, MsgStatus::kDenied);
      continue;
    }
    DeliverIncoming(std::move(*msg));
  }
}

std::optional<Message> Monitor::Receive() {
  if (fault_state_ != TileFaultState::kHealthy || inbox_.empty()) {
    return std::nullopt;
  }
  Message msg = std::move(inbox_.front());
  inbox_.pop_front();
  return msg;
}

}  // namespace apiary
