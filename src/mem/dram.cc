#include "src/mem/dram.h"

#include <utility>

namespace apiary {

DramChannel::DramChannel(DramConfig config) : config_(config), banks_(config.num_banks) {}

uint32_t DramChannel::BankOf(uint64_t addr) const {
  // Interleave rows across banks so sequential streams use all banks.
  return static_cast<uint32_t>((addr / config_.row_bytes) % config_.num_banks);
}

uint64_t DramChannel::RowOf(uint64_t addr) const {
  return addr / (static_cast<uint64_t>(config_.row_bytes) * config_.num_banks);
}

bool DramChannel::Enqueue(uint64_t addr, uint32_t bytes, bool is_write, Completion done) {
  Bank& bank = banks_[BankOf(addr)];
  if (bank.queue.size() >= config_.per_bank_queue_depth) {
    counters_.Add("dram.backpressure");
    return false;
  }
  bank.queue.push_back(Request{addr, bytes, is_write, std::move(done)});
  counters_.Add(is_write ? "dram.writes" : "dram.reads");
  counters_.Add("dram.bytes", bytes);
  return true;
}

Cycle DramChannel::ServiceLatency(Bank& bank, const Request& req) {
  const uint64_t row = RowOf(req.addr);
  Cycle latency;
  if (bank.open_row == row) {
    latency = config_.row_hit_cycles;
    counters_.Add("dram.row_hits");
  } else {
    latency = config_.row_miss_cycles;
    counters_.Add("dram.row_misses");
    bank.open_row = row;
  }
  // Each additional burst beyond the first streams out back-to-back.
  const uint32_t bursts =
      (req.bytes + config_.burst_bytes - 1) / config_.burst_bytes;
  if (bursts > 1) {
    latency += static_cast<Cycle>(bursts - 1) * config_.burst_cycles;
  }
  return latency;
}

// APIARY-WAKE(owner): subobject of MemoryController (kBoundaryPoll),
// whose boundary re-poll folds this declaration in; enqueues only happen
// during the owner's own Tick.
Cycle DramChannel::NextActivity(Cycle now) const {
  Cycle next = kNoActivity;
  for (const Bank& bank : banks_) {
    if (bank.in_flight) {
      const Cycle done = bank.busy_until > now ? bank.busy_until : now;
      next = done < next ? done : next;
    } else if (!bank.queue.empty()) {
      return now;
    }
  }
  return next;
}

void DramChannel::Tick(Cycle now) {
  for (Bank& bank : banks_) {
    if (bank.in_flight) {
      if (now >= bank.busy_until) {
        bank.in_flight = false;
        if (bank.current.done) {
          bank.current.done(now);
        }
      } else {
        continue;
      }
    }
    if (!bank.in_flight && !bank.queue.empty()) {
      bank.current = std::move(bank.queue.front());
      bank.queue.pop_front();
      bank.busy_until = now + ServiceLatency(bank, bank.current);
      bank.in_flight = true;
    }
  }
}

}  // namespace apiary
