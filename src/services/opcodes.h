// Wire opcodes for the standard Apiary services. Part of the stable,
// portable API-level interface (Section 4.3): identical on every board.
#ifndef SRC_SERVICES_OPCODES_H_
#define SRC_SERVICES_OPCODES_H_

#include <cstdint>

namespace apiary {

// --- Memory service ---
inline constexpr uint16_t kOpMemAlloc = 0x0101;   // req: u64 bytes, u32 rights
inline constexpr uint16_t kOpMemFree = 0x0102;    // req: u32 cap_ref
inline constexpr uint16_t kOpMemRead = 0x0103;    // req: u64 offset, u32 len (+grant)
inline constexpr uint16_t kOpMemWrite = 0x0104;   // req: u64 offset, data (+grant)
// Capability delegation (requires a grant-right capability): mints an
// attenuated capability over a sub-range for another tile.
// req: u64 offset, u64 len, u32 target_service, u32 rights (+grant)
// resp: u32 cap_ref minted in the target tile's table.
inline constexpr uint16_t kOpMemShare = 0x0105;

// --- Name service ---
inline constexpr uint16_t kOpNameRegister = 0x0201;  // req: u32 service_id, name
inline constexpr uint16_t kOpNameLookup = 0x0202;    // req: name; resp: u32 service_id

// --- Management service ---
inline constexpr uint16_t kOpMgmtHeartbeat = 0x0301;  // req: (empty)
inline constexpr uint16_t kOpMgmtReport = 0x0302;     // req: event string
inline constexpr uint16_t kOpMgmtWatch = 0x0303;      // req: u64 deadline_cycles
inline constexpr uint16_t kOpMgmtQuery = 0x0304;      // resp: counters

// --- Network service ---
inline constexpr uint16_t kOpNetSend = 0x0401;     // req: u32 dst_endpoint, data
inline constexpr uint16_t kOpNetDeliver = 0x0402;  // to app: u32 src_endpoint, data
inline constexpr uint16_t kOpNetRegister = 0x0403; // req: app wants inbound traffic

// --- Load balancer ---
inline constexpr uint16_t kOpLbConfig = 0x0501;    // kernel-side: backend list

// --- Orchestration (elastic replica sets, src/orch) ---
// Load-balancer metric export. resp: u32 backends, u64 in_flight,
// u64 responses, u64 p50_cycles, u64 p99_cycles.
inline constexpr uint16_t kOpOrchStats = 0x0601;
// Adjust autoscaler replica bounds. req: u32 min, u32 max; resp: u32 live.
inline constexpr uint16_t kOpOrchScale = 0x0602;
// Autoscaler status. resp: u32 live, u32 target, u64 scale_ups,
// u64 scale_downs.
inline constexpr uint16_t kOpOrchStatus = 0x0603;

// --- Tenant accounting (src/tenant) ---
// Per-tenant metering export. req: u32 tenant_id; resp: u32 tenant_id,
// u32 tiles, u64 tile_cycles, u64 flits_sent, u64 messages_sent,
// u64 quota_denials, u32 records, u32 records_digest (FNV-1a over the
// deterministic billing-record text).
inline constexpr uint16_t kOpTenantStats = 0x0701;

// --- Application-defined opcodes start here ---
inline constexpr uint16_t kOpAppBase = 0x1000;

}  // namespace apiary

#endif  // SRC_SERVICES_OPCODES_H_
