file(REMOVE_RECURSE
  "libapiary_core.a"
)
