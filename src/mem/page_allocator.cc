#include "src/mem/page_allocator.h"

namespace apiary {

PageAllocator::PageAllocator(uint64_t capacity_bytes, uint64_t page_bytes)
    : page_bytes_(page_bytes), total_pages_(capacity_bytes / page_bytes) {
  free_list_.reserve(total_pages_);
  // Hand out low frames first for determinism.
  for (uint64_t f = total_pages_; f > 0; --f) {
    free_list_.push_back(f - 1);
  }
  frame_requested_share_.assign(total_pages_, 0);
}

std::optional<std::vector<uint64_t>> PageAllocator::Allocate(uint64_t bytes) {
  if (bytes == 0) {
    counters_.Add("pagealloc.bad_request");
    return std::nullopt;
  }
  const uint64_t pages = (bytes + page_bytes_ - 1) / page_bytes_;
  if (pages > free_list_.size()) {
    counters_.Add("pagealloc.failures");
    return std::nullopt;
  }
  std::vector<uint64_t> frames;
  frames.reserve(pages);
  const uint64_t share = bytes / pages;
  uint64_t remainder = bytes - share * pages;
  for (uint64_t i = 0; i < pages; ++i) {
    const uint64_t frame = free_list_.back();
    free_list_.pop_back();
    frames.push_back(frame);
    frame_requested_share_[frame] = share + (i == 0 ? remainder : 0);
  }
  bytes_requested_ += bytes;
  bytes_granted_ += pages * page_bytes_;
  counters_.Add("pagealloc.allocs");
  counters_.Add("pagealloc.pages_served", pages);
  return frames;
}

void PageAllocator::Free(const std::vector<uint64_t>& frames) {
  for (uint64_t frame : frames) {
    bytes_requested_ -= frame_requested_share_[frame];
    bytes_granted_ -= page_bytes_;
    frame_requested_share_[frame] = 0;
    free_list_.push_back(frame);
  }
  counters_.Add("pagealloc.frees");
}

}  // namespace apiary
