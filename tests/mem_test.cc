// Unit and property tests for the memory substrate: segment allocator,
// page allocator, page table and DRAM model.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/mem/dram.h"
#include "src/mem/memory_controller.h"
#include "src/mem/page_allocator.h"
#include "src/mem/page_table.h"
#include "src/mem/segment_allocator.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace apiary {
namespace {

TEST(SegmentTest, ContainsBounds) {
  Segment s{100, 50};
  EXPECT_TRUE(s.Contains(100, 50));
  EXPECT_TRUE(s.Contains(120, 10));
  EXPECT_FALSE(s.Contains(99, 1));
  EXPECT_FALSE(s.Contains(100, 51));
  EXPECT_FALSE(s.Contains(150, 1));
  // Overflow-safe: enormous length must not wrap.
  EXPECT_FALSE(s.Contains(149, ~0ull));
}

TEST(SegmentAllocatorTest, AllocatesAlignedSegments) {
  SegmentAllocator alloc(0, 1 << 20);
  auto seg = alloc.Allocate(1000, 256);
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(seg->base % 256, 0u);
  EXPECT_EQ(seg->length, 1000u);
  EXPECT_EQ(alloc.bytes_allocated(), 1000u);
}

TEST(SegmentAllocatorTest, RejectsZeroAndBadAlignment) {
  SegmentAllocator alloc(0, 4096);
  EXPECT_FALSE(alloc.Allocate(0).has_value());
  EXPECT_FALSE(alloc.Allocate(64, 3).has_value());
}

TEST(SegmentAllocatorTest, FailsWhenFull) {
  SegmentAllocator alloc(0, 4096);
  EXPECT_TRUE(alloc.Allocate(4096, 1).has_value());
  EXPECT_FALSE(alloc.Allocate(1, 1).has_value());
  EXPECT_EQ(alloc.counters().Get("segalloc.failures"), 1u);
}

TEST(SegmentAllocatorTest, FreeAndCoalesce) {
  SegmentAllocator alloc(0, 4096);
  auto a = alloc.Allocate(1024, 1);
  auto b = alloc.Allocate(1024, 1);
  auto c = alloc.Allocate(1024, 1);
  ASSERT_TRUE(a && b && c);
  EXPECT_TRUE(alloc.Free(*b));
  EXPECT_TRUE(alloc.Free(*a));
  EXPECT_TRUE(alloc.Free(*c));
  // Everything freed and coalesced back into one chunk.
  EXPECT_EQ(alloc.free_chunks(), 1u);
  EXPECT_EQ(alloc.LargestFreeChunk(), 4096u);
  EXPECT_DOUBLE_EQ(alloc.ExternalFragmentation(), 0.0);
}

TEST(SegmentAllocatorTest, DoubleFreeRejected) {
  SegmentAllocator alloc(0, 4096);
  auto a = alloc.Allocate(128, 1);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(alloc.Free(*a));
  EXPECT_FALSE(alloc.Free(*a));
  EXPECT_EQ(alloc.counters().Get("segalloc.bad_free"), 1u);
}

TEST(SegmentAllocatorTest, ForeignFreeRejected) {
  SegmentAllocator alloc(0, 4096);
  EXPECT_FALSE(alloc.Free(Segment{10, 20}));
}

TEST(SegmentAllocatorTest, BestFitPrefersSmallestChunk) {
  SegmentAllocator alloc(0, 10000, FitPolicy::kBestFit);
  auto a = alloc.Allocate(2000, 1);
  auto b = alloc.Allocate(500, 1);
  auto c = alloc.Allocate(3000, 1);
  ASSERT_TRUE(a && b && c);
  alloc.Free(*a);  // Hole of 2000 at base 0.
  alloc.Free(*c);  // Hole of 3000 + tail.
  // A 1800-byte request should carve the 2000-byte hole, not the big one.
  auto d = alloc.Allocate(1800, 1);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->base, a->base);
}

TEST(SegmentAllocatorTest, FirstFitTakesLowestAddress) {
  SegmentAllocator alloc(0, 10000, FitPolicy::kFirstFit);
  auto a = alloc.Allocate(2000, 1);
  auto b = alloc.Allocate(500, 1);
  ASSERT_TRUE(a && b);
  alloc.Free(*a);
  auto c = alloc.Allocate(100, 1);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->base, 0u);
}

TEST(SegmentAllocatorTest, FragmentationMetricReflectsHoles) {
  SegmentAllocator alloc(0, 4096);
  auto a = alloc.Allocate(1024, 1);
  auto b = alloc.Allocate(1024, 1);
  auto c = alloc.Allocate(1024, 1);
  ASSERT_TRUE(a && b && c);
  alloc.Free(*a);
  alloc.Free(*c);
  // Free = 1024 + 1024 + 1024 (tail); largest = 2048 (c + tail coalesced).
  EXPECT_GT(alloc.ExternalFragmentation(), 0.0);
}

// Property: a random alloc/free storm preserves the accounting invariants
// (allocated + free == capacity; no overlapping live segments).
class SegmentAllocatorStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SegmentAllocatorStressTest, InvariantsHoldUnderRandomStorm) {
  const uint64_t capacity = 1 << 20;
  SegmentAllocator alloc(0, capacity);
  Rng rng(GetParam());
  std::vector<Segment> live;
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.NextBool(0.6)) {
      const uint64_t bytes = rng.NextInRange(1, 8192);
      auto seg = alloc.Allocate(bytes, 64);
      if (seg.has_value()) {
        live.push_back(*seg);
      }
    } else {
      const size_t idx = rng.NextBelow(live.size());
      ASSERT_TRUE(alloc.Free(live[idx]));
      live[idx] = live.back();
      live.pop_back();
    }
  }
  // Invariant 1: byte accounting.
  uint64_t live_bytes = 0;
  for (const auto& s : live) {
    live_bytes += s.length;
  }
  EXPECT_EQ(alloc.bytes_allocated(), live_bytes);
  EXPECT_EQ(alloc.bytes_free(), capacity - live_bytes);
  // Invariant 2: live segments are disjoint.
  std::map<uint64_t, uint64_t> sorted;
  for (const auto& s : live) {
    sorted[s.base] = s.length;
  }
  uint64_t prev_end = 0;
  for (const auto& [base, len] : sorted) {
    EXPECT_GE(base, prev_end);
    prev_end = base + len;
    EXPECT_LE(prev_end, capacity);
  }
  // Invariant 3: freeing everything coalesces to a single chunk.
  for (const auto& s : live) {
    ASSERT_TRUE(alloc.Free(s));
  }
  EXPECT_EQ(alloc.free_chunks(), 1u);
  EXPECT_EQ(alloc.LargestFreeChunk(), capacity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentAllocatorStressTest,
                         ::testing::Values(1, 2, 3, 42, 1337, 99991));

TEST(PageAllocatorTest, RoundsUpToPages) {
  PageAllocator alloc(1 << 20, 4096);
  auto frames = alloc.Allocate(5000);
  ASSERT_TRUE(frames.has_value());
  EXPECT_EQ(frames->size(), 2u);
  EXPECT_EQ(alloc.bytes_requested(), 5000u);
  EXPECT_EQ(alloc.bytes_granted(), 8192u);
  EXPECT_EQ(alloc.InternalFragmentationBytes(), 3192u);
}

TEST(PageAllocatorTest, ExhaustionFails) {
  PageAllocator alloc(8192, 4096);
  EXPECT_TRUE(alloc.Allocate(8192).has_value());
  EXPECT_FALSE(alloc.Allocate(1).has_value());
}

TEST(PageAllocatorTest, FreeReturnsPagesAndAccounting) {
  PageAllocator alloc(1 << 20, 4096);
  auto frames = alloc.Allocate(10000);
  ASSERT_TRUE(frames.has_value());
  alloc.Free(*frames);
  EXPECT_EQ(alloc.free_pages(), alloc.total_pages());
  EXPECT_EQ(alloc.bytes_requested(), 0u);
  EXPECT_EQ(alloc.bytes_granted(), 0u);
}

TEST(PageAllocatorTest, ZeroByteRequestRejected) {
  PageAllocator alloc(1 << 20, 4096);
  EXPECT_FALSE(alloc.Allocate(0).has_value());
}

TEST(PageTableTest, TranslateMappedPage) {
  PageTable pt(PageTableConfig{});
  pt.Map(5, 9);
  auto t = pt.Translate(5 * 4096 + 123);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->physical_addr, 9u * 4096 + 123);
}

TEST(PageTableTest, UnmappedFaults) {
  PageTable pt(PageTableConfig{});
  EXPECT_FALSE(pt.Translate(0).has_value());
  EXPECT_EQ(pt.counters().Get("pt.faults"), 1u);
}

TEST(PageTableTest, TlbMissThenHit) {
  PageTableConfig cfg;
  PageTable pt(cfg);
  pt.Map(1, 2);
  auto miss = pt.Translate(4096);
  ASSERT_TRUE(miss.has_value());
  EXPECT_FALSE(miss->tlb_hit);
  EXPECT_EQ(miss->latency, cfg.tlb_hit_cycles + cfg.levels * cfg.cycles_per_level);
  auto hit = pt.Translate(4096 + 8);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->tlb_hit);
  EXPECT_EQ(hit->latency, cfg.tlb_hit_cycles);
}

TEST(PageTableTest, TlbEvictsLru) {
  PageTableConfig cfg;
  cfg.tlb_entries = 2;
  PageTable pt(cfg);
  pt.Map(1, 1);
  pt.Map(2, 2);
  pt.Map(3, 3);
  pt.Translate(1 * 4096);  // TLB: {1}
  pt.Translate(2 * 4096);  // TLB: {2,1}
  pt.Translate(3 * 4096);  // Evicts 1. TLB: {3,2}
  auto t1 = pt.Translate(1 * 4096);
  EXPECT_FALSE(t1->tlb_hit);
  auto t3 = pt.Translate(3 * 4096);
  EXPECT_TRUE(t3->tlb_hit);
}

TEST(PageTableTest, UnmapInvalidatesTlb) {
  PageTable pt(PageTableConfig{});
  pt.Map(1, 1);
  pt.Translate(4096);
  pt.Unmap(1);
  EXPECT_FALSE(pt.Translate(4096).has_value());
}

TEST(DramTest, RowHitFasterThanMiss) {
  Simulator sim;
  DramConfig cfg;
  DramChannel dram(cfg);
  sim.Register(&dram);
  Cycle first_done = 0;
  Cycle second_done = 0;
  // Two accesses to the same row: first pays the miss, second hits.
  ASSERT_TRUE(dram.Enqueue(0, 64, false, [&](Cycle c) { first_done = c; }));
  ASSERT_TRUE(dram.Enqueue(64, 64, false, [&](Cycle c) { second_done = c; }));
  sim.Run(200);
  ASSERT_GT(first_done, 0u);
  ASSERT_GT(second_done, first_done);
  EXPECT_EQ(second_done - first_done, cfg.row_hit_cycles);
  EXPECT_EQ(dram.counters().Get("dram.row_hits"), 1u);
  EXPECT_EQ(dram.counters().Get("dram.row_misses"), 1u);
}

TEST(DramTest, BanksServiceInParallel) {
  Simulator sim;
  DramConfig cfg;
  DramChannel dram(cfg);
  sim.Register(&dram);
  int completed = 0;
  // One request per bank: they should all complete around the same time.
  for (uint32_t b = 0; b < cfg.num_banks; ++b) {
    ASSERT_TRUE(dram.Enqueue(static_cast<uint64_t>(b) * cfg.row_bytes, 64, false,
                             [&](Cycle) { ++completed; }));
  }
  sim.Run(cfg.row_miss_cycles + 5);
  EXPECT_EQ(completed, static_cast<int>(cfg.num_banks));
}

TEST(DramTest, QueueBackpressure) {
  DramConfig cfg;
  cfg.per_bank_queue_depth = 2;
  DramChannel dram(cfg);
  EXPECT_TRUE(dram.Enqueue(0, 64, false, nullptr));
  EXPECT_TRUE(dram.Enqueue(0, 64, false, nullptr));
  EXPECT_FALSE(dram.Enqueue(0, 64, false, nullptr));
  EXPECT_EQ(dram.counters().Get("dram.backpressure"), 1u);
}

TEST(DramTest, LargeTransferTakesBurstCycles) {
  Simulator sim;
  DramConfig cfg;
  DramChannel dram(cfg);
  sim.Register(&dram);
  Cycle small_done = 0;
  Cycle big_done = 0;
  ASSERT_TRUE(dram.Enqueue(0, 64, false, [&](Cycle c) { small_done = c; }));
  // Different bank so they run independently.
  ASSERT_TRUE(dram.Enqueue(cfg.row_bytes, 1024, false, [&](Cycle c) { big_done = c; }));
  sim.Run(300);
  ASSERT_GT(small_done, 0u);
  ASSERT_GT(big_done, 0u);
  EXPECT_GT(big_done, small_done);
}

TEST(MemoryControllerTest, ReadBackWrittenData) {
  Simulator sim;
  DramConfig cfg;
  cfg.capacity_bytes = 1 << 20;
  MemoryController mc(cfg);
  sim.Register(&mc);
  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  bool wrote = false;
  ASSERT_TRUE(mc.SubmitWrite(100, data, [&](Cycle) { wrote = true; }));
  sim.Run(100);
  EXPECT_TRUE(wrote);
  std::vector<uint8_t> out(5);
  bool read = false;
  ASSERT_TRUE(mc.SubmitRead(100, out, [&](Cycle) { read = true; }));
  sim.Run(100);
  EXPECT_TRUE(read);
  EXPECT_EQ(out, data);
}

TEST(MemoryControllerTest, OutOfBoundsRejected) {
  DramConfig cfg;
  cfg.capacity_bytes = 4096;
  MemoryController mc(cfg);
  std::vector<uint8_t> buf(64);
  EXPECT_FALSE(mc.SubmitRead(4096 - 32, buf, nullptr));
  EXPECT_FALSE(mc.SubmitWrite(1ull << 40, buf, nullptr));
}

TEST(MemoryControllerTest, DebugAccessBypassesTiming) {
  DramConfig cfg;
  cfg.capacity_bytes = 4096;
  MemoryController mc(cfg);
  std::vector<uint8_t> data = {9, 8, 7};
  mc.DebugWrite(10, data);
  EXPECT_EQ(mc.DebugRead(10, 3), data);
  EXPECT_TRUE(mc.DebugRead(5000, 1).empty());
}

}  // namespace
}  // namespace apiary
