// PayloadBuf: the flat byte buffer carried by messages and NoC packets.
//
// The executed-cycle hot path must not touch the heap in steady state
// (DESIGN.md "Hot-path memory discipline"). PayloadBuf replaces
// std::vector<uint8_t> on that path with two tiers:
//   * small-buffer optimization: payloads up to kInlineBytes (two flits'
//     worth — the overwhelmingly common control-message size) live inline
//     in the object, so moving them is a bounded memcpy and they never
//     allocate at all;
//   * pooled backing: larger payloads borrow a chunk from a size-classed
//     freelist (a PayloadArena), so after warmup a growing buffer reuses a
//     previously retired chunk instead of calling operator new.
// Moves steal the chunk pointer, which is what lets Serialize/Deserialize
// pass a payload through the wire stack without copying it.
//
// Domain confinement: the backing arena is the *current thread's installed
// SimContext* arena (src/sim/parallel/thread_domain.h), falling back to the
// process arena outside any domain. A buf records its birth arena and
// always releases back to it, so chunks never migrate between domains and
// two Simulators on two threads share no allocator state.
//
// Determinism: the arena only changes *where* bytes live, never their
// values or any simulation-visible ordering; seeded runs are byte-identical
// with the arena enabled or disabled (tests/determinism_test.cc).
#ifndef SRC_SIM_PAYLOAD_BUF_H_
#define SRC_SIM_PAYLOAD_BUF_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>
#include <vector>

#include "src/sim/payload_arena.h"

namespace apiary {

class PayloadBuf {
 public:
  using value_type = uint8_t;
  using iterator = uint8_t*;
  using const_iterator = const uint8_t*;

  // Inline capacity: two flits (2 x 32B). Covers the fixed message header
  // plus the PutU64-style control payloads services exchange.
  static constexpr size_t kInlineBytes = 64;

  PayloadBuf() = default;
  PayloadBuf(size_t n, uint8_t fill) { resize(n, fill); }
  PayloadBuf(std::initializer_list<uint8_t> init) {
    append(init.begin(), init.size());
  }
  PayloadBuf(const uint8_t* first, const uint8_t* last) {
    append(first, static_cast<size_t>(last - first));
  }
  explicit PayloadBuf(const std::vector<uint8_t>& v) { append(v.data(), v.size()); }

  PayloadBuf(const PayloadBuf& other) { append(other.data(), other.size()); }
  PayloadBuf(PayloadBuf&& other) noexcept { MoveFrom(other); }

  PayloadBuf& operator=(const PayloadBuf& other) {
    if (this != &other) {
      clear();
      append(other.data(), other.size());
    }
    return *this;
  }
  PayloadBuf& operator=(PayloadBuf&& other) noexcept {
    if (this != &other) {
      ReleaseHeap();
      MoveFrom(other);
    }
    return *this;
  }
  PayloadBuf& operator=(const std::vector<uint8_t>& v) {
    assign(v.data(), v.size());
    return *this;
  }
  PayloadBuf& operator=(std::initializer_list<uint8_t> init) {
    clear();
    append(init.begin(), init.size());
    return *this;
  }

  ~PayloadBuf() { ReleaseHeap(); }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  uint8_t* begin() { return data_; }
  uint8_t* end() { return data_ + size_; }
  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + size_; }
  uint8_t& operator[](size_t i) { return data_[i]; }
  const uint8_t& operator[](size_t i) const { return data_[i]; }
  uint8_t& front() { return data_[0]; }
  uint8_t& back() { return data_[size_ - 1]; }

  void reserve(size_t n) {
    if (n > capacity_) {
      Grow(n);
    }
  }

  void clear() { size_ = 0; }  // Keeps the backing chunk for reuse.

  void resize(size_t n, uint8_t fill = 0) {
    if (n > size_) {
      reserve(n);
      std::memset(data_ + size_, fill, n - size_);
    }
    size_ = n;
  }

  void push_back(uint8_t byte) {
    if (size_ == capacity_) {
      Grow(size_ + 1);
    }
    data_[size_++] = byte;
  }

  void append(const uint8_t* src, size_t n) {
    if (n == 0) {
      return;
    }
    reserve(size_ + n);
    std::memcpy(data_ + size_, src, n);
    size_ += n;
  }

  void assign(const uint8_t* src, size_t n) {
    clear();
    append(src, n);
  }
  void assign(size_t n, uint8_t fill) {
    clear();
    resize(n, fill);
  }
  template <typename It>
    requires(!std::is_integral_v<It>)
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) {
      push_back(static_cast<uint8_t>(*first));
    }
  }

  // Vector-compatible range insert. The common case (appending at end()) is
  // a bulk copy; mid-buffer inserts shift the tail first.
  template <typename It>
    requires(!std::is_integral_v<It>)
  void insert(uint8_t* pos, It first, It last) {
    const size_t at = static_cast<size_t>(pos - data_);
    const size_t n = static_cast<size_t>(std::distance(first, last));
    if (n == 0) {
      return;
    }
    reserve(size_ + n);
    if (at < size_) {
      std::memmove(data_ + at + n, data_ + at, size_ - at);
    }
    uint8_t* out = data_ + at;
    for (; first != last; ++first) {
      *out++ = static_cast<uint8_t>(*first);
    }
    size_ += n;
  }

  void insert(uint8_t* pos, std::initializer_list<uint8_t> init) {
    insert(pos, init.begin(), init.end());
  }

  // Fill insert (vector's iterator-count-value form).
  void insert(uint8_t* pos, size_t n, uint8_t value) {
    const size_t at = static_cast<size_t>(pos - data_);
    if (n == 0) {
      return;
    }
    reserve(size_ + n);
    if (at < size_) {
      std::memmove(data_ + at + n, data_ + at, size_ - at);
    }
    std::memset(data_ + at, value, n);
    size_ += n;
  }

  std::vector<uint8_t> ToVector() const { return std::vector<uint8_t>(begin(), end()); }

  friend bool operator==(const PayloadBuf& a, const PayloadBuf& b) {
    return a.size_ == b.size_ && std::memcmp(a.data_, b.data_, a.size_) == 0;
  }
  friend bool operator!=(const PayloadBuf& a, const PayloadBuf& b) { return !(a == b); }
  friend bool operator==(const PayloadBuf& a, const std::vector<uint8_t>& b) {
    return a.size_ == b.size() && std::memcmp(a.data_, b.data(), a.size_) == 0;
  }
  friend bool operator==(const std::vector<uint8_t>& a, const PayloadBuf& b) {
    return b == a;
  }

  // --- Fallback-arena controls (bench ablation + tests). ---
  // These operate on the process fallback arena — the one serving bufs
  // created outside any installed SimContext. Code running under a
  // Simulator reaches its domain arena via sim.context().arena() instead.
  static void SetArenaEnabled(bool enabled);
  static const PayloadArenaStats& ArenaStats();
  static void ResetArenaStats();
  // Frees every parked freelist chunk (leak-audit hook for tests).
  static void TrimArena();

 private:
  void MoveFrom(PayloadBuf& other) noexcept {
    if (other.data_ == other.inline_) {
      data_ = inline_;
      capacity_ = kInlineBytes;
      size_ = other.size_;
      std::memcpy(inline_, other.inline_, other.size_);
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      arena_ = other.arena_;  // The chunk's birth arena rides with it.
      other.data_ = other.inline_;
      other.capacity_ = kInlineBytes;
      other.arena_ = nullptr;
    }
    other.size_ = 0;
  }

  // Out-of-line slow paths (payload_buf.cc): arena acquire/release.
  void Grow(size_t min_capacity);
  void ReleaseHeap();

  size_t size_ = 0;
  size_t capacity_ = kInlineBytes;
  uint8_t* data_ = inline_;
  // Birth arena of the current heap chunk (null while inline). Chosen at
  // first Grow from the installed SimContext; releases always return here.
  PayloadArena* arena_ = nullptr;
  uint8_t inline_[kInlineBytes];
};

}  // namespace apiary

#endif  // SRC_SIM_PAYLOAD_BUF_H_
