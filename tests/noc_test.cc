// Unit and property tests for the NoC: packets, routing, wormhole flow
// control, virtual channels, network interfaces and the rate limiter.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/noc/mesh.h"
#include "src/noc/packet.h"
#include "src/noc/packet_pool.h"
#include "src/noc/rate_limiter.h"
#include "src/sim/payload_arena.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace apiary {
namespace {

// Test-local pool for hand-built packets; outlives every PacketRef the
// helpers below hand out (packets may be parked in mesh buffers until a
// test-scope Mesh drains or destructs).
PacketPool& TestPool() {
  // Pooled packets retain payload capacity, so the fallback arena backing
  // those chunks must be constructed first (→ destroyed last at exit).
  FallbackPayloadArena();
  static PacketPool pool;
  return pool;
}

PacketRef MakePacket(TileId src, TileId dst, size_t payload_bytes, uint64_t id = 0,
                     Vc vc = Vc::kRequest) {
  PacketRef p = TestPool().Acquire();
  p->src = src;
  p->dst = dst;
  p->vc = vc;
  p->packet_id = id;
  p->payload.assign(payload_bytes, static_cast<uint8_t>(id));
  return p;
}

TEST(PacketTest, FlitCountRounding) {
  EXPECT_EQ(ComputeFlitCount(*MakePacket(0, 1, 0)), 1u);
  EXPECT_EQ(ComputeFlitCount(*MakePacket(0, 1, 1)), 2u);
  EXPECT_EQ(ComputeFlitCount(*MakePacket(0, 1, kFlitBytes)), 2u);
  EXPECT_EQ(ComputeFlitCount(*MakePacket(0, 1, kFlitBytes + 1)), 3u);
}

TEST(PacketTest, FlitHeadTailFlags) {
  auto p = MakePacket(0, 1, kFlitBytes * 2);  // 3 flits.
  p->flit_count = ComputeFlitCount(*p);
  Flit head{p, 0};
  Flit mid{p, 1};
  Flit tail{p, 2};
  EXPECT_TRUE(head.is_head());
  EXPECT_FALSE(head.is_tail());
  EXPECT_FALSE(mid.is_head());
  EXPECT_FALSE(mid.is_tail());
  EXPECT_TRUE(tail.is_tail());
}

TEST(MeshTest, HopsIsManhattanDistance) {
  Mesh mesh(MeshConfig{4, 4, 8, 64});
  EXPECT_EQ(mesh.Hops(0, 0), 0u);
  EXPECT_EQ(mesh.Hops(0, 3), 3u);
  EXPECT_EQ(mesh.Hops(0, 15), 6u);
  EXPECT_EQ(mesh.Hops(5, 10), 2u);
}

TEST(MeshTest, DeliversSinglePacket) {
  Simulator sim;
  Mesh mesh(MeshConfig{4, 4, 8, 64});
  sim.Register(&mesh);
  auto p = MakePacket(0, 15, 64, 77);
  ASSERT_TRUE(mesh.ni(0).Inject(p, sim.now()));
  ASSERT_TRUE(sim.RunUntil([&] { return mesh.ni(15).HasDeliverable(); }, 1000));
  auto got = mesh.ni(15).Retrieve();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->packet_id, 77u);
  EXPECT_EQ(got->src, 0u);
  EXPECT_EQ(got->payload, p->payload);
}

TEST(MeshTest, SelfSendDelivers) {
  Simulator sim;
  Mesh mesh(MeshConfig{2, 2, 8, 64});
  sim.Register(&mesh);
  ASSERT_TRUE(mesh.ni(3).Inject(MakePacket(3, 3, 16, 5), sim.now()));
  ASSERT_TRUE(sim.RunUntil([&] { return mesh.ni(3).HasDeliverable(); }, 100));
  EXPECT_EQ(mesh.ni(3).Retrieve()->packet_id, 5u);
}

TEST(MeshTest, LatencyGrowsWithHops) {
  // Deliver the same-size packet over 1 hop and over the full diagonal; the
  // diagonal must take strictly longer.
  auto measure = [](TileId src, TileId dst) {
    Simulator sim;
    Mesh mesh(MeshConfig{4, 4, 8, 64});
    sim.Register(&mesh);
    mesh.ni(src).Inject(MakePacket(src, dst, 64), sim.now());
    sim.RunUntil([&] { return mesh.ni(dst).HasDeliverable(); }, 1000);
    return sim.now();
  };
  const Cycle near = measure(0, 1);
  const Cycle far = measure(0, 15);
  EXPECT_GT(far, near);
}

// Property: under random many-to-many traffic, every packet is delivered
// exactly once with an intact payload (no loss, duplication, corruption).
class MeshStressTest : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(MeshStressTest, AllPacketsDeliveredExactlyOnce) {
  const auto [width, height, seed] = GetParam();
  Simulator sim;
  Mesh mesh(MeshConfig{static_cast<uint32_t>(width), static_cast<uint32_t>(height), 4, 128});
  sim.Register(&mesh);
  Rng rng(seed);
  const uint32_t n = mesh.num_tiles();
  const int packets = 200;
  std::map<uint64_t, TileId> expected;  // id -> dst
  int injected = 0;
  uint64_t next_id = 1;

  std::map<uint64_t, PayloadBuf> payloads;
  std::map<uint64_t, int> received;
  auto drain = [&] {
    for (uint32_t t = 0; t < n; ++t) {
      while (auto p = mesh.ni(t).Retrieve()) {
        ++received[p->packet_id];
        EXPECT_EQ(expected[p->packet_id], t) << "packet delivered to wrong tile";
        EXPECT_EQ(payloads[p->packet_id], p->payload) << "payload corrupted";
      }
    }
  };
  while (injected < packets) {
    sim.Run(1);
    drain();
    // Try to inject a few packets per cycle from random sources.
    for (int k = 0; k < 4 && injected < packets; ++k) {
      const TileId src = static_cast<TileId>(rng.NextBelow(n));
      const TileId dst = static_cast<TileId>(rng.NextBelow(n));
      auto p = MakePacket(src, dst, rng.NextBelow(200), next_id,
                          rng.NextBool(0.5) ? Vc::kRequest : Vc::kResponse);
      if (mesh.ni(src).Inject(p, sim.now())) {
        expected[next_id] = dst;
        payloads[next_id] = p->payload;
        ++next_id;
        ++injected;
      }
    }
  }
  const bool drained = sim.RunUntil(
      [&] {
        drain();
        return received.size() == expected.size();
      },
      200000);
  ASSERT_TRUE(drained) << "NoC failed to drain: " << received.size() << "/" << expected.size();
  for (const auto& [id, count] : received) {
    EXPECT_EQ(count, 1) << "packet " << id << " duplicated";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MeshStressTest,
    ::testing::Values(std::make_tuple(2, 2, 1ull), std::make_tuple(4, 4, 2ull),
                      std::make_tuple(8, 8, 3ull), std::make_tuple(1, 8, 4ull),
                      std::make_tuple(8, 1, 5ull), std::make_tuple(3, 5, 6ull)));

TEST(MeshTest, InjectBackpressureWhenQueueFull) {
  Simulator sim;
  MeshConfig cfg{2, 2, 4, 8};  // Tiny 8-flit injection queue.
  Mesh mesh(cfg);
  sim.Register(&mesh);
  // A 256-byte packet is 9 flits > 8: can never inject.
  EXPECT_FALSE(mesh.ni(0).Inject(MakePacket(0, 1, 256), sim.now()));
  // 3-flit packets: two fit (6 flits), the third does not.
  EXPECT_TRUE(mesh.ni(0).Inject(MakePacket(0, 1, 64), sim.now()));
  EXPECT_TRUE(mesh.ni(0).Inject(MakePacket(0, 1, 64), sim.now()));
  EXPECT_FALSE(mesh.ni(0).Inject(MakePacket(0, 1, 64), sim.now()));
  EXPECT_GE(mesh.ni(0).counters().Get("ni.inject_backpressure"), 1u);
}

TEST(MeshTest, LatencyHistogramPopulated) {
  Simulator sim;
  Mesh mesh(MeshConfig{4, 4, 8, 64});
  sim.Register(&mesh);
  for (int i = 0; i < 10; ++i) {
    mesh.ni(0).Inject(MakePacket(0, 15, 32, i), sim.now());
  }
  sim.Run(2000);
  EXPECT_EQ(mesh.AggregateLatency().count(), 10u);
  EXPECT_GT(mesh.AggregateLatency().Mean(), 6.0);  // At least the hop count.
}

TEST(MeshTest, WormholePacketsDoNotInterleaveOnAVc) {
  // Two large packets from different sources to the same destination on the
  // same VC: both must arrive intact (wormhole keeps them contiguous).
  Simulator sim;
  Mesh mesh(MeshConfig{4, 1, 2, 64});
  sim.Register(&mesh);
  auto a = MakePacket(0, 3, 300, 1);
  auto b = MakePacket(1, 3, 300, 2);
  mesh.ni(0).Inject(a, sim.now());
  mesh.ni(1).Inject(b, sim.now());
  int got = 0;
  sim.RunUntil(
      [&] {
        while (auto p = mesh.ni(3).Retrieve()) {
          EXPECT_TRUE(p->packet_id == 1 || p->packet_id == 2);
          ++got;
        }
        return got == 2;
      },
      5000);
  EXPECT_EQ(got, 2);
}

TEST(MeshTest, VcsIsolateRequestAndResponseTraffic) {
  Simulator sim;
  Mesh mesh(MeshConfig{4, 1, 2, 256});
  sim.Register(&mesh);
  // Saturate the request VC along the row.
  for (int i = 0; i < 20; ++i) {
    mesh.ni(0).Inject(MakePacket(0, 3, 200, 100 + i, Vc::kRequest), sim.now());
  }
  // A single response packet should still get through promptly.
  mesh.ni(0).Inject(MakePacket(0, 3, 32, 999, Vc::kResponse), sim.now());
  bool response_arrived = false;
  int requests_arrived = 0;
  sim.RunUntil(
      [&] {
        while (auto p = mesh.ni(3).Retrieve()) {
          if (p->packet_id == 999) {
            response_arrived = true;
          } else {
            ++requests_arrived;
          }
        }
        return response_arrived;
      },
      50000);
  EXPECT_TRUE(response_arrived);
  // The response must not have waited for the whole request backlog.
  EXPECT_LT(requests_arrived, 20);
}

TEST(MeshTest, ResourceCostScalesWithTiles) {
  Mesh small(MeshConfig{2, 2, 8, 64});
  Mesh big(MeshConfig{4, 4, 8, 64});
  EXPECT_EQ(big.LogicCellCost(), 4 * small.LogicCellCost());
}

TEST(TokenBucketTest, UnlimitedByDefault) {
  TokenBucket tb;
  EXPECT_TRUE(tb.unlimited());
  EXPECT_TRUE(tb.TryConsume(0, 1000000));
}

TEST(TokenBucketTest, BurstThenThrottle) {
  TokenBucket tb(100, 10);  // 0.1 tokens/cycle, burst 10.
  // The initial burst is available immediately.
  EXPECT_TRUE(tb.TryConsume(0, 10));
  // Bucket now empty: an immediate request fails.
  EXPECT_FALSE(tb.TryConsume(0, 1));
  // After 10 cycles, one token has accumulated.
  EXPECT_TRUE(tb.TryConsume(10, 1));
  EXPECT_FALSE(tb.TryConsume(10, 1));
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  TokenBucket tb(1000, 5);  // 1 token/cycle, burst 5.
  EXPECT_TRUE(tb.TryConsume(0, 5));
  // A long idle period must not accumulate more than the burst.
  EXPECT_FALSE(tb.TryConsume(1000000, 6));
  EXPECT_TRUE(tb.TryConsume(1000000, 5));
}

TEST(TokenBucketTest, WouldAllowDoesNotConsume) {
  TokenBucket tb(1000, 4);
  EXPECT_TRUE(tb.WouldAllow(0, 4));
  EXPECT_TRUE(tb.WouldAllow(0, 4));
  EXPECT_TRUE(tb.TryConsume(0, 4));
  EXPECT_FALSE(tb.WouldAllow(0, 1));
}

TEST(TokenBucketTest, SustainedRateMatchesConfig) {
  TokenBucket tb(500, 8);  // 0.5 tokens/cycle.
  uint64_t granted = 0;
  for (Cycle c = 0; c < 10000; ++c) {
    if (tb.TryConsume(c, 1)) {
      ++granted;
    }
  }
  // ~0.5/cycle over 10k cycles, plus the initial burst.
  EXPECT_NEAR(static_cast<double>(granted), 5008.0, 16.0);
}

TEST(TokenBucketTest, NoDoubleRefillWithinOneCycle) {
  TokenBucket tb(1000, 5);  // 1 token/cycle, burst 5.
  EXPECT_TRUE(tb.TryConsume(0, 5));
  // Three cycles accrue exactly three tokens — a second consume at the same
  // cycle must not re-apply the refill.
  EXPECT_TRUE(tb.TryConsume(3, 3));
  EXPECT_FALSE(tb.TryConsume(3, 1));
}

TEST(WindowMeterTest, UnlimitedByDefault) {
  WindowMeter wm;
  EXPECT_TRUE(wm.unlimited());
  EXPECT_TRUE(wm.TryConsume(0, 1000000));
  EXPECT_EQ(wm.NextWindowStart(123), 123u);
}

// Regression: the boundary cycle W belongs to window 1 exactly once. A grant
// at cycle W must not draw on window 0's remaining allowance, and must not
// double-count into the allowance available at W+1.
TEST(WindowMeterTest, BoundaryCycleChargedExactlyOnce) {
  WindowMeter wm(1, 100);  // 1 grant per 100-cycle window.
  EXPECT_TRUE(wm.TryConsume(99, 1));    // Window 0's grant, spent at W-1.
  EXPECT_FALSE(wm.TryConsume(99, 1));   // Window 0 exhausted.
  EXPECT_TRUE(wm.TryConsume(100, 1));   // Cycle W: window 1's fresh grant.
  EXPECT_FALSE(wm.TryConsume(100, 1));  // Charged at W: no second grant at W.
  EXPECT_FALSE(wm.TryConsume(101, 1));  // ...and none left at W+1 either.
  EXPECT_FALSE(wm.TryConsume(199, 1));  // Window 1 stays exhausted.
  EXPECT_TRUE(wm.TryConsume(200, 1));   // Window 2 starts fresh.
}

TEST(WindowMeterTest, UnusedAllowanceDoesNotCarryOver) {
  WindowMeter wm(5, 100);
  // Windows 0 and 1 go completely unused; window 2 still grants only 5.
  EXPECT_TRUE(wm.TryConsume(250, 5));
  EXPECT_FALSE(wm.TryConsume(250, 1));
  EXPECT_EQ(wm.used(299), 5u);
}

TEST(WindowMeterTest, WouldAllowDoesNotConsume) {
  WindowMeter wm(2, 100);
  EXPECT_TRUE(wm.WouldAllow(0, 2));
  EXPECT_TRUE(wm.WouldAllow(0, 2));
  EXPECT_TRUE(wm.TryConsume(0, 2));
  EXPECT_FALSE(wm.WouldAllow(0, 1));
  EXPECT_EQ(wm.used(0), 2u);
}

TEST(WindowMeterTest, NextWindowStartPinsBoundary) {
  WindowMeter wm(1, 100);
  EXPECT_EQ(wm.NextWindowStart(0), 100u);
  EXPECT_EQ(wm.NextWindowStart(99), 100u);
  // At the boundary cycle itself the *next* window starts one full window on.
  EXPECT_EQ(wm.NextWindowStart(100), 200u);
}

// Weighted arbitration: with an 8:1 weight split, two saturating flows
// contending for the same output link share it roughly by weight.
TEST(MeshTest, WeightedClassesShareContendedLink) {
  Simulator sim;
  Mesh mesh(MeshConfig{4, 1, 8, 64});
  sim.Register(&mesh);
  mesh.SetArbClassWeight(1, 8);
  mesh.SetArbClassWeight(2, 1);
  uint64_t next_id = 1;
  uint64_t delivered_heavy = 0;
  uint64_t delivered_light = 0;
  for (Cycle c = 0; c < 20000; ++c) {
    auto heavy = MakePacket(0, 3, 256, next_id++);
    heavy->arb_class = 1;
    mesh.ni(0).Inject(heavy, sim.now());
    auto light = MakePacket(1, 3, 256, next_id++);
    light->arb_class = 2;
    mesh.ni(1).Inject(light, sim.now());
    sim.Run(1);
    while (mesh.ni(3).HasDeliverable()) {
      auto got = mesh.ni(3).Retrieve();
      (got->arb_class == 1 ? delivered_heavy : delivered_light) += 1;
    }
  }
  EXPECT_GT(delivered_light, 0u);  // Never starved outright.
  EXPECT_GT(delivered_heavy, 3 * delivered_light);  // ...but 8:1 weights bite.
}

// Work conservation: a weight-1 class running alone must keep the link
// busy — weights divide contended bandwidth, they are not absolute caps.
TEST(MeshTest, WeightedArbitrationIsWorkConserving) {
  auto run_alone = [](bool weighted) {
    Simulator sim;
    Mesh mesh(MeshConfig{4, 1, 8, 64});
    sim.Register(&mesh);
    if (weighted) {
      mesh.SetArbClassWeight(1, 8);
      mesh.SetArbClassWeight(2, 1);
    }
    uint64_t next_id = 1;
    uint64_t delivered = 0;
    for (Cycle c = 0; c < 10000; ++c) {
      auto p = MakePacket(0, 3, 256, next_id++);
      p->arb_class = 2;  // The lightest class, with no competition.
      mesh.ni(0).Inject(p, sim.now());
      sim.Run(1);
      while (mesh.ni(3).HasDeliverable()) {
        mesh.ni(3).Retrieve();
        ++delivered;
      }
    }
    return delivered;
  };
  const uint64_t unweighted = run_alone(false);
  const uint64_t weighted = run_alone(true);
  // Within 10% of the unweighted link rate (DRR rounds cost at most an
  // occasional arbitration cycle).
  EXPECT_GE(weighted * 10, unweighted * 9);
}

}  // namespace
}  // namespace apiary
