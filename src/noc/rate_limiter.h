// Token-bucket rate limiter. Instantiated per flow by the Apiary monitor to
// bound an accelerator's injection rate (Section 4.5: "having permissioned
// access and rate limiting are necessary to prevent malicious accelerators
// from ... causing resource exhaustion").
#ifndef SRC_NOC_RATE_LIMITER_H_
#define SRC_NOC_RATE_LIMITER_H_

#include <cstdint>

#include "src/sim/types.h"

namespace apiary {

class TokenBucket {
 public:
  // `tokens_per_1k_cycles` is the refill rate (tokens are flits);
  // `burst_tokens` caps the bucket. A default-constructed bucket is
  // unlimited.
  TokenBucket() = default;
  TokenBucket(uint64_t tokens_per_1k_cycles, uint64_t burst_tokens);

  // True if `cost` tokens are available at `now`; if so, consumes them.
  bool TryConsume(Cycle now, uint64_t cost);

  // Peek without consuming.
  bool WouldAllow(Cycle now, uint64_t cost);

  bool unlimited() const { return unlimited_; }
  uint64_t rate_per_1k() const { return rate_per_1k_; }

 private:
  void Refill(Cycle now);

  bool unlimited_ = true;
  uint64_t rate_per_1k_ = 0;
  uint64_t burst_ = 0;
  // Token count scaled by 1000 to avoid fractional refill loss.
  uint64_t milli_tokens_ = 0;
  Cycle last_refill_ = 0;
};

// Windowed quota meter: grants up to `quota` units per fixed window of
// `window_cycles`. Unlike TokenBucket, unused allowance does not carry over
// between windows, which makes it the right primitive for per-tenant shares
// (memory-channel operations, ICAP loads) where bursts must not accumulate.
//
// Boundary contract: window `k` covers cycles [k*W, (k+1)*W). A grant at the
// boundary cycle k*W is charged to window `k` exactly once — it neither
// consumes the remaining allowance of window `k-1` nor double-counts into
// window `k+1`. The regression tests in tests/noc_test.cc pin this.
class WindowMeter {
 public:
  // A default-constructed meter is unlimited.
  WindowMeter() = default;
  WindowMeter(uint64_t quota_per_window, Cycle window_cycles);

  // True if `cost` units fit in the current window's remaining quota at
  // `now`; if so, charges them to that window.
  bool TryConsume(Cycle now, uint64_t cost);

  // Peek without consuming.
  bool WouldAllow(Cycle now, uint64_t cost);

  // Units charged so far to the window containing `now`.
  uint64_t used(Cycle now);

  // First cycle of the window after the one containing `now` — when a
  // quota-blocked client regains allowance. Pure (no state roll), so
  // callers' NextActivity paths can stay const.
  Cycle NextWindowStart(Cycle now) const {
    return unlimited_ ? now : (now / window_ + 1) * window_;
  }

  bool unlimited() const { return unlimited_; }
  uint64_t quota() const { return quota_; }
  Cycle window_cycles() const { return window_; }

 private:
  void Roll(Cycle now);

  bool unlimited_ = true;
  uint64_t quota_ = 0;
  Cycle window_ = 1;
  Cycle window_index_ = 0;
  uint64_t used_ = 0;
};

}  // namespace apiary

#endif  // SRC_NOC_RATE_LIMITER_H_
