file(REMOVE_RECURSE
  "CMakeFiles/e2_monitor_overhead.dir/e2_monitor_overhead.cc.o"
  "CMakeFiles/e2_monitor_overhead.dir/e2_monitor_overhead.cc.o.d"
  "e2_monitor_overhead"
  "e2_monitor_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_monitor_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
