// Discrete-event queue used alongside the cycle-driven model for sparse,
// timed actions (reconfiguration completion, request arrivals, timeouts).
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/types.h"

namespace apiary {

class EventQueue {
 public:
  using Callback = std::function<void(Cycle)>;

  // Schedules `cb` to run at cycle `when`. Events scheduled for the same
  // cycle run in scheduling order (stable via a sequence number).
  void ScheduleAt(Cycle when, Callback cb);

  // Runs every event due at or before `now`, in time order. Returns the
  // number of events run: callbacks are opaque to the active-set scheduler,
  // so a nonzero return makes the simulator conservatively re-activate all
  // blocks (a spurious tick of a quiescent block is a no-op; a missed one
  // is not).
  size_t RunUntil(Cycle now);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Cycle of the earliest pending event; only valid when !empty().
  Cycle NextEventCycle() const { return heap_.top().when; }

 private:
  struct Event {
    Cycle when;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace apiary

#endif  // SRC_SIM_EVENT_QUEUE_H_
