// Good: all randomness flows through the seeded Rng. Mentions of rand()
// and time(nullptr) in comments must not fire the check.
#include "src/sim/random.h"

namespace apiary {

uint64_t Jitter(Rng& rng) { return rng.NextBelow(16); }

/* block comment with srand(42) and std::random_device inside */
const char* const kLabel = "time(nullptr) inside a string literal is fine";

}  // namespace apiary
