// Tests for the extension subsystems: the DMA service (two-grant copies),
// the remote bridge (cross-board service invocation), and the multi-context
// process host (per-context fault isolation).
#include <gtest/gtest.h>

#include "src/accel/echo.h"
#include "src/accel/multi_context.h"
#include "src/core/service_ids.h"
#include "src/services/dma_service.h"
#include "src/services/memory_service.h"
#include "src/services/network_service.h"
#include "src/services/remote_bridge.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

// ---------------------------------------------------------------------
// DMA service.
// ---------------------------------------------------------------------

struct DmaFixture {
  explicit DmaFixture(TestBoard& tb) : board(tb) {
    tb.os.DeployService(kMemoryService,
                        std::make_unique<MemoryService>(&tb.os, &tb.board.memory()));
    dma = new DmaService(&tb.board.memory());
    tb.os.DeployService(kDmaService, std::unique_ptr<Accelerator>(dma));
    app = tb.os.CreateApp("user");
    probe = new ProbeAccelerator();
    probe_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
    to_mem = tb.os.GrantSendToService(probe_tile, kMemoryService);
    to_dma = tb.os.GrantSendToService(probe_tile, kDmaService);
    src_cap = *tb.os.GrantMemory(probe_tile, 8192, kRightRead | kRightWrite);
    dst_cap = *tb.os.GrantMemory(probe_tile, 8192, kRightRead | kRightWrite);
  }

  // Resolves the physical segment backing a capability (test-side peek).
  Segment SegmentOf(CapRef ref) {
    return board.os.monitor(probe_tile).cap_table().Lookup(ref)->segment;
  }

  TestBoard& board;
  DmaService* dma;
  ProbeAccelerator* probe;
  AppId app = kInvalidApp;
  TileId probe_tile = kInvalidTile;
  CapRef to_mem = kInvalidCapRef;
  CapRef to_dma = kInvalidCapRef;
  CapRef src_cap = kInvalidCapRef;
  CapRef dst_cap = kInvalidCapRef;
};

TEST(DmaServiceTest, CopiesBetweenSegments) {
  TestBoard tb;
  DmaFixture fx(tb);
  // Seed the source segment with a pattern (debug backdoor).
  std::vector<uint8_t> pattern(2048);
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<uint8_t>(i * 7);
  }
  const Segment src = fx.SegmentOf(fx.src_cap);
  const Segment dst = fx.SegmentOf(fx.dst_cap);
  tb.board.memory().DebugWrite(src.base + 100, pattern);

  Message copy;
  copy.opcode = kOpDmaCopy;
  PutU64(copy.payload, 100);  // src offset
  PutU64(copy.payload, 500);  // dst offset
  PutU32(copy.payload, static_cast<uint32_t>(pattern.size()));
  fx.probe->EnqueueSend(copy, fx.to_dma, fx.src_cap, fx.dst_cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 100000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kOk);
  EXPECT_EQ(GetU32(fx.probe->received[0].payload, 0), pattern.size());
  EXPECT_EQ(tb.board.memory().DebugRead(dst.base + 500, pattern.size()), pattern);
}

TEST(DmaServiceTest, RefusesWithoutBothGrants) {
  TestBoard tb;
  DmaFixture fx(tb);
  Message copy;
  copy.opcode = kOpDmaCopy;
  PutU64(copy.payload, 0);
  PutU64(copy.payload, 0);
  PutU32(copy.payload, 64);
  // Only the source capability presented.
  fx.probe->EnqueueSend(copy, fx.to_dma, fx.src_cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 100000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kNoCapability);
  EXPECT_EQ(fx.dma->counters().Get("dma.no_dst_grant"), 1u);
}

TEST(DmaServiceTest, RefusesOutOfBoundsCopy) {
  TestBoard tb;
  DmaFixture fx(tb);
  Message copy;
  copy.opcode = kOpDmaCopy;
  PutU64(copy.payload, 8000);  // 8000 + 1024 > 8192.
  PutU64(copy.payload, 0);
  PutU32(copy.payload, 1024);
  fx.probe->EnqueueSend(copy, fx.to_dma, fx.src_cap, fx.dst_cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 100000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kSegFault);
}

TEST(DmaServiceTest, ReadOnlyDestinationRefused) {
  TestBoard tb;
  DmaFixture fx(tb);
  const CapRef ro = *tb.os.GrantMemory(fx.probe_tile, 4096, kRightRead);
  Message copy;
  copy.opcode = kOpDmaCopy;
  PutU64(copy.payload, 0);
  PutU64(copy.payload, 0);
  PutU32(copy.payload, 64);
  fx.probe->EnqueueSend(copy, fx.to_dma, fx.src_cap, ro);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 100000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kNoCapability);
}

TEST(DmaServiceTest, LargeCopyCompletes) {
  TestBoard tb;
  DmaFixture fx(tb);
  const CapRef big_src = *tb.os.GrantMemory(fx.probe_tile, 1 << 20, kRightRead | kRightWrite);
  const CapRef big_dst = *tb.os.GrantMemory(fx.probe_tile, 1 << 20, kRightRead | kRightWrite);
  const Segment src = fx.SegmentOf(big_src);
  const Segment dst = fx.SegmentOf(big_dst);
  std::vector<uint8_t> pattern(1 << 20);
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<uint8_t>(i ^ (i >> 8));
  }
  tb.board.memory().DebugWrite(src.base, pattern);
  Message copy;
  copy.opcode = kOpDmaCopy;
  PutU64(copy.payload, 0);
  PutU64(copy.payload, 0);
  PutU32(copy.payload, 1 << 20);
  fx.probe->EnqueueSend(copy, fx.to_dma, big_src, big_dst);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 2'000'000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kOk);
  EXPECT_EQ(tb.board.memory().DebugRead(dst.base, 1 << 20), pattern);
}

// ---------------------------------------------------------------------
// Remote bridge: two boards on one external network.
// ---------------------------------------------------------------------

struct TwoBoards {
  TwoBoards()
      : net(50),
        board_a(TestBoard::MakeConfig(TestBoardOptions{}), sim, &net),
        board_b(TestBoard::MakeConfig(TestBoardOptions{}), sim, &net),
        os_a(board_a),
        os_b(board_b) {
    sim.Register(&net);
    os_a.DeployService(kNetworkService,
                       std::make_unique<NetworkService>(
                           &os_a, std::make_unique<Mac100GAdapter>(board_a.mac100g())));
    os_b.DeployService(kNetworkService,
                       std::make_unique<NetworkService>(
                           &os_b, std::make_unique<Mac100GAdapter>(board_b.mac100g())));
    bridge_a = new RemoteBridge();
    bridge_b = new RemoteBridge();
    bridge_a_tile = os_a.Deploy(os_a.CreateApp("bridge"),
                                std::unique_ptr<Accelerator>(bridge_a), &bridge_a_svc);
    bridge_b_tile = os_b.Deploy(os_b.CreateApp("bridge"),
                                std::unique_ptr<Accelerator>(bridge_b), &bridge_b_svc);
    (void)os_a.GrantSendToService(bridge_a_tile, kNetworkService);
    (void)os_b.GrantSendToService(bridge_b_tile, kNetworkService);
  }

  Simulator sim{250.0};
  ExternalNetwork net;
  Board board_a;
  Board board_b;
  ApiaryOs os_a;
  ApiaryOs os_b;
  RemoteBridge* bridge_a;
  RemoteBridge* bridge_b;
  ServiceId bridge_a_svc = 0;
  ServiceId bridge_b_svc = 0;
  TileId bridge_a_tile = kInvalidTile;
  TileId bridge_b_tile = kInvalidTile;
};

TEST(RemoteBridgeTest, CrossBoardServiceCall) {
  TwoBoards tw;
  // Board B hosts an echo service, exposed to remote callers.
  auto* echo = new EchoAccelerator(10);
  ServiceId echo_svc = 0;
  tw.os_b.Deploy(tw.os_b.CreateApp("svc"), std::unique_ptr<Accelerator>(echo), &echo_svc);
  tw.bridge_b->ExposeService(echo_svc,
                             tw.os_b.GrantSendToService(tw.bridge_b_tile, echo_svc));

  // Board A: a probe calls the remote echo through bridge A.
  auto* probe = new ProbeAccelerator();
  const TileId pt = tw.os_a.Deploy(tw.os_a.CreateApp("user"),
                                   std::unique_ptr<Accelerator>(probe));
  const CapRef to_bridge = tw.os_a.GrantSendToService(pt, tw.bridge_a_svc);
  tw.sim.Run(3000);  // MAC bring-up on both boards.

  Message call;
  call.opcode = kOpRemoteCall;
  PutU32(call.payload, tw.board_b.mac100g()->address());
  PutU32(call.payload, tw.bridge_b_svc);
  PutU32(call.payload, echo_svc);
  call.payload.push_back(static_cast<uint8_t>(kOpEcho));
  call.payload.push_back(static_cast<uint8_t>(kOpEcho >> 8));
  call.payload.insert(call.payload.end(), {0xca, 0xfe});
  probe->EnqueueSend(call, to_bridge);

  ASSERT_TRUE(tw.sim.RunUntil([&] { return !probe->received.empty(); }, 200000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
  EXPECT_EQ(probe->received[0].payload, (std::vector<uint8_t>{0xca, 0xfe}));
  EXPECT_EQ(echo->served(), 1u);
  EXPECT_EQ(tw.bridge_a->counters().Get("bridge.calls_out"), 1u);
  EXPECT_EQ(tw.bridge_b->counters().Get("bridge.calls_in"), 1u);
}

TEST(RemoteBridgeTest, UnexposedServiceDenied) {
  TwoBoards tw;
  auto* echo = new EchoAccelerator(10);
  ServiceId echo_svc = 0;
  tw.os_b.Deploy(tw.os_b.CreateApp("svc"), std::unique_ptr<Accelerator>(echo), &echo_svc);
  // NOTE: deliberately not exposed on bridge B.

  auto* probe = new ProbeAccelerator();
  const TileId pt = tw.os_a.Deploy(tw.os_a.CreateApp("user"),
                                   std::unique_ptr<Accelerator>(probe));
  const CapRef to_bridge = tw.os_a.GrantSendToService(pt, tw.bridge_a_svc);
  tw.sim.Run(3000);

  Message call;
  call.opcode = kOpRemoteCall;
  PutU32(call.payload, tw.board_b.mac100g()->address());
  PutU32(call.payload, tw.bridge_b_svc);
  PutU32(call.payload, echo_svc);
  call.payload.push_back(static_cast<uint8_t>(kOpEcho));
  call.payload.push_back(static_cast<uint8_t>(kOpEcho >> 8));
  probe->EnqueueSend(call, to_bridge);

  ASSERT_TRUE(tw.sim.RunUntil([&] { return !probe->received.empty(); }, 200000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kDenied);
  EXPECT_EQ(echo->served(), 0u);
  EXPECT_EQ(tw.bridge_b->counters().Get("bridge.calls_denied"), 1u);
}

TEST(RemoteBridgeTest, ManyConcurrentCallsAllComplete) {
  TwoBoards tw;
  auto* echo = new EchoAccelerator(5);
  ServiceId echo_svc = 0;
  tw.os_b.Deploy(tw.os_b.CreateApp("svc"), std::unique_ptr<Accelerator>(echo), &echo_svc);
  tw.bridge_b->ExposeService(echo_svc,
                             tw.os_b.GrantSendToService(tw.bridge_b_tile, echo_svc));
  auto* probe = new ProbeAccelerator();
  const TileId pt = tw.os_a.Deploy(tw.os_a.CreateApp("user"),
                                   std::unique_ptr<Accelerator>(probe));
  const CapRef to_bridge = tw.os_a.GrantSendToService(pt, tw.bridge_a_svc);
  tw.sim.Run(3000);

  for (uint8_t i = 0; i < 20; ++i) {
    Message call;
    call.opcode = kOpRemoteCall;
    PutU32(call.payload, tw.board_b.mac100g()->address());
    PutU32(call.payload, tw.bridge_b_svc);
    PutU32(call.payload, echo_svc);
    call.payload.push_back(static_cast<uint8_t>(kOpEcho));
    call.payload.push_back(static_cast<uint8_t>(kOpEcho >> 8));
    call.payload.push_back(i);
    probe->EnqueueSend(call, to_bridge);
  }
  ASSERT_TRUE(tw.sim.RunUntil([&] { return probe->received.size() >= 20; }, 500000));
  int ok = 0;
  for (const auto& r : probe->received) {
    ok += r.status == MsgStatus::kOk ? 1 : 0;
  }
  EXPECT_EQ(ok, 20);
  EXPECT_EQ(echo->served(), 20u);
}

// ---------------------------------------------------------------------
// Multi-context host.
// ---------------------------------------------------------------------

struct MchFixture {
  explicit MchFixture(TestBoard& tb, bool per_context = true) {
    host = new MultiContextHost(per_context);
    echo_pid = host->AddContext(std::make_unique<EchoContext>());
    counter_pid = host->AddContext(std::make_unique<CounterContext>());
    faulty_pid = host->AddContext(std::make_unique<FaultyContext>(2));
    app = tb.os.CreateApp("mch");
    host_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(host), &host_svc);
    probe = new ProbeAccelerator();
    probe_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
    cap = tb.os.GrantSendToService(probe_tile, host_svc);
  }

  Message For(ProcessId pid, std::vector<uint8_t> payload) {
    Message msg;
    msg.opcode = kOpEcho;
    msg.dst_process = pid;
    msg.payload = std::move(payload);
    return msg;
  }

  MultiContextHost* host;
  ProbeAccelerator* probe;
  AppId app = kInvalidApp;
  ServiceId host_svc = 0;
  TileId host_tile = kInvalidTile;
  TileId probe_tile = kInvalidTile;
  ProcessId echo_pid = 0;
  ProcessId counter_pid = 0;
  ProcessId faulty_pid = 0;
  CapRef cap = kInvalidCapRef;
};

TEST(MultiContextTest, RoutesByProcessId) {
  TestBoard tb;
  MchFixture fx(tb);
  fx.probe->EnqueueSend(fx.For(fx.echo_pid, {1, 2, 3}), fx.cap);
  std::vector<uint8_t> delta;
  PutU64(delta, 5);
  fx.probe->EnqueueSend(fx.For(fx.counter_pid, delta), fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return fx.probe->received.size() >= 2; }, 50000));
  EXPECT_EQ(fx.probe->received[0].payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(GetU64(fx.probe->received[1].payload, 0), 5u);
}

TEST(MultiContextTest, UnknownProcessRejected) {
  TestBoard tb;
  MchFixture fx(tb);
  fx.probe->EnqueueSend(fx.For(99, {}), fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 50000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kBadRequest);
}

TEST(MultiContextTest, FaultKillsOnlyThatContext) {
  TestBoard tb;
  MchFixture fx(tb, /*per_context=*/true);
  // Two healthy requests, then the context faults on the third.
  for (int i = 0; i < 3; ++i) {
    fx.probe->EnqueueSend(fx.For(fx.faulty_pid, {9}), fx.cap);
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return fx.probe->received.size() >= 3; }, 50000));
  EXPECT_EQ(fx.probe->received[2].status, MsgStatus::kDestFailed);
  EXPECT_FALSE(fx.host->context_alive(fx.faulty_pid));
  // Siblings keep serving; the tile is NOT fail-stopped.
  EXPECT_EQ(tb.os.monitor(fx.host_tile).fault_state(), TileFaultState::kHealthy);
  fx.probe->received.clear();
  fx.probe->EnqueueSend(fx.For(fx.echo_pid, {4}), fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 50000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kOk);
  // Requests to the dead context are answered with errors, not silence.
  fx.probe->received.clear();
  fx.probe->EnqueueSend(fx.For(fx.faulty_pid, {1}), fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 50000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kDestFailed);
}

TEST(MultiContextTest, ConcurrentOnlyModelFailStopsWholeTile) {
  TestBoard tb;
  MchFixture fx(tb, /*per_context=*/false);
  for (int i = 0; i < 3; ++i) {
    fx.probe->EnqueueSend(fx.For(fx.faulty_pid, {9}), fx.cap);
  }
  ASSERT_TRUE(tb.sim.RunUntil(
      [&] { return tb.os.monitor(fx.host_tile).fault_state() == TileFaultState::kStopped; },
      50000));
}

TEST(MultiContextTest, StateSurvivesPreemptSwap) {
  TestBoard tb;
  MchFixture fx(tb);
  std::vector<uint8_t> delta;
  PutU64(delta, 41);
  fx.probe->EnqueueSend(fx.For(fx.counter_pid, delta), fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 50000));
  fx.probe->received.clear();

  // Preempt-swap in a fresh host with the same context layout.
  auto* fresh = new MultiContextHost(true);
  fresh->AddContext(std::make_unique<EchoContext>());
  fresh->AddContext(std::make_unique<CounterContext>());
  fresh->AddContext(std::make_unique<FaultyContext>(2));
  ASSERT_TRUE(tb.os.PreemptSwap(fx.host_tile, std::unique_ptr<Accelerator>(fresh)));

  std::vector<uint8_t> delta2;
  PutU64(delta2, 1);
  fx.probe->EnqueueSend(fx.For(fx.counter_pid, delta2), fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 50000));
  EXPECT_EQ(GetU64(fx.probe->received[0].payload, 0), 42u);  // 41 carried over.
}

// ---------------------------------------------------------------------
// Single-VC ablation plumbing.
// ---------------------------------------------------------------------

TEST(SingleVcTest, ForcedVcStillDeliversCorrectly) {
  Simulator sim;
  MeshConfig cfg{4, 4, 8, 512};
  cfg.force_single_vc = true;
  Mesh mesh(cfg);
  sim.Register(&mesh);
  PacketRef p(new NocPacket());
  p->src = 0;
  p->dst = 15;
  p->vc = Vc::kResponse;  // Will be forced onto the request VC.
  p->payload = {1, 2, 3};
  ASSERT_TRUE(mesh.ni(0).Inject(p, sim.now()));
  ASSERT_TRUE(sim.RunUntil([&] { return mesh.ni(15).HasDeliverable(); }, 1000));
  EXPECT_EQ(mesh.ni(15).Retrieve()->vc, Vc::kRequest);
}

}  // namespace
}  // namespace apiary
