#include "src/sim/logging.h"

#include <cstdio>

#include "src/sim/parallel/thread_domain.h"
#include "src/sim/sim_context.h"

namespace apiary {
namespace {

// Process-wide observability defaults. A domain with its own trace sink
// (SimContext::SetLogSink) shadows g_sink while installed; the level
// threshold stays global — it is set once at startup and only read on the
// hot path.
// APIARY-SHARED(process): log threshold, set before any run starts.
LogLevel g_level = LogLevel::kOff;
// APIARY-SHARED(process): default sink for code outside any domain.
LogSink g_sink = nullptr;
// APIARY-SHARED(process): user cookie for g_sink.
void* g_sink_user = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void SetLogSink(LogSink sink, void* user) {
  g_sink = sink;
  g_sink_user = user;
}

void LogMessage(LogLevel level, const std::string& msg) {
  if (level < g_level || level == LogLevel::kOff) {
    return;
  }
  // Domain sink first: a threaded run captures each domain's trace
  // separately, without any write to process state.
  SimContext* context = ThreadDomain::Current();
  if (context != nullptr && context->log_sink() != nullptr) {
    context->log_sink()(level, msg, context->log_sink_user());
    return;
  }
  if (g_sink != nullptr) {
    g_sink(level, msg, g_sink_user);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace apiary
