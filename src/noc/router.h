// Input-buffered 5-port mesh router with wormhole switching, two virtual
// channels, XY dimension-order routing, and round-robin arbitration.
//
// The Mesh orchestrates all routers in two phases per cycle (commit staged
// flits, then route), which gives every router a consistent view of
// downstream buffer occupancy without explicit credit wires.
#ifndef SRC_NOC_ROUTER_H_
#define SRC_NOC_ROUTER_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/noc/fault_hooks.h"
#include "src/noc/packet.h"
#include "src/sim/ring_buffer.h"
#include "src/stats/summary.h"

namespace apiary {

class NetworkInterface;

enum RouterPort : int {
  kPortNorth = 0,
  kPortSouth = 1,
  kPortEast = 2,
  kPortWest = 3,
  kPortLocal = 4,
};
inline constexpr int kNumPorts = 5;

class Router {
 public:
  Router(uint32_t x, uint32_t y, uint32_t mesh_width, uint32_t mesh_height,
         uint32_t buffer_depth);

  // Wiring (done once by the Mesh).
  void SetNeighbor(RouterPort port, Router* neighbor) { neighbors_[port] = neighbor; }
  void SetLocalInterface(NetworkInterface* ni) { ni_ = ni; }
  void SetFaultModel(NocFaultModel* model) { fault_model_ = model; }

  // Phase 1: staged flits (arrived last cycle) become visible.
  void CommitStaged();

  // Phase 2: forward up to one flit per output port.
  void RouteCycle(Cycle now);

  // Returns true and stages the flit if input buffer (port, vc) has space.
  bool AcceptFlit(RouterPort in_port, const Flit& flit);

  // Free slots in input buffer (port, vc), counting staged flits.
  uint32_t FreeSlots(RouterPort in_port, Vc vc) const;

  uint32_t x() const { return x_; }
  uint32_t y() const { return y_; }
  TileId tile() const { return y_ * mesh_width_ + x_; }

  const CounterSet& counters() const { return counters_; }
  uint64_t flits_routed() const { return flits_routed_; }

  // True while any input buffer holds a flit (staged or committed) — the
  // mesh's quiescence check. O(1): tracked as a running occupancy count.
  bool HasBufferedFlits() const { return occupancy_ != 0; }

  // Estimated logic-cell cost of this router instance (for the FPGA resource
  // model; see src/fpga/resource_model.h for calibration notes).
  static uint32_t LogicCellCost(uint32_t buffer_depth);

 private:
  // Fixed-capacity rings (buffer_depth each, sized once at construction):
  // the input buffer models a hardware FIFO, so its bound is architectural
  // and per-flit queue churn must not touch the heap.
  struct InputBuffer {
    RingBuffer<Flit> flits;
    RingBuffer<Flit> staged;
  };
  struct OutputVcState {
    // Wormhole ownership: the (input port, vc) whose packet currently holds
    // this output vc; -1 when free.
    int owner_port = -1;
  };

  // XY dimension-order route computation for a destination tile.
  RouterPort RoutePort(TileId dst) const;

  // Attempts to forward the head-of-line flit from inputs_[in][vc] through
  // `out`. Returns true on success.
  bool TryForward(RouterPort out, int in, int vc, Cycle now);

  bool DownstreamHasSpace(RouterPort out, Vc vc) const;
  void SendDownstream(RouterPort out, const Flit& flit, Cycle now);

  uint32_t x_;
  uint32_t y_;
  uint32_t mesh_width_;
  uint32_t mesh_height_;
  uint32_t buffer_depth_;

  std::array<Router*, 4> neighbors_{};
  NetworkInterface* ni_ = nullptr;
  NocFaultModel* fault_model_ = nullptr;

  InputBuffer inputs_[kNumPorts][kNumVcs];
  OutputVcState outputs_[kNumPorts][kNumVcs];
  // Round-robin pointers: per output port, the next input port to consider.
  std::array<int, kNumPorts> rr_input_{};
  // Per output port, the next vc to consider (VC-level interleaving).
  std::array<int, kNumPorts> rr_vc_{};

  uint64_t flits_routed_ = 0;
  // Total flits resident across all input buffers (staged + committed).
  uint64_t occupancy_ = 0;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_NOC_ROUTER_H_
