file(REMOVE_RECURSE
  "CMakeFiles/feature_test.dir/feature_test.cc.o"
  "CMakeFiles/feature_test.dir/feature_test.cc.o.d"
  "feature_test"
  "feature_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
