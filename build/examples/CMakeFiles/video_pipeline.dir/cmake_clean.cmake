file(REMOVE_RECURSE
  "CMakeFiles/video_pipeline.dir/video_pipeline.cpp.o"
  "CMakeFiles/video_pipeline.dir/video_pipeline.cpp.o.d"
  "video_pipeline"
  "video_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
