// A10: metrics-driven autoscaling vs static provisioning.
//
// A seeded diurnal + bursty open-loop trace (non-homogeneous Poisson via
// thinning) is replayed against three deployments of the same checksum
// service behind the load balancer:
//   * static-minimal: one replica — cheap, and visibly SLO-violating at peak;
//   * static-over: kOverReplicas replicas sized for peak x burst (the worst
//     case a static operator must assume) — meets the SLO by burning tiles;
//   * autoscaled: starts at one replica; the orchestration stack (placer ->
//     reconfig scheduler -> autoscaler in SLO-latency mode) grows and
//     shrinks the set against observed tail latency.
// Latency is measured from scheduled arrival (coordinated-omission-free), so
// queueing during under-provisioned stretches is fully charged. Reported:
// p50/p99, SLO attainment, and tile-cycles consumed by the replica set.
//
// Deterministic: same seed -> byte-identical output. `--smoke` shrinks the
// run for CI; `--json <path>` emits machine-readable results.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/accel/checksum.h"
#include "src/core/kernel.h"
#include "src/core/service_ids.h"
#include "src/fpga/board.h"
#include "src/orch/autoscaler.h"
#include "src/orch/orch_service.h"
#include "src/orch/placer.h"
#include "src/orch/reconfig_scheduler.h"
#include "src/services/load_balancer.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

constexpr uint64_t kSeed = 7;
constexpr uint32_t kPayloadBytes = 1024;  // ~1024 cycles of service at 1 B/cyc.
constexpr uint32_t kMaxReplicas = 6;  // Autoscaler ceiling (it tracks demand).
// Static over-provisioning must cover the worst case the operator cannot
// predict: peak diurnal rate x burst multiplier = 8 req/1k-cycles at ~1k
// cycles of service each, i.e. 8 replicas.
constexpr uint32_t kOverReplicas = 8;
constexpr Cycle kReconfigCycles = 60'000;  // Scaled-down PR latency (cf. A9).
constexpr Cycle kSloCycles = 10'000;       // The externally promised p99.
constexpr double kTroughPer1k = 0.4;       // Offered load, requests/1k-cycles.
constexpr double kPeakPer1k = 4.0;
constexpr double kBurstMult = 2.0;

struct TraceShape {
  Cycle run_cycles;
  Cycle warmup;  // Arrivals start here (post boot).
  Cycle burst1_at;
  Cycle burst2_at;
  Cycle burst_len;
};

TraceShape MakeShape(bool smoke) {
  TraceShape s;
  s.run_cycles = smoke ? 1'000'000 : 3'000'000;
  s.warmup = 10'000;
  s.burst1_at = s.run_cycles / 5;
  s.burst2_at = (s.run_cycles * 3) / 4;
  s.burst_len = s.run_cycles / 50;
  return s;
}

// Requests per cycle at simulated time t: a diurnal sin^2 profile (trough at
// both ends, peak mid-run) with two burst windows on the shoulders.
double RatePerCycle(double t, const TraceShape& shape) {
  const double phase = std::sin(M_PI * t / static_cast<double>(shape.run_cycles));
  double per_1k = kTroughPer1k + (kPeakPer1k - kTroughPer1k) * phase * phase;
  const auto in_burst = [&](Cycle at) {
    return t >= static_cast<double>(at) && t < static_cast<double>(at + shape.burst_len);
  };
  if (in_burst(shape.burst1_at) || in_burst(shape.burst2_at)) {
    per_1k *= kBurstMult;
  }
  return per_1k / 1000.0;
}

// Non-homogeneous Poisson arrivals by thinning, fully determined by kSeed.
std::vector<Cycle> GenerateArrivals(const TraceShape& shape) {
  Rng rng(kSeed);
  const double rate_max = kPeakPer1k * kBurstMult / 1000.0;
  std::vector<Cycle> arrivals;
  double t = static_cast<double>(shape.warmup);
  while (true) {
    t += rng.NextExponential(1.0 / rate_max);
    if (t >= static_cast<double>(shape.run_cycles)) {
      break;
    }
    if (rng.NextDouble() < RatePerCycle(t, shape) / rate_max) {
      arrivals.push_back(static_cast<Cycle>(t));
    }
  }
  return arrivals;
}

// Open-loop trace replayer: fires each request at its scheduled arrival and
// measures latency from that arrival, so backpressure and queueing during
// under-provisioned stretches are charged to the deployment, not hidden.
class TraceClient : public Accelerator {
 public:
  TraceClient(ServiceId lb_svc, const std::vector<Cycle>* arrivals)
      : lb_svc_(lb_svc), arrivals_(arrivals) {}

  void Tick(TileApi& api) override {
    while (next_ < arrivals_->size() && (*arrivals_)[next_] <= api.now()) {
      Message msg;
      msg.opcode = kOpChecksum;
      msg.payload.assign(kPayloadBytes, static_cast<uint8_t>(next_));
      msg.request_id = next_ + 1;  // Index into arrivals_, 1-based.
      if (!api.Send(std::move(msg), api.LookupService(lb_svc_)).ok()) {
        return;  // Injection backpressure: retry next cycle, clock running.
      }
      ++next_;
      ++sent;
    }
  }

  void OnMessage(const Message& msg, TileApi& api) override {
    if (msg.kind != MsgKind::kResponse || msg.request_id == 0 ||
        msg.request_id > arrivals_->size()) {
      return;
    }
    if (msg.status != MsgStatus::kOk) {
      ++errors;
      return;
    }
    const Cycle rtt = api.now() - (*arrivals_)[msg.request_id - 1];
    latency.Record(rtt);
    slo_ok += (rtt <= kSloCycles) ? 1 : 0;
    ++done;
  }

  std::string name() const override { return "trace_client"; }
  uint32_t LogicCellCost() const override { return 1000; }

  Histogram latency;
  uint64_t sent = 0;
  uint64_t done = 0;
  uint64_t errors = 0;
  uint64_t slo_ok = 0;

 private:
  ServiceId lb_svc_;
  const std::vector<Cycle>* arrivals_;
  size_t next_ = 0;
};

struct RunResult {
  uint64_t sent = 0;
  uint64_t done = 0;
  uint64_t errors = 0;
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  double slo_attainment = 0;
  uint64_t tile_cycles = 0;
  uint64_t scale_ups = 0;
  uint64_t scale_downs = 0;
  uint32_t final_replicas = 0;
};

enum class Deployment { kStaticMinimal, kStaticOver, kAutoscaled };

RunResult RunOne(Deployment deployment, const TraceShape& shape,
                 const std::vector<Cycle>& arrivals) {
  Simulator sim(250.0);
  BoardConfig cfg;
  cfg.part_number = "VU9P";
  cfg.mesh = MeshConfig{4, 4, 8, 512};
  cfg.dram.capacity_bytes = 64ull << 20;
  cfg.mac_kind = MacKind::kNone;
  cfg.partial_reconfig_cycles = kReconfigCycles;
  Board board(cfg, sim, nullptr);
  ApiaryOs os(board);

  AppId app = os.CreateApp("elastic_crc");
  auto* lb = new LoadBalancer();
  ServiceId lb_svc = 0;
  const TileId lb_tile = os.Deploy(app, std::unique_ptr<Accelerator>(lb), &lb_svc);

  auto replica_factory = [] {
    return std::make_unique<ChecksumAccelerator>(/*bytes_per_cycle=*/1);
  };
  const uint32_t initial = deployment == Deployment::kStaticOver ? kOverReplicas : 1;
  std::vector<ServiceId> replica_svcs;
  std::vector<TileId> replica_tiles;
  std::vector<CapRef> replica_eps;
  for (uint32_t i = 0; i < initial; ++i) {
    ServiceId svc = 0;
    const TileId t = os.Deploy(app, replica_factory(), &svc);
    const CapRef ep = os.GrantSendToService(lb_tile, svc);
    lb->AddBackend(ep);
    replica_svcs.push_back(svc);
    replica_tiles.push_back(t);
    replica_eps.push_back(ep);
  }

  auto* client = new TraceClient(lb_svc, &arrivals);
  const TileId client_tile = os.Deploy(app, std::unique_ptr<Accelerator>(client));
  (void)os.GrantSendToService(client_tile, lb_svc);

  // The orchestration stack only exists in the autoscaled deployment.
  std::unique_ptr<Placer> placer;
  std::unique_ptr<ReconfigScheduler> scheduler;
  std::unique_ptr<Autoscaler> autoscaler;
  if (deployment == Deployment::kAutoscaled) {
    placer = std::make_unique<Placer>(&os);
    ReconfigSchedulerConfig rcfg;
    rcfg.drain_cycles = 2'000;
    rcfg.drain_deadline_cycles = 100'000;
    scheduler = std::make_unique<ReconfigScheduler>(&os, app, rcfg);
    AutoscalerConfig acfg;
    acfg.policy = ScalePolicy::kSloLatency;
    acfg.min_replicas = 1;
    acfg.max_replicas = kMaxReplicas;
    acfg.poll_period = 10'000;
    acfg.slo_p99_cycles = 4'000;  // Headroom under the 10k external SLO.
    acfg.slo_down_fraction = 0.45;
    acfg.cooldown_cycles = 100'000;
    acfg.replica_logic_cells = 4'000;
    autoscaler = std::make_unique<Autoscaler>(&os, lb, lb_tile, app, replica_factory,
                                              placer.get(), scheduler.get(), acfg);
    autoscaler->AdoptReplica(replica_svcs[0], replica_tiles[0], replica_eps[0]);
  }

  sim.Run(shape.run_cycles);
  // Drain: let in-flight requests finish (no new arrivals past run_cycles).
  sim.RunUntil([&] { return client->done + client->errors >= client->sent; }, 400'000);

  RunResult r;
  r.sent = client->sent;
  r.done = client->done;
  r.errors = client->errors;
  r.p50 = client->latency.P50();
  r.p99 = client->latency.P99();
  r.slo_attainment =
      client->sent == 0
          ? 0
          : static_cast<double>(client->slo_ok) / static_cast<double>(client->sent);
  if (deployment == Deployment::kAutoscaled) {
    r.tile_cycles = autoscaler->replica_tile_cycles();
    r.scale_ups = autoscaler->scale_ups();
    r.scale_downs = autoscaler->scale_downs();
    r.final_replicas = autoscaler->live_replicas();
  } else {
    r.tile_cycles = static_cast<uint64_t>(initial) * sim.now();
    r.final_replicas = initial;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const TraceShape shape = MakeShape(smoke);
  const std::vector<Cycle> arrivals = GenerateArrivals(shape);

  std::printf("A10: autoscaling vs static provisioning (%s, %llu-cycle trace,\n",
              smoke ? "smoke" : "full",
              static_cast<unsigned long long>(shape.run_cycles));
  std::printf("%zu requests, diurnal %.1f..%.1f req/1k-cycles + %.1fx bursts,\n",
              arrivals.size(), kTroughPer1k, kPeakPer1k, kBurstMult);
  std::printf("SLO p99 <= %llu cycles, partial reconfig %llu cycles)\n\n",
              static_cast<unsigned long long>(kSloCycles),
              static_cast<unsigned long long>(kReconfigCycles));

  const RunResult minimal = RunOne(Deployment::kStaticMinimal, shape, arrivals);
  const RunResult over = RunOne(Deployment::kStaticOver, shape, arrivals);
  const RunResult autos = RunOne(Deployment::kAutoscaled, shape, arrivals);

  Table table("A10: deployments under the same trace");
  table.SetHeader({"deployment", "done", "p50 (cyc)", "p99 (cyc)", "SLO %",
                   "tile-cycles", "ups", "downs"});
  const auto row = [&](const std::string& name, const RunResult& r) {
    table.AddRow({name, Table::Int(r.done), Table::Int(r.p50), Table::Int(r.p99),
                  Table::Num(100 * r.slo_attainment, 1), Table::Int(r.tile_cycles),
                  Table::Int(r.scale_ups), Table::Int(r.scale_downs)});
  };
  row("static-minimal (1)", minimal);
  row("static-over (" + std::to_string(kOverReplicas) + ")", over);
  row("autoscaled (1.." + std::to_string(kMaxReplicas) + ")", autos);
  table.Print();

  const double cycles_vs_over = static_cast<double>(autos.tile_cycles) /
                                static_cast<double>(over.tile_cycles);
  std::printf("\nautoscaled tile-cycles: %.1f%% of over-provisioned (%.1f%% saved)\n",
              100 * cycles_vs_over, 100 * (1 - cycles_vs_over));

  // Acceptance.
  bool pass = true;
  const auto check = [&](bool ok, const std::string& what) {
    std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    pass = pass && ok;
  };
  if (smoke) {
    // CI-friendly invariants: the loop scales, the service answers, and
    // elasticity costs less than static-over.
    check(autos.scale_ups >= 1, "autoscaler scaled up at least once");
    check(autos.done + autos.errors == autos.sent, "every request was answered");
    check(autos.tile_cycles < over.tile_cycles,
          "autoscaled tile-cycles below over-provisioned");
  } else {
    check(minimal.p99 > kSloCycles,
          "static-minimal violates the SLO at peak (p99 " + std::to_string(minimal.p99) +
              " > " + std::to_string(kSloCycles) + ")");
    const bool auto_meets =
        autos.p99 <= kSloCycles ||
        autos.p99 <= static_cast<uint64_t>(1.05 * static_cast<double>(over.p99));
    check(auto_meets, "autoscaled p99 (" + std::to_string(autos.p99) +
                          ") meets the SLO (or is within 5% of over-provisioned)");
    check(autos.tile_cycles <= (over.tile_cycles * 7) / 10,
          "autoscaled consumes >= 30% fewer tile-cycles than over-provisioned");
    check(autos.scale_ups >= 2 && autos.scale_downs >= 1,
          "the loop both grew and shrank the replica set");
    check(autos.done + autos.errors == autos.sent, "every request was answered");
  }

  const std::string json_path = JsonPathArg(argc, argv);
  if (!json_path.empty()) {
    BenchJson json("a10_autoscale");
    json.Param("seed", kSeed);
    json.Param("smoke", smoke ? 1 : 0);
    json.Param("run_cycles", static_cast<uint64_t>(shape.run_cycles));
    json.Param("requests", static_cast<uint64_t>(arrivals.size()));
    json.Param("slo_p99_cycles", static_cast<uint64_t>(kSloCycles));
    json.Param("reconfig_cycles", static_cast<uint64_t>(kReconfigCycles));
    const auto emit = [&](const char* name, const RunResult& r) {
      json.BeginRow();
      json.Metric("deployment", name);
      json.Metric("sent", r.sent);
      json.Metric("done", r.done);
      json.Metric("errors", r.errors);
      json.Metric("p50_cycles", r.p50);
      json.Metric("p99_cycles", r.p99);
      json.Metric("slo_attainment", r.slo_attainment);
      json.Metric("tile_cycles", r.tile_cycles);
      json.Metric("scale_ups", r.scale_ups);
      json.Metric("scale_downs", r.scale_downs);
      json.Metric("final_replicas", static_cast<uint64_t>(r.final_replicas));
    };
    emit("static_minimal", minimal);
    emit("static_over", over);
    emit("autoscaled", autos);
    json.WriteFile(json_path);
  }
  return pass ? 0 : 1;
}
