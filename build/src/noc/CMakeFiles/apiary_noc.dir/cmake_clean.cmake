file(REMOVE_RECURSE
  "CMakeFiles/apiary_noc.dir/mesh.cc.o"
  "CMakeFiles/apiary_noc.dir/mesh.cc.o.d"
  "CMakeFiles/apiary_noc.dir/network_interface.cc.o"
  "CMakeFiles/apiary_noc.dir/network_interface.cc.o.d"
  "CMakeFiles/apiary_noc.dir/rate_limiter.cc.o"
  "CMakeFiles/apiary_noc.dir/rate_limiter.cc.o.d"
  "CMakeFiles/apiary_noc.dir/router.cc.o"
  "CMakeFiles/apiary_noc.dir/router.cc.o.d"
  "libapiary_noc.a"
  "libapiary_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apiary_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
