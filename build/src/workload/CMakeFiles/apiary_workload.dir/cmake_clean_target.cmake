file(REMOVE_RECURSE
  "libapiary_workload.a"
)
