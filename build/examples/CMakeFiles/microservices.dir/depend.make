# Empty dependencies file for microservices.
# This may be replaced when dependencies are built.
