// Application-level opcodes used by the bundled accelerators.
#ifndef SRC_ACCEL_ACCEL_OPCODES_H_
#define SRC_ACCEL_ACCEL_OPCODES_H_

#include "src/services/opcodes.h"

namespace apiary {

inline constexpr uint16_t kOpEcho = kOpAppBase + 1;         // payload echoed back
inline constexpr uint16_t kOpEncodeFrame = kOpAppBase + 2;  // u32 w, u32 h, pixels
inline constexpr uint16_t kOpCompress = kOpAppBase + 3;     // raw bytes -> compressed
inline constexpr uint16_t kOpDecompress = kOpAppBase + 4;   // compressed -> raw bytes
inline constexpr uint16_t kOpKvGet = kOpAppBase + 5;        // u32 klen, key
inline constexpr uint16_t kOpKvPut = kOpAppBase + 6;        // u32 klen, key, value
inline constexpr uint16_t kOpKvDelete = kOpAppBase + 7;     // u32 klen, key
inline constexpr uint16_t kOpChecksum = kOpAppBase + 8;     // bytes -> u32 crc32

}  // namespace apiary

#endif  // SRC_ACCEL_ACCEL_OPCODES_H_
