file(REMOVE_RECURSE
  "libapiary_fpga.a"
)
