#include "src/fpga/resource_model.h"

namespace apiary {

ResourceBudget::ResourceBudget(FpgaPart part, ResourceCosts costs)
    : part_(std::move(part)), costs_(costs) {}

bool ResourceBudget::ChargeStatic(const std::string& label, uint64_t cells) {
  if (cells > free_cells()) {
    return false;
  }
  static_cells_ += cells;
  breakdown_[label] += cells;
  return true;
}

bool ResourceBudget::ReserveTileRegion(uint64_t cells) {
  if (cells > free_cells()) {
    return false;
  }
  tile_region_cells_ += cells;
  return true;
}

uint64_t MonitorCellCost(const ResourceCosts& costs, uint32_t cap_entries) {
  return costs.monitor + static_cast<uint64_t>(costs.monitor_per_cap) * cap_entries;
}

}  // namespace apiary
