file(REMOVE_RECURSE
  "CMakeFiles/e6_fault_containment.dir/e6_fault_containment.cc.o"
  "CMakeFiles/e6_fault_containment.dir/e6_fault_containment.cc.o.d"
  "e6_fault_containment"
  "e6_fault_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_fault_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
