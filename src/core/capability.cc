#include "src/core/capability.h"

namespace apiary {

namespace {
constexpr uint32_t kSlotBits = 20;
constexpr uint32_t kSlotMask = (1u << kSlotBits) - 1;
constexpr uint32_t kGenMask = 0xfff;
}  // namespace

CapRef MakeCapRef(uint32_t slot, uint32_t generation) {
  return (slot & kSlotMask) | ((generation & kGenMask) << kSlotBits);
}

uint32_t CapRefSlot(CapRef ref) { return ref & kSlotMask; }

uint32_t CapRefGeneration(CapRef ref) { return (ref >> kSlotBits) & kGenMask; }

CapabilityTable::CapabilityTable(uint32_t max_entries) : slots_(max_entries) {}

CapRef CapabilityTable::Install(const Capability& cap) {
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].cap.has_value()) {
      slots_[i].cap = cap;
      ++live_count_;
      return MakeCapRef(i, slots_[i].generation);
    }
  }
  return kInvalidCapRef;
}

const Capability* CapabilityTable::Lookup(CapRef ref) const {
  if (ref == kInvalidCapRef) {
    return nullptr;
  }
  const uint32_t slot = CapRefSlot(ref);
  if (slot >= slots_.size() || !slots_[slot].cap.has_value()) {
    return nullptr;
  }
  if ((slots_[slot].generation & 0xfff) != CapRefGeneration(ref)) {
    return nullptr;  // Revoked and possibly reused: stale reference.
  }
  return &*slots_[slot].cap;
}

bool CapabilityTable::Revoke(CapRef ref) {
  const uint32_t slot = CapRefSlot(ref);
  if (slot >= slots_.size() || !slots_[slot].cap.has_value()) {
    return false;
  }
  if ((slots_[slot].generation & 0xfff) != CapRefGeneration(ref)) {
    return false;
  }
  slots_[slot].cap.reset();
  ++slots_[slot].generation;
  --live_count_;
  return true;
}

void CapabilityTable::RevokeAll() {
  for (auto& slot : slots_) {
    if (slot.cap.has_value()) {
      slot.cap.reset();
      ++slot.generation;
    }
  }
  live_count_ = 0;
}

CapRef CapabilityTable::FindEndpointForService(ServiceId service) const {
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    const auto& slot = slots_[i];
    if (slot.cap.has_value() && slot.cap->kind == CapKind::kEndpoint &&
        slot.cap->dst_service == service) {
      return MakeCapRef(i, slot.generation);
    }
  }
  return kInvalidCapRef;
}

}  // namespace apiary
