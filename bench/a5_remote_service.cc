// Ablation A5: local vs remote service invocation — the cost of placing a
// service off-board.
//
// Section 6, open question 3: "Ideally, we could take advantage of the
// network capabilities of Apiary and place the service on any remote CPU,
// maintaining the ability to use an FPGA independent of its on-node CPU."
// This bench quantifies the trade: the same echo service invoked (a) on the
// caller's own board, (b) on a peer board through the remote bridge, and
// (c) on a host CPU behind PCIe (the thing Apiary is trying not to need).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/accel/probe.h"
#include "src/fpga/pcie.h"
#include "src/services/remote_bridge.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

constexpr int kCalls = 200;
constexpr Cycle kServiceCycles = 20;

double RunLocal() {
  BenchBoard bb(BenchBoardOptions{}, /*deploy_services=*/false);
  ApiaryOs& os = bb.os;
  AppId app = os.CreateApp("u");
  ServiceId svc = 0;
  os.Deploy(app, std::make_unique<EchoAccelerator>(kServiceCycles), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = os.GrantSendToService(pt, svc);
  bb.sim.Run(3);
  uint64_t total = 0;
  for (int i = 0; i < kCalls; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload.assign(64, 1);
    const size_t want = probe->received.size() + 1;
    const Cycle start = bb.sim.now();
    probe->EnqueueSend(msg, cap);
    bb.sim.RunUntil([&] { return probe->received.size() >= want; }, 100000);
    total += bb.sim.now() - start;
  }
  return static_cast<double>(total) / kCalls;
}

double RunRemote() {
  Simulator sim(250.0);
  ExternalNetwork net(50);  // ~200ns switch hop each way.
  BoardConfig cfg = BenchBoard::MakeConfig(BenchBoardOptions{});
  Board board_a(cfg, sim, &net);
  Board board_b(cfg, sim, &net);
  ApiaryOs os_a(board_a);
  ApiaryOs os_b(board_b);
  // Registered after the boards (tiles first, fabric last) so frame arrival
  // is visible to service tiles on the next cycle — the same order TestBoard
  // and BenchBoard use, which the network service's boundary-poll scheduling
  // reproduces exactly.
  sim.Register(&net);
  for (ApiaryOs* os : {&os_a, &os_b}) {
    Board& b = os == &os_a ? board_a : board_b;
    os->DeployService(kNetworkService,
                      std::make_unique<NetworkService>(
                          os, std::make_unique<Mac100GAdapter>(b.mac100g())));
  }
  auto* bridge_a = new RemoteBridge();
  auto* bridge_b = new RemoteBridge();
  ServiceId bsvc_a = 0;
  ServiceId bsvc_b = 0;
  const TileId bt_a =
      os_a.Deploy(os_a.CreateApp("br"), std::unique_ptr<Accelerator>(bridge_a), &bsvc_a);
  const TileId bt_b =
      os_b.Deploy(os_b.CreateApp("br"), std::unique_ptr<Accelerator>(bridge_b), &bsvc_b);
  (void)os_a.GrantSendToService(bt_a, kNetworkService);
  (void)os_b.GrantSendToService(bt_b, kNetworkService);
  ServiceId echo_svc = 0;
  os_b.Deploy(os_b.CreateApp("svc"), std::make_unique<EchoAccelerator>(kServiceCycles),
              &echo_svc);
  bridge_b->ExposeService(echo_svc, os_b.GrantSendToService(bt_b, echo_svc));
  auto* probe = new ProbeAccelerator();
  const TileId pt = os_a.Deploy(os_a.CreateApp("u"), std::unique_ptr<Accelerator>(probe));
  const CapRef cap = os_a.GrantSendToService(pt, bsvc_a);
  sim.Run(3000);  // MAC bring-up.

  uint64_t total = 0;
  for (int i = 0; i < kCalls; ++i) {
    Message call;
    call.opcode = kOpRemoteCall;
    PutU32(call.payload, board_b.mac100g()->address());
    PutU32(call.payload, bsvc_b);
    PutU32(call.payload, echo_svc);
    call.payload.push_back(static_cast<uint8_t>(kOpEcho));
    call.payload.push_back(static_cast<uint8_t>(kOpEcho >> 8));
    call.payload.insert(call.payload.end(), 64, 1);
    const size_t want = probe->received.size() + 1;
    const Cycle start = sim.now();
    probe->EnqueueSend(call, cap);
    sim.RunUntil([&] { return probe->received.size() >= want; }, 500000);
    total += sim.now() - start;
  }
  return static_cast<double>(total) / kCalls;
}

double RunHostCpu() {
  // Service on the local host CPU behind PCIe: request out, software
  // service time, response back.
  Simulator sim(250.0);
  PcieEndpoint up{PcieConfig{}};
  PcieEndpoint down{PcieConfig{}};
  sim.Register(&up);
  sim.Register(&down);
  constexpr Cycle kHostService = 500;  // Syscall + handler (~2us).
  uint64_t total = 0;
  for (int i = 0; i < kCalls; ++i) {
    bool done = false;
    const Cycle start = sim.now();
    up.Submit(64 + 53, [&](Cycle) {
      sim.ScheduleAfter(kHostService, [&](Cycle) {
        down.Submit(64 + 53, [&](Cycle) { done = true; });
      });
    });
    sim.RunUntil([&] { return done; }, 1'000'000);
    total += sim.now() - start;
  }
  return static_cast<double>(total) / kCalls;
}

}  // namespace

int main() {
  std::printf("A5: where should a service live? 64B echo, %d calls each\n", kCalls);

  const double local = RunLocal();
  const double remote = RunRemote();
  const double host = RunHostCpu();
  Table table("A5: service placement round-trip (cycles, 4ns each)");
  table.SetHeader({"placement", "RTT (cycles)", "RTT (us)", "vs local"});
  table.AddRow({"same board (NoC)", Table::Num(local, 0), Table::Num(local * 4 / 1000, 2),
                "1.0x"});
  table.AddRow({"peer board (bridge+MAC)", Table::Num(remote, 0),
                Table::Num(remote * 4 / 1000, 2), Table::Num(remote / local, 1) + "x"});
  table.AddRow({"local host CPU (PCIe)", Table::Num(host, 0),
                Table::Num(host * 4 / 1000, 2), Table::Num(host / local, 1) + "x"});
  table.Print();
  std::printf(
      "\nexpected shape: on-board calls are tens of cycles; the remote-board path\n"
      "adds two MAC serializations and fabric hops (~order 10us) but needs no CPU\n"
      "anywhere; the host-CPU path is comparable or worse than the remote board —\n"
      "supporting the paper's position that rarely-used services can live on a\n"
      "*remote* machine rather than forcing every FPGA to keep a host (Section 6).\n");
  return 0;
}
