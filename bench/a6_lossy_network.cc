// Ablation A6: the reliable transport on a lossy fabric.
//
// Section 2 lists "reliable network protocols" among the infrastructure
// each FPGA project currently rebuilds. Apiary builds it once, inside the
// network service. This bench sweeps the fabric's frame-loss rate and
// compares goodput and tail latency with the ARQ transport on vs off (off =
// the client's coarse application-level timeout is the only recovery).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/services/gateway.h"
#include "src/stats/table.h"
#include "src/workload/client.h"

using namespace apiary;

namespace {

struct Result {
  uint64_t completed;
  double p50_us;
  double p99_us;
  uint64_t losses;
  uint64_t recoveries;  // Transport retransmits or app-level timeouts.
};

Result Run(double loss_rate, bool reliable) {
  BenchBoardOptions opts;
  BenchBoard bb(opts, /*deploy_services=*/false);
  bb.net.SetLossRate(loss_rate, 42);
  TransportConfig tcfg;
  tcfg.rto_cycles = 2500;
  auto* netsvc = new NetworkService(
      &bb.os, std::make_unique<Mac100GAdapter>(bb.board.mac100g()), reliable, tcfg);
  bb.os.DeployService(kNetworkService, std::unique_ptr<Accelerator>(netsvc));

  AppId app = bb.os.CreateApp("svc");
  ServiceId echo_svc = 0;
  bb.os.Deploy(app, std::make_unique<EchoAccelerator>(50), &echo_svc);
  auto* gw = new NetGateway();
  ServiceId gw_svc = 0;
  const TileId gt = bb.os.Deploy(app, std::unique_ptr<Accelerator>(gw), &gw_svc);
  (void)bb.os.GrantSendToService(gt, kNetworkService);
  gw->SetBackend(bb.os.GrantSendToService(gt, echo_svc));

  ClientConfig ccfg;
  ccfg.server_endpoint = bb.board.mac100g()->address();
  ccfg.dst_service = gw_svc;
  ccfg.open_loop = false;
  ccfg.concurrency = 4;
  ccfg.max_requests = 400;
  ccfg.reliable = reliable;
  ccfg.transport = tcfg;
  ccfg.retry_timeout_cycles = 15000;
  ClientHost client(ccfg, &bb.net, [](uint64_t, Rng&) {
    return ClientRequest{kOpEcho, PayloadBuf(64, 1)};
  });
  bb.sim.Register(&client);
  bb.sim.RunUntil([&] { return client.received() >= ccfg.max_requests; }, 30'000'000);

  Result r;
  r.completed = client.received();
  r.p50_us = static_cast<double>(client.latency().P50()) * 4 / 1000;
  r.p99_us = static_cast<double>(client.latency().P99()) * 4 / 1000;
  r.losses = bb.net.counters().Get("extnet.dropped_loss");
  r.recoveries = reliable ? netsvc->transport().retransmissions() +
                                client.timeouts()  // Should stay ~0 app-side.
                          : client.timeouts();
  return r;
}

}  // namespace

int main() {
  std::printf("A6: frame loss vs reliable transport (400 echo RTTs, window-4 client)\n");

  Table table("A6: goodput and latency on a lossy fabric");
  table.SetHeader({"loss rate", "transport", "completed", "p50 (us)", "p99 (us)",
                   "frames lost", "recoveries"});
  for (double loss : {0.0, 0.01, 0.05, 0.15}) {
    for (bool reliable : {false, true}) {
      const Result r = Run(loss, reliable);
      char lossbuf[16];
      std::snprintf(lossbuf, sizeof(lossbuf), "%.0f%%", loss * 100);
      table.AddRow({lossbuf, reliable ? "ARQ (netsvc)" : "app timeout",
                    Table::Int(r.completed), Table::Num(r.p50_us, 2),
                    Table::Num(r.p99_us, 2), Table::Int(r.losses),
                    Table::Int(r.recoveries)});
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: without the transport, every lost frame costs a full 60us\n"
      "application timeout (a second loss of the same request costs two), so p99\n"
      "scales with the loss rate; with the ARQ in the network service, recovery\n"
      "happens at the 10us RTO below the application — 6x better tails at every\n"
      "loss rate, and p50 stays at the lossless baseline until loss is extreme.\n"
      "Infrastructure built once in the OS instead of once per accelerator project\n"
      "(Section 2).\n");
  return 0;
}
