# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for a5_remote_service.
