// Bad: tenant policy reaching into accelerator logic — tenants are
// principals with quotas, not implementations; the dependency must stay
// one-way (accelerators never see tenants either).
#ifndef SRC_TENANT_ROGUE_H_
#define SRC_TENANT_ROGUE_H_

#include "src/accel/echo.h"

#endif  // SRC_TENANT_ROGUE_H_
