// Tests for the comparison baselines: host-mediated (Coyote-style), raw
// queues, and AmorphOS-style time slicing.
#include <gtest/gtest.h>

#include "src/baseline/hosted.h"
#include "src/baseline/raw_queue.h"
#include "src/baseline/timesliced.h"
#include "src/sim/simulator.h"

namespace apiary {
namespace {

struct ClientSink : ExternalEndpoint {
  std::vector<EthFrame> frames;
  std::vector<Cycle> at;
  void OnFrame(EthFrame f, Cycle now) override {
    frames.push_back(std::move(f));
    at.push_back(now);
  }
};

TEST(HostedTest, CompletesARequest) {
  Simulator sim;
  ExternalNetwork net(25);
  sim.Register(&net);
  HostedConfig cfg;
  HostedSystem hosted(cfg, sim, &net);
  ClientSink client;
  const uint32_t client_addr = net.RegisterEndpoint(&client);

  EthFrame req;
  req.src_endpoint = client_addr;
  req.dst_endpoint = 0;  // Hosted registered first.
  req.payload = {1, 2, 3};
  net.Send(std::move(req), sim.now());
  ASSERT_TRUE(sim.RunUntil([&] { return !client.frames.empty(); }, 100000));
  EXPECT_EQ(hosted.completed(), 1u);
  EXPECT_EQ(client.frames[0].payload, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(HostedTest, LatencyIncludesMediationCosts) {
  Simulator sim;
  ExternalNetwork net(25);
  sim.Register(&net);
  HostedConfig cfg;
  HostedSystem hosted(cfg, sim, &net);
  ClientSink client;
  const uint32_t client_addr = net.RegisterEndpoint(&client);
  EthFrame req;
  req.src_endpoint = client_addr;
  req.dst_endpoint = 0;
  req.payload.assign(64, 1);
  const Cycle start = sim.now();
  net.Send(std::move(req), sim.now());
  ASSERT_TRUE(sim.RunUntil([&] { return !client.frames.empty(); }, 100000));
  const Cycle latency = client.at[0] - start;
  // Lower bound: 2x fabric latency + CPU in + PCIe there and back + accel +
  // CPU out = 50 + 500 + ~352 + 200 + 375 > 1400.
  EXPECT_GT(latency, 1400u);
  EXPECT_GT(hosted.cpu_busy_cycles(), 800u);
}

TEST(HostedTest, ComputeFunctionApplied) {
  Simulator sim;
  ExternalNetwork net(10);
  sim.Register(&net);
  HostedConfig cfg;
  cfg.compute = [](const std::vector<uint8_t>& in) {
    std::vector<uint8_t> out = in;
    for (auto& b : out) {
      b ^= 0xff;
    }
    return out;
  };
  HostedSystem hosted(cfg, sim, &net);
  ClientSink client;
  const uint32_t client_addr = net.RegisterEndpoint(&client);
  EthFrame req;
  req.src_endpoint = client_addr;
  req.dst_endpoint = 0;
  req.payload = {0x0f};
  net.Send(std::move(req), sim.now());
  ASSERT_TRUE(sim.RunUntil([&] { return !client.frames.empty(); }, 100000));
  EXPECT_EQ(client.frames[0].payload[0], 0xf0);
}

TEST(HostedTest, SaturatesWhenOfferedLoadExceedsCpu) {
  Simulator sim;
  ExternalNetwork net(10);
  sim.Register(&net);
  HostedConfig cfg;
  cfg.cpu_cores = 1;
  HostedSystem hosted(cfg, sim, &net);
  ClientSink client;
  const uint32_t client_addr = net.RegisterEndpoint(&client);
  // Offer far more than one core can mediate (875 cycles of CPU per op).
  for (int i = 0; i < 500; ++i) {
    EthFrame req;
    req.src_endpoint = client_addr;
    req.dst_endpoint = 0;
    req.payload = {1};
    net.Send(std::move(req), sim.now());
  }
  sim.Run(100000);
  // Throughput is CPU-bound: ~100000/875 ~ 114 completions max.
  EXPECT_LT(hosted.completed(), 130u);
  EXPECT_GT(hosted.completed(), 80u);
}

TEST(HostedTest, MoreCoresMoreThroughput) {
  auto run = [](uint32_t cores) {
    Simulator sim;
    ExternalNetwork net(10);
    sim.Register(&net);
    HostedConfig cfg;
    cfg.cpu_cores = cores;
    HostedSystem hosted(cfg, sim, &net);
    ClientSink client;
    const uint32_t client_addr = net.RegisterEndpoint(&client);
    for (int i = 0; i < 1000; ++i) {
      EthFrame req;
      req.src_endpoint = client_addr;
      req.dst_endpoint = 0;
      req.payload = {1};
      net.Send(std::move(req), sim.now());
    }
    sim.Run(100000);
    return hosted.completed();
  };
  EXPECT_GT(run(4), 2 * run(1));
}

TEST(RawQueueTest, TransfersAfterSerialization) {
  Simulator sim;
  RawQueue q(32, 16);
  sim.Register(&q);
  std::vector<uint8_t> data(96, 7);  // 3 cycles at 32 B/cycle.
  ASSERT_TRUE(q.Push(PayloadBuf(data), sim.now()));
  EXPECT_FALSE(q.Pop(sim.now()).has_value());  // Not yet transferred.
  sim.Run(5);
  auto got = q.Pop(sim.now());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, data);
}

TEST(RawQueueTest, DepthBound) {
  RawQueue q(32, 2);
  EXPECT_TRUE(q.Push({1}, 0));
  EXPECT_TRUE(q.Push({2}, 0));
  EXPECT_FALSE(q.Push({3}, 0));
}

TEST(RawQueueTest, Fifo) {
  Simulator sim;
  RawQueue q(32, 16);
  sim.Register(&q);
  q.Push({1}, sim.now());
  q.Push({2}, sim.now());
  sim.Run(10);
  EXPECT_EQ((*q.Pop(sim.now()))[0], 1);
  EXPECT_EQ((*q.Pop(sim.now()))[0], 2);
}

TEST(TimeSlicedTest, SingleAppRunsWithoutReconfig) {
  Simulator sim;
  TimeSlicedConfig cfg;
  cfg.num_apps = 1;
  cfg.service_cycles = 100;
  TimeSlicedFpga fpga(cfg);
  sim.Register(&fpga);
  for (int i = 0; i < 10; ++i) {
    fpga.Submit(0, sim.now());
  }
  sim.Run(2000);
  EXPECT_EQ(fpga.completed(0), 10u);
  EXPECT_EQ(fpga.reconfigurations(), 0u);
}

TEST(TimeSlicedTest, SwitchingPaysReconfiguration) {
  Simulator sim;
  TimeSlicedConfig cfg;
  cfg.num_apps = 2;
  cfg.slice_cycles = 1000;
  cfg.reconfig_cycles = 10000;
  cfg.service_cycles = 100;
  TimeSlicedFpga fpga(cfg);
  sim.Register(&fpga);
  // Both apps always have work.
  for (int i = 0; i < 200; ++i) {
    fpga.Submit(0, 0);
    fpga.Submit(1, 0);
  }
  sim.Run(100000);
  EXPECT_GT(fpga.reconfigurations(), 3u);
  EXPECT_GT(fpga.completed(0), 0u);
  EXPECT_GT(fpga.completed(1), 0u);
  // Useful throughput is badly diluted: each 1000-cycle slice costs a
  // 10000-cycle swap, so < 20% of ideal.
  EXPECT_LT(fpga.total_completed(), 200u);
}

TEST(TimeSlicedTest, WorkConservingWhenOthersIdle) {
  Simulator sim;
  TimeSlicedConfig cfg;
  cfg.num_apps = 2;
  cfg.slice_cycles = 1000;
  cfg.reconfig_cycles = 10000;
  cfg.service_cycles = 100;
  TimeSlicedFpga fpga(cfg);
  sim.Register(&fpga);
  for (int i = 0; i < 50; ++i) {
    fpga.Submit(0, 0);
  }
  sim.Run(20000);
  // App 1 never has work, so app 0 keeps the region without swaps.
  EXPECT_EQ(fpga.completed(0), 50u);
  EXPECT_EQ(fpga.reconfigurations(), 0u);
}

}  // namespace
}  // namespace apiary
