#include "src/workload/frame_source.h"

#include <cmath>

#include "src/core/message.h"
#include "src/sim/random.h"

namespace apiary {

std::vector<uint8_t> GenerateFrame(uint32_t width, uint32_t height, uint64_t seed,
                                   uint64_t frame_index) {
  std::vector<uint8_t> pixels(static_cast<size_t>(width) * height);
  Rng rng(seed * 1315423911u + frame_index);
  // Scene parameters: a diagonal gradient, a moving bright square, and a
  // band of texture noise.
  const uint32_t sq = width / 4 == 0 ? 1 : width / 4;
  const uint32_t sx = static_cast<uint32_t>((frame_index * 3) % (width > sq ? width - sq : 1));
  const uint32_t sy = static_cast<uint32_t>((frame_index * 2) % (height > sq ? height - sq : 1));
  for (uint32_t y = 0; y < height; ++y) {
    for (uint32_t x = 0; x < width; ++x) {
      int v = static_cast<int>((x * 96) / width + (y * 96) / height) + 32;
      if (x >= sx && x < sx + sq && y >= sy && y < sy + sq) {
        v += 80;  // The moving object.
      }
      if (y > (height * 3) / 4) {
        v += static_cast<int>(rng.NextBelow(32));  // Textured floor.
      }
      if (v > 255) {
        v = 255;
      }
      pixels[static_cast<size_t>(y) * width + x] = static_cast<uint8_t>(v);
    }
  }
  return pixels;
}

PayloadBuf FrameToRequestPayload(uint32_t width, uint32_t height,
                                           const std::vector<uint8_t>& pixels) {
  PayloadBuf payload;
  payload.reserve(8 + pixels.size());
  PutU32(payload, width);
  PutU32(payload, height);
  payload.insert(payload.end(), pixels.begin(), pixels.end());
  return payload;
}

}  // namespace apiary
