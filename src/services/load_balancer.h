// Load balancer: fans requests out across replicated backend accelerators
// and routes responses back — the paper's scale-out story ("a replicated
// accelerator with internal load balancing for higher bandwidth", 4.1).
//
// Beyond forwarding, the balancer is the orchestration layer's sensor: it
// tracks per-request latency and an integral of queue depth over time, and
// exports both over the wire (kOpOrchStats) and to kernel-side callers
// (src/orch's autoscaler polls TakeWindowLatency / outstanding_cycle_sum).
#ifndef SRC_SERVICES_LOAD_BALANCER_H_
#define SRC_SERVICES_LOAD_BALANCER_H_

#include <map>
#include <vector>

#include "src/core/accelerator.h"
#include "src/sim/clocked.h"
#include "src/stats/histogram.h"
#include "src/stats/summary.h"

namespace apiary {

class LoadBalancer : public Accelerator {
 public:
  // Adds a backend by the endpoint capability this tile holds for it
  // (minted by the kernel during wiring).
  void AddBackend(CapRef endpoint) { backends_.push_back(Backend{endpoint, 0}); }

  // Replaces the whole backend set (membership change). In-flight requests
  // keep their recorded endpoint, so responses still correlate and drain
  // queries (InFlightOn) stay accurate across churn.
  void ReplaceBackends(const std::vector<CapRef>& endpoints);

  // Handles kOpLbConfig (payload: packed u32 CapRefs naming the new backend
  // set), kOpOrchStats (metric export), and forwards everything else to a
  // backend.
  void OnMessage(const Message& msg, TileApi& api) override;

  // Purely reactive: the queue-depth integral is accrued lazily on in-flight
  // membership changes (see AccrueIntegral), never per tick, so the tile can
  // park — through executed cycles and fast-forward windows alike — without
  // losing a single queue-cycle. Equal to a per-tick accumulation at every
  // read point because the in-flight count is constant between messages.
  // APIARY-WAKE(tile): purely reactive service — the owning Tile's NI sink
  // wake ends the park on message delivery.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    (void)now;
    return kNoActivity;
  }

  std::string name() const override { return "load_balancer"; }
  uint32_t LogicCellCost() const override { return 8000; }

  const CounterSet& counters() const { return counters_; }
  size_t num_backends() const { return backends_.size(); }
  uint64_t in_flight() const { return in_flight_.size(); }
  // Requests currently outstanding on one specific backend endpoint; zero
  // means the backend is drained and safe to tear down.
  uint64_t InFlightOn(CapRef endpoint) const;
  // Queue-depth integral through cycle `now` inclusive: sum over cycles
  // t <= now of the in-flight count at the start of cycle t.
  uint64_t outstanding_cycle_sum(Cycle now) const {
    uint64_t sum = outstanding_cycle_sum_;
    if (now + 1 > integral_upto_) {
      sum += (now + 1 - integral_upto_) * in_flight_.size();
    }
    return sum;
  }
  // Request->response latency over the whole run.
  const Histogram& latency() const { return latency_; }
  // Latency since the previous call; the autoscaler's per-poll window.
  Histogram TakeWindowLatency();

 private:
  struct Backend {
    CapRef endpoint;
    uint64_t outstanding;
  };
  struct InFlight {
    Message original;   // The request to Reply() to.
    CapRef endpoint;    // Backend it was forwarded to (stable across config).
    Cycle sent_at = 0;  // Forward time, for latency accounting.
  };

  size_t PickBackend();
  // Folds the integral through cycle `now` inclusive at the *current*
  // in-flight count. Called before every in-flight membership change: the
  // departing/arriving request's cycle is credited at the pre-change count
  // (matching a per-tick accumulation, where Tick runs before message
  // delivery), and the new count applies from now + 1.
  void AccrueIntegral(Cycle now) {
    if (now + 1 > integral_upto_) {
      outstanding_cycle_sum_ += (now + 1 - integral_upto_) * in_flight_.size();
      integral_upto_ = now + 1;
    }
  }

  std::vector<Backend> backends_;
  size_t rr_next_ = 0;
  uint64_t next_forward_id_ = 1;
  std::map<uint64_t, InFlight> in_flight_;  // Keyed by forwarded request id.
  uint64_t outstanding_cycle_sum_ = 0;
  Cycle integral_upto_ = 0;  // First cycle NOT yet folded into the integral.
  Histogram latency_;
  Histogram window_latency_;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_SERVICES_LOAD_BALANCER_H_
