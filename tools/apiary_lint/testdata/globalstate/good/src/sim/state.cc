// Good: constants, function locals, and one annotated deliberate global.
namespace apiary {

constexpr int kTableSize = 64;
const char* const kName = "apiary";

// APIARY-SHARED(process): fallback ledger for out-of-domain callers.
int g_fallback_refs = 0;

int Next() {
  int local = kTableSize;
  return local + g_fallback_refs;
}

}  // namespace apiary
