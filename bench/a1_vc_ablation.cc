// Ablation A1: why two virtual channels?
//
// Section 4.5 cites the message-dependent-deadlock literature; Apiary's NoC
// gives responses their own VC. This ablation measures what a single shared
// channel costs: response latency under request congestion (head-of-line
// blocking), dual-VC versus forced single-VC on the same mesh.
#include <cstdio>

#include "src/noc/mesh.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

// Background: heavy request traffic along row 0 toward tile 3; probe:
// response packets on the same path, latency recorded.
Histogram Run(bool single_vc, double background_load) {
  Simulator sim;
  MeshConfig cfg{4, 4, 4, 512};
  cfg.force_single_vc = single_vc;
  Mesh mesh(cfg);
  sim.Register(&mesh);
  Rng rng(17);
  Histogram response_latency;
  uint64_t id = 1;
  std::map<uint64_t, Cycle> inject_time;

  for (Cycle t = 0; t < 200000; ++t) {
    sim.Run(1);
    // Background requests: 0 -> 3, size 160B (6 flits).
    if (rng.NextBool(background_load)) {
      PacketRef p(new NocPacket());
      p->src = 0;
      p->dst = 3;
      p->vc = Vc::kRequest;
      p->payload.assign(160, 1);
      mesh.ni(0).Inject(p, sim.now());
    }
    // Probe responses: every 200 cycles, 0 -> 3, 32B.
    if (t % 200 == 0) {
      PacketRef p(new NocPacket());
      p->src = 0;
      p->dst = 3;
      p->vc = Vc::kResponse;
      p->packet_id = id;
      p->payload.assign(32, 2);
      if (mesh.ni(0).Inject(p, sim.now())) {
        inject_time[id] = sim.now();
        ++id;
      }
    }
    while (auto got = mesh.ni(3).Retrieve()) {
      auto it = inject_time.find(got->packet_id);
      if (it != inject_time.end()) {
        response_latency.Record(sim.now() - it->second);
        inject_time.erase(it);
      }
    }
  }
  return response_latency;
}

}  // namespace

int main() {
  std::printf("A1: response latency under request congestion — 2 VCs vs 1 VC\n");
  std::printf("(background 160B requests 0->3; probed 32B responses on the same path)\n");

  Table table("A1: probe response latency (cycles)");
  table.SetHeader({"background load", "VCs", "p50", "p99", "max", "delivered"});
  for (double load : {0.1, 0.3, 0.5}) {
    for (bool single : {false, true}) {
      const Histogram h = Run(single, load);
      char loadbuf[32];
      std::snprintf(loadbuf, sizeof(loadbuf), "%.0f%%", load * 100);
      table.AddRow({loadbuf, single ? "1 (shared)" : "2 (split)", Table::Int(h.P50()),
                    Table::Int(h.P99()), Table::Int(h.max()), Table::Int(h.count())});
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: with split VCs the response latency stays near the\n"
      "zero-load baseline at every background level; with one shared channel the\n"
      "responses queue behind multi-flit request wormholes and the tail grows with\n"
      "load — the head-of-line blocking (and, at the limit, request-response\n"
      "deadlock risk) that motivates VC separation in Section 4.5.\n");
  return 0;
}
