#include "src/orch/reconfig_scheduler.h"

#include <utility>

#include "src/sim/logging.h"

namespace apiary {

ReconfigScheduler::ReconfigScheduler(ApiaryOs* os, AppId app,
                                     ReconfigSchedulerConfig config)
    : os_(os), app_(app), config_(config) {
  os_->sim().Register(this);
}

void ReconfigScheduler::ScheduleLoad(TileId tile, AccelFactory factory,
                                     LoadCallback done) {
  Job job;
  job.kind = JobKind::kLoad;
  job.tile = tile;
  job.factory = std::move(factory);
  job.on_load = std::move(done);
  job.queued_at = now_;
  jobs_.push_back(std::move(job));
  counters_.Add("orch.loads_queued");
  // New work for an idle (parked) scheduler; callers are root-phase blocks.
  RequestWake();
}

void ReconfigScheduler::ScheduleTeardown(TileId tile, std::function<bool()> drained,
                                         TeardownCallback done) {
  Job job;
  job.kind = JobKind::kTeardown;
  job.tile = tile;
  job.drained = std::move(drained);
  job.on_teardown = std::move(done);
  job.queued_at = now_;
  jobs_.push_back(std::move(job));
  counters_.Add("orch.teardowns_queued");
  RequestWake();
}

void ReconfigScheduler::SetRateQuota(uint32_t loads_per_window, Cycle window_cycles) {
  quota_loads_per_window_ = loads_per_window;
  quota_window_cycles_ = window_cycles == 0 ? 1 : window_cycles;
  quota_window_index_ = 0;
  quota_used_ = 0;
}

bool ReconfigScheduler::QuotaAllows(Cycle now) {
  if (quota_loads_per_window_ == 0) {
    return true;
  }
  const Cycle idx = now / quota_window_cycles_;
  if (idx != quota_window_index_) {
    quota_window_index_ = idx;
    quota_used_ = 0;
  }
  return quota_used_ < quota_loads_per_window_;
}

void ReconfigScheduler::ChargeQuota(Cycle now) {
  if (quota_loads_per_window_ == 0) {
    return;
  }
  const Cycle idx = now / quota_window_cycles_;
  if (idx != quota_window_index_) {
    quota_window_index_ = idx;
    quota_used_ = 0;
  }
  ++quota_used_;
}

bool ReconfigScheduler::IcapFree() const {
  // One configuration port per part: any tile mid-reconfiguration — ours or
  // a Supervisor recovery — owns it.
  for (TileId t = 0; t < os_->num_tiles(); ++t) {
    if (os_->tile(t).reconfiguring()) {
      return false;
    }
  }
  return true;
}

void ReconfigScheduler::StartNext(Cycle now) {
  if (active_.has_value() || jobs_.empty()) {
    return;
  }
  Active a;
  a.job = std::move(jobs_.front());
  jobs_.pop_front();
  a.job.queued_at = now;  // Drain deadline runs from reaching the head.
  active_ = std::move(a);
}

void ReconfigScheduler::FinishActive(bool ok) {
  // Move the job out before invoking its callback: the callback may schedule
  // new work (push into jobs_) or inspect queue state.
  Active a = std::move(*active_);
  active_.reset();
  if (a.job.kind == JobKind::kLoad) {
    counters_.Add(ok ? "orch.loads_live" : "orch.loads_aborted");
    if (a.job.on_load) {
      a.job.on_load(a.job.tile, ok ? a.service : kInvalidService, ok);
    }
  } else {
    counters_.Add(ok ? "orch.teardowns_done" : "orch.teardowns_aborted");
    if (a.job.on_teardown) {
      a.job.on_teardown(a.job.tile, ok);
    }
  }
}

void ReconfigScheduler::Tick(Cycle now) {
  now_ = now;
  StartNext(now);
  if (!active_.has_value()) {
    return;
  }
  Active& a = *active_;
  Job& job = a.job;

  if (a.loading) {
    // Bitstream in flight; the tile flips out of reconfiguring() when the
    // load (or blank) completes.
    if (os_->tile(job.tile).reconfiguring()) {
      return;
    }
    if (job.kind == JobKind::kLoad &&
        os_->tile(job.tile).monitor().fault_state() != TileFaultState::kHealthy) {
      FinishActive(false);  // Faulted during boot; the supervisor owns it now.
      return;
    }
    FinishActive(true);
    return;
  }

  if (job.kind == JobKind::kTeardown) {
    // Phase 1: drain. Poll the predicate; require it to hold for
    // drain_cycles so responses clear the NoC, and force the teardown if it
    // never holds by the deadline (a stuck requester must not pin a region).
    if (job.drain_ok_since == kInvalidCycle) {
      const bool deadline = now - job.queued_at > config_.drain_deadline_cycles;
      if (!job.drained || job.drained()) {
        job.drain_ok_since = now;
      } else if (deadline) {
        counters_.Add("orch.teardowns_forced");
        APIARY_LOG(kWarn) << "reconfig_scheduler: drain deadline on tile "
                          << job.tile << "; forcing teardown";
        job.drain_ok_since = now;
      } else {
        return;
      }
    }
    if (now - job.drain_ok_since < config_.drain_cycles) {
      return;
    }
    // Phase 2: the blanking bitstream goes through the same serialized port,
    // and counts against the tenant's ICAP rate quota like any other push.
    if (!QuotaAllows(now)) {
      counters_.Add("orch.quota_stall_cycles");
      return;
    }
    if (!IcapFree()) {
      counters_.Add("orch.icap_stall_cycles");
      return;
    }
    if (!os_->Undeploy(job.tile, /*immediate=*/false)) {
      FinishActive(false);  // Already vacant (e.g. torn down by recovery).
      return;
    }
    ChargeQuota(now);
    a.loading = true;
    counters_.Add("orch.teardowns_started");
    return;
  }

  // Load job: claim the ICAP, then deploy with real reconfiguration latency.
  if (!QuotaAllows(now)) {
    counters_.Add("orch.quota_stall_cycles");
    return;
  }
  if (!IcapFree()) {
    counters_.Add("orch.icap_stall_cycles");
    return;
  }
  if (!os_->tile(job.tile).vacant() ||
      os_->tile(job.tile).monitor().fault_state() != TileFaultState::kHealthy) {
    FinishActive(false);  // The region was lost between placement and load.
    return;
  }
  DeployOptions options;
  options.tile = job.tile;
  options.immediate = false;
  ServiceId service = kInvalidService;
  const TileId landed = os_->Deploy(app_, job.factory(), &service, options);
  if (landed == kInvalidTile) {
    FinishActive(false);
    return;
  }
  ChargeQuota(now);
  a.service = service;
  a.loading = true;
  counters_.Add("orch.loads_started");
}

}  // namespace apiary
