file(REMOVE_RECURSE
  "CMakeFiles/a2_router_buffers.dir/a2_router_buffers.cc.o"
  "CMakeFiles/a2_router_buffers.dir/a2_router_buffers.cc.o.d"
  "a2_router_buffers"
  "a2_router_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a2_router_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
