# Empty dependencies file for e7_scaleout.
# This may be replaced when dependencies are built.
