// DomainPartition: spatial decomposition of a W x H mesh into shards.
//
// Partition rule (also documented in DESIGN.md "Parallel simulation
// engine"): the mesh is sliced along its longer axis — columns when
// width >= height, rows otherwise — into `num_shards` contiguous bands.
// Shard s owns the slice coordinates [s*L/num_shards, (s+1)*L/num_shards)
// of the split axis (L = axis length), so shards differ in size by at most
// one slice and a shard count larger than the axis simply yields empty
// shards (legal: they tick nothing and cut nothing). Each shard owns every
// tile in its band — router, NI, and whatever blocks report that tile as
// their PartitionHome (the tile itself, and through it monitor +
// accelerator).
//
// Banded slicing (not checkerboard) is deliberate: every cut edge is a
// straight mesh column/row, so each shard has at most two neighbors, the
// number of BoundaryLink shims grows with the perimeter (min(W,H) per cut)
// rather than the area, and each shard's conservative sync in
// parallel_simulator.h waits on at most two route_done grants per cycle.
//
// The partition is pure index math: building one has no side effects on the
// mesh. Determinism note: the sharded schedule is a function of the SHARD
// COUNT, not the worker-thread count — runs that should be compared
// byte-for-byte must use the same num_shards (ParallelSimulator pins the
// shard count independently of threads for exactly this reason).
#ifndef SRC_SIM_PARALLEL_DOMAIN_PARTITION_H_
#define SRC_SIM_PARALLEL_DOMAIN_PARTITION_H_

#include <cstdint>
#include <vector>

#include "src/sim/types.h"

namespace apiary {

struct DomainPartition {
  uint32_t width = 0;
  uint32_t height = 0;
  uint32_t num_shards = 0;
  // True when the split axis is x (column bands); false for row bands.
  bool split_columns = true;

  // tile -> owning shard (size width*height).
  std::vector<uint32_t> shard_of_tile;
  // shard -> owned tiles, ascending tile id (empty for empty shards).
  std::vector<std::vector<uint32_t>> shard_tiles;
  // shard -> shards it shares at least one cut mesh link with (sorted,
  // unique). Symmetric: b in neighbors[a] iff a in neighbors[b].
  std::vector<std::vector<uint32_t>> neighbors;

  static DomainPartition Build(uint32_t width, uint32_t height, uint32_t shards);

  uint32_t ShardOfTile(TileId tile) const { return shard_of_tile[tile]; }
  bool SameShard(TileId a, TileId b) const { return shard_of_tile[a] == shard_of_tile[b]; }
};

}  // namespace apiary

#endif  // SRC_SIM_PARALLEL_DOMAIN_PARTITION_H_
