// Fixed-capacity FIFO ring buffer.
//
// The router input VCs and NI injection queues are bounded by construction
// (buffer_depth / inject_queue_flits), yet were modeled with std::deque —
// which heap-allocates block nodes as it churns on every executed cycle.
// RingBuffer allocates its slots exactly once and then pushes/pops with two
// index updates, keeping the per-flit cost allocation-free.
//
// pop_front() resets the vacated slot to a default-constructed T so that
// reference-holding elements (Flit's PacketRef) release their target the
// moment they leave the queue, not when the slot is later overwritten —
// the packet pool's acquire/release balance depends on this.
//
// Ownership contract: RingBuffer is a SINGLE-OWNER queue — producer and
// consumer are the same simulation domain, so there is no synchronization
// and no atomics (apiary-sync-discipline bans them at this layer). The
// cross-domain variant — exactly one producer thread, exactly one consumer
// thread, acquire/release index publication — is SpscRing in
// src/sim/parallel/spsc_ring.h, which documents the full SPSC memory-order
// argument; the sharded engine uses it for boundary flit handoff and this
// class for everything intra-shard. Debug builds enforce the structural
// half of the contract here: Init() exactly once, capacity never exceeded,
// never pop from empty (the asserts below).
#ifndef SRC_SIM_RING_BUFFER_H_
#define SRC_SIM_RING_BUFFER_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>

namespace apiary {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;
  explicit RingBuffer(uint32_t capacity) { Init(capacity); }

  // Sets the logical capacity and allocates slot storage (power-of-two
  // rounded so the index wrap is a mask). Called once at wiring time.
  void Init(uint32_t capacity) {
    assert(capacity > 0);
    assert(slots_ == nullptr && size_ == 0 && "RingBuffer::Init must run exactly once");
    capacity_ = capacity;
    uint32_t slots = 1;
    while (slots < capacity) {
      slots <<= 1;
    }
    mask_ = slots - 1;
    slots_ = std::make_unique<T[]>(slots);
    head_ = 0;
  }

  uint32_t capacity() const { return capacity_; }
  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  void push_back(T value) {
    assert(size_ < capacity_);
    slots_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  T& front() {
    assert(size_ > 0);
    return slots_[head_];
  }
  const T& front() const {
    assert(size_ > 0);
    return slots_[head_];
  }

  void pop_front() {
    assert(size_ > 0);
    slots_[head_] = T{};
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  // Moves the head element out and pops — one fewer copy than
  // front()+pop_front() for reference-holding elements.
  T take_front() {
    assert(size_ > 0);
    T value = std::move(slots_[head_]);
    slots_[head_] = T{};
    head_ = (head_ + 1) & mask_;
    --size_;
    return value;
  }

  void clear() {
    while (size_ > 0) {
      pop_front();
    }
  }

 private:
  std::unique_ptr<T[]> slots_;
  uint32_t capacity_ = 0;
  uint32_t mask_ = 0;
  uint32_t head_ = 0;
  uint32_t size_ = 0;
};

}  // namespace apiary

#endif  // SRC_SIM_RING_BUFFER_H_
