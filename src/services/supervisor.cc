#include "src/services/supervisor.h"

#include <algorithm>

#include "src/sim/logging.h"

namespace apiary {

Supervisor::Supervisor(ApiaryOs* os, SupervisorConfig config)
    : os_(os), config_(config) {
  // Registered after the tiles (ApiaryOs construction), so each cycle the
  // supervisor observes post-tick tile state.
  os_->sim().Register(this);
}

void Supervisor::Manage(TileId tile, AccelFactory factory) {
  Managed m;
  m.factory = std::move(factory);
  managed_[tile] = std::move(m);
}

void Supervisor::SetStandby(ServiceId service, TileId standby_tile) {
  standbys_[service] = standby_tile;
}

bool Supervisor::quarantined(TileId tile) const {
  auto it = managed_.find(tile);
  return it != managed_.end() && it->second.state == TileState::kQuarantined;
}

uint64_t Supervisor::restarts(TileId tile) const {
  auto it = managed_.find(tile);
  return it == managed_.end() ? 0 : it->second.restarts;
}

Supervisor::TileState Supervisor::tile_state(TileId tile) const {
  auto it = managed_.find(tile);
  return it == managed_.end() ? TileState::kHealthy : it->second.state;
}

bool Supervisor::AllHealthy() const {
  return std::all_of(managed_.begin(), managed_.end(), [](const auto& kv) {
    return kv.second.state == TileState::kHealthy;
  });
}

void Supervisor::Quarantine(TileId tile, const std::string& reason) {
  os_->FailStop(tile, reason);
  Managed& m = managed_[tile];  // Unmanaged tiles quarantine too (no factory needed).
  if (m.state == TileState::kQuarantined) {
    return;
  }
  m.state = TileState::kQuarantined;
  counters_.Add("supervisor.quarantines");
  APIARY_LOG(kWarn) << "supervisor: tile " << tile << " quarantined (" << reason << ")";
}

bool Supervisor::IcapFree() const {
  for (TileId t = 0; t < os_->num_tiles(); ++t) {
    if (os_->tile(t).reconfiguring()) {
      return false;
    }
  }
  return true;
}

void Supervisor::OnTileFault(TileId tile, const std::string& reason) {
  auto it = managed_.find(tile);
  if (it == managed_.end()) {
    os_->FailStop(tile, reason);  // Not ours to heal, but still contained.
    return;
  }
  Managed& m = it->second;
  if (m.state != TileState::kHealthy) {
    return;  // Already recovering (or quarantined) — one fault, one recovery.
  }
  counters_.Add("supervisor.faults_detected");
  m.fault_detected_at = now_;
  // Contain first: the tile may still be half-alive (watchdog path).
  os_->FailStop(tile, reason);
  APIARY_LOG(kInfo) << "supervisor: tile " << tile << " faulted (" << reason << ")";

  // Crash-loop accounting over a sliding-ish window.
  if (now_ - m.window_start > config_.crash_loop_window) {
    m.window_start = now_;
    m.recent_faults = 0;
  }
  ++m.recent_faults;
  if (m.recent_faults > config_.quarantine_after) {
    m.state = TileState::kQuarantined;
    counters_.Add("supervisor.quarantines");
    APIARY_LOG(kWarn) << "supervisor: tile " << tile << " quarantined after "
                      << m.recent_faults << " faults";
    return;
  }

  // Hot-standby failover: repoint the logical name, re-grant every client,
  // and let the spare carry the service while the dead tile reconfigures.
  const ServiceId svc = os_->monitor(tile).service();
  auto standby_it = standbys_.find(svc);
  if (standby_it != standbys_.end()) {
    const TileId spare = standby_it->second;
    // A spare that is mid-reconfiguration (its own recovery, or an
    // orchestrator load claimed the region) or otherwise unhealthy must
    // never take over a logical name — rebinding would black-hole the
    // service. Leave it registered for next time and fall back to cold
    // recovery of the faulted tile.
    const bool spare_usable = !os_->tile(spare).reconfiguring() &&
                              os_->monitor(spare).fault_state() == TileFaultState::kHealthy &&
                              tile_state(spare) == TileState::kHealthy;
    if (spare_usable) {
      standbys_.erase(standby_it);
      os_->RebindService(svc, spare);
      os_->RegrantClientsOf(svc);
      counters_.Add("supervisor.failovers");
      // Service is back the moment the re-grants land.
      recovery_cycles_.Record(0);
      counters_.Add("supervisor.faults_recovered");
      // Once repaired, this tile becomes the service's next spare.
      m.standby_for = svc;
    } else {
      counters_.Add("supervisor.standby_unavailable");
      APIARY_LOG(kWarn) << "supervisor: standby tile " << spare << " for service " << svc
                        << " is unavailable; cold-recovering tile " << tile;
    }
  }

  BeginRecovery(tile, m, now_);
}

void Supervisor::BeginRecovery(TileId tile, Managed& m, Cycle now) {
  (void)tile;
  // First fault in a window restarts immediately; repeats back off
  // exponentially so a persistent fault cannot monopolize reconfiguration
  // bandwidth.
  Cycle delay = 0;
  if (m.recent_faults > 1) {
    const uint32_t doublings =
        std::min(m.recent_faults - 2, config_.backoff_max_doublings);
    delay = config_.backoff_base_cycles << doublings;
    counters_.Add("supervisor.backoff_delays");
  }
  m.restart_at = now + delay;
  m.state = TileState::kBackoff;
}

Cycle Supervisor::NextActivity(Cycle now) const {
  Cycle next = kNoActivity;
  bool poll_has_work = false;
  for (const auto& [tile, m] : managed_) {
    switch (m.state) {
      case TileState::kHealthy:
        // The poll only acts on a fail-stopped monitor; an idle healthy
        // fleet needs no poll wakeups at all.
        if (os_->monitor(tile).fault_state() == TileFaultState::kStopped) {
          poll_has_work = true;
        }
        break;
      case TileState::kBackoff: {
        const Cycle at = m.restart_at > now ? m.restart_at : now;
        next = at < next ? at : next;
        break;
      }
      case TileState::kReconfiguring:
        // The recovering tile itself pins the reconfig-done cycle (see
        // header comment); nothing to declare here.
        break;
      case TileState::kQuarantined:
        break;
    }
  }
  if (poll_has_work) {
    const Cycle rem = now % config_.poll_period;
    const Cycle poll = rem == 0 ? now : now + (config_.poll_period - rem);
    next = poll < next ? poll : next;
  }
  return next;
}

void Supervisor::Tick(Cycle now) {
  now_ = now;
  // Poll for tiles that fail-stopped themselves (crash faults surface this
  // way; wedges arrive via the MgmtService watchdog instead).
  if (now % config_.poll_period == 0) {
    for (auto& [tile, m] : managed_) {
      if (m.state == TileState::kHealthy &&
          os_->monitor(tile).fault_state() == TileFaultState::kStopped) {
        OnTileFault(tile, os_->monitor(tile).fault_reason());
      }
    }
  }
  for (auto& [tile, m] : managed_) {
    switch (m.state) {
      case TileState::kBackoff:
        if (now >= m.restart_at) {
          if (!IcapFree()) {
            // Another region owns the configuration port; recovery waits
            // its turn rather than stacking a second load on the ICAP.
            counters_.Add("supervisor.icap_wait_cycles");
            break;
          }
          // Revoke-and-reload, then immediately replay the kernel's grant
          // log: the caps sit in the monitor table through reconfiguration
          // so the fresh logic finds them at boot.
          os_->Reconfigure(tile, m.factory(), /*immediate=*/false);
          os_->ReinstallTileCaps(tile);
          ++m.restarts;
          counters_.Add("supervisor.reconfigures");
          m.state = TileState::kReconfiguring;
        }
        break;
      case TileState::kReconfiguring:
        if (!os_->tile(tile).reconfiguring() &&
            os_->monitor(tile).fault_state() == TileFaultState::kHealthy) {
          if (m.standby_for != kInvalidService) {
            // Its old service lives on the spare now; this tile waits as
            // the next standby rather than splitting the logical name.
            SetStandby(m.standby_for, tile);
            m.standby_for = kInvalidService;
          } else {
            recovery_cycles_.Record(now - m.fault_detected_at);
            counters_.Add("supervisor.faults_recovered");
          }
          m.state = TileState::kHealthy;
        }
        break;
      case TileState::kHealthy:
      case TileState::kQuarantined:
        break;
    }
  }
}

}  // namespace apiary
