#include "src/baseline/timesliced.h"

namespace apiary {

uint64_t TimeSlicedFpga::total_completed() const {
  uint64_t total = 0;
  for (uint32_t a = 0; a < config_.num_apps; ++a) {
    total += completed_[a];
  }
  return total;
}

void TimeSlicedFpga::Tick(Cycle now) {
  if (now < reconfig_until_) {
    return;  // Bitstream swap in progress: the region serves nobody.
  }

  // Quantum expiry: rotate to the next app that has work (or just the next
  // app — a simple round-robin scheduler), paying the reconfiguration cost.
  const bool quantum_over = now >= slice_started_at_ + config_.slice_cycles;
  if (quantum_over && config_.num_apps > 1) {
    // Only switch if some other app has queued work; otherwise keep running
    // (work-conserving).
    for (uint32_t step = 1; step < config_.num_apps; ++step) {
      const uint32_t candidate = (active_app_ + step) % config_.num_apps;
      if (!queues_[candidate].empty()) {
        active_app_ = candidate;
        reconfig_until_ = now + config_.reconfig_cycles;
        slice_started_at_ = reconfig_until_;
        busy_until_ = reconfig_until_;
        ++reconfigurations_;
        return;
      }
    }
    slice_started_at_ = now;  // Nobody else is waiting; extend the slice.
  }

  // Serve the active app's queue, one request at a time.
  if (now >= busy_until_ && !queues_[active_app_].empty()) {
    const Cycle arrival = queues_[active_app_].front();
    queues_[active_app_].pop_front();
    busy_until_ = now + config_.service_cycles;
    latencies_[active_app_].Record(busy_until_ - arrival);
    ++completed_[active_app_];
  }
}

}  // namespace apiary
