// Key-value store accelerator: the paper's multi-tenant example workload
// (Section 2: "another user might want to use the FPGA to host an
// independent key-value store application"), in the Caribou tradition the
// related-work section cites.
//
// Architecture: the key index lives in on-tile "BRAM" (bounded map); values
// live in a DRAM segment obtained from — and accessed through — the Apiary
// memory service, presenting the store's memory capability on every access.
// GET/PUT therefore exercise a full IPC chain:
//   client -> kv -> memory service -> kv -> client.
//
// The store is *preemptible* (Section 4.4): its architectural state (index,
// log head, capability refs) is externalized via SaveState/RestoreState, so
// the monitor can swap it out and resume it later, SYNERGY-style.
#ifndef SRC_ACCEL_KV_STORE_H_
#define SRC_ACCEL_KV_STORE_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/accel/accel_opcodes.h"
#include "src/core/accelerator.h"
#include "src/stats/summary.h"

namespace apiary {

class KvStoreAccelerator : public Accelerator {
 public:
  explicit KvStoreAccelerator(uint64_t value_log_bytes = 1 << 20,
                              size_t max_index_entries = 65536)
      : value_log_bytes_(value_log_bytes), max_index_entries_(max_index_entries) {}

  void OnBoot(TileApi& api) override;
  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override;

  std::string name() const override { return "kv_store"; }
  uint32_t LogicCellCost() const override { return 35000; }

  bool IsPreemptible() const override { return true; }
  std::vector<uint8_t> SaveState() override;
  void RestoreState(std::span<const uint8_t> state) override;

  bool ready() const { return mem_cap_ != kInvalidCapRef; }
  size_t index_size() const { return index_.size(); }
  const CounterSet& counters() const { return counters_; }

 private:
  struct ValueLoc {
    uint64_t offset = 0;
    uint32_t length = 0;
  };
  struct PendingOp {
    Message client_request;
    uint16_t op = 0;          // kOpKvGet / kOpKvPut
    std::string key;
    ValueLoc loc;             // PUT: where the value is being written.
  };

  void HandleGet(const Message& msg, TileApi& api);
  void HandlePut(const Message& msg, TileApi& api);
  void HandleDelete(const Message& msg, TileApi& api);
  void HandleMemReply(const Message& msg, TileApi& api);
  void ReplyStatus(const Message& request, TileApi& api, MsgStatus status, uint16_t opcode);
  bool ParseKey(const Message& msg, std::string* key, size_t* value_offset) const;

  uint64_t value_log_bytes_;
  size_t max_index_entries_;

  CapRef memsvc_cap_ = kInvalidCapRef;
  CapRef mem_cap_ = kInvalidCapRef;
  bool alloc_requested_ = false;
  uint64_t log_head_ = 0;

  std::map<std::string, ValueLoc> index_;
  // memsvc request_id -> pending client op.
  std::map<uint64_t, PendingOp> in_flight_;
  // Requests that arrived before the value log was provisioned.
  std::deque<Message> boot_backlog_;
  uint64_t next_mem_request_ = 1;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_ACCEL_KV_STORE_H_
