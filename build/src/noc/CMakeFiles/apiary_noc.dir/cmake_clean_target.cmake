file(REMOVE_RECURSE
  "libapiary_noc.a"
)
