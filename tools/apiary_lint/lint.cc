#include "tools/apiary_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

namespace apiary {
namespace lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool MatchesAnySuffix(const std::string& path, const std::vector<std::string>& suffixes) {
  for (const auto& suffix : suffixes) {
    if (EndsWith(path, suffix)) {
      return true;
    }
  }
  return false;
}

std::string Trimmed(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

// Finds occurrences of `token` in `line` with an identifier boundary on
// both sides ('::'-qualified tokens also require the leading char not be
// ':'). Returns byte offsets of each occurrence.
std::vector<size_t> FindIdentifier(const std::string& line, const std::string& token) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool head_ok =
        pos == 0 || (!IsIdentChar(line[pos - 1]) && line[pos - 1] != ':');
    const size_t after = pos + token.size();
    const bool tail_ok = after >= line.size() || !IsIdentChar(line[after]);
    if (head_ok && tail_ok) {
      hits.push_back(pos);
    }
    pos += token.size();
  }
  return hits;
}

// True when line contains a *call* of `name`: identifier boundary before
// (and not a member access or qualified name), '(' after optional spaces.
bool FindCall(const std::string& line, const std::string& name) {
  size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    const bool head_ok = pos == 0 || (!IsIdentChar(line[pos - 1]) && line[pos - 1] != ':' &&
                                      line[pos - 1] != '.' && line[pos - 1] != '>');
    size_t after = pos + name.size();
    while (after < line.size() && (line[after] == ' ' || line[after] == '\t')) {
      ++after;
    }
    if (head_ok && after < line.size() && line[after] == '(') {
      return true;
    }
    pos += name.size();
  }
  return false;
}

// Parses `#include "target"` from a raw line; empty string when absent.
std::string ParseQuotedInclude(const std::string& raw) {
  const std::string trimmed = Trimmed(raw);
  if (trimmed.empty() || trimmed[0] != '#') {
    return "";
  }
  size_t pos = trimmed.find_first_not_of(" \t", 1);
  if (pos == std::string::npos || trimmed.compare(pos, 7, "include") != 0) {
    return "";
  }
  size_t open = trimmed.find('"', pos + 7);
  if (open == std::string::npos) {
    return "";
  }
  size_t close = trimmed.find('"', open + 1);
  if (close == std::string::npos) {
    return "";
  }
  return trimmed.substr(open + 1, close - open - 1);
}

// Top-level directory under src/ for a repo-relative path, or "" if the
// path is not of the form src/<dir>/...
std::string SrcLayer(const std::string& path) {
  if (!StartsWith(path, "src/")) {
    return "";
  }
  size_t slash = path.find('/', 4);
  if (slash == std::string::npos) {
    return "";
  }
  return path.substr(4, slash - 4);
}

// Records the check names listed in "(...)" after a NOLINT marker at
// `after` in `line`; a bare marker records "*".
std::vector<std::string> ParseNolintList(const std::string& line, size_t after) {
  std::vector<std::string> checks;
  if (after < line.size() && line[after] == '(') {
    size_t close = line.find(')', after);
    if (close != std::string::npos) {
      std::string inside = line.substr(after + 1, close - after - 1);
      std::stringstream ss(inside);
      std::string item;
      while (std::getline(ss, item, ',')) {
        item = Trimmed(item);
        if (!item.empty()) {
          checks.push_back(item);
        }
      }
      return checks;
    }
  }
  checks.push_back("*");
  return checks;
}

std::string ExpectedGuard(const std::string& path) {
  std::string guard;
  guard.reserve(path.size() + 1);
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    } else {
      guard.push_back('_');
    }
  }
  guard.push_back('_');
  return guard;
}

}  // namespace

std::string Finding::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << check << "] " << message;
  return os.str();
}

bool SourceFile::IsSuppressed(int line, const std::string& check) const {
  if (line < 1 || line > static_cast<int>(nolint.size())) {
    return false;
  }
  for (const auto& entry : nolint[line - 1]) {
    if (entry == "*" || entry == check) {
      return true;
    }
  }
  return false;
}

SourceFile LexSource(std::string path, const std::string& content) {
  SourceFile file;
  file.path = std::move(path);

  // Split into lines (keeping structure for both raw and code views).
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    lines.push_back(current);
  }
  file.raw_lines = lines;
  file.nolint.assign(lines.size(), {});

  // Record NOLINT markers from the raw text (they live inside comments,
  // which the code view erases). NOLINTNEXTLINE is matched first since
  // NOLINT is a prefix of it.
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& raw = lines[i];
    size_t pos = 0;
    while ((pos = raw.find("NOLINT", pos)) != std::string::npos) {
      if (raw.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
        auto checks = ParseNolintList(raw, pos + 14);
        if (i + 1 < file.nolint.size()) {
          auto& dst = file.nolint[i + 1];
          dst.insert(dst.end(), checks.begin(), checks.end());
        }
        pos += 14;
      } else {
        auto checks = ParseNolintList(raw, pos + 6);
        auto& dst = file.nolint[i];
        dst.insert(dst.end(), checks.begin(), checks.end());
        pos += 6;
      }
    }
  }

  // Build the code view: comments and string/char literals blanked.
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // Delimiter for raw string literals: )<delim>"
  file.code_lines.reserve(lines.size());
  for (const std::string& raw : lines) {
    std::string code;
    code.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      const char c = raw[i];
      const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            code.append(raw.size() - i, ' ');
            i = raw.size();
            break;
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            code.append(2, ' ');
            ++i;
          } else if (c == '"' && i >= 1 && raw[i - 1] == 'R') {
            // Raw string literal R"delim( ... )delim".
            size_t open = raw.find('(', i + 1);
            raw_delim = ")" + raw.substr(i + 1, open == std::string::npos
                                                    ? std::string::npos
                                                    : open - i - 1) + "\"";
            state = State::kRawString;
            code.push_back(' ');
          } else if (c == '"') {
            state = State::kString;
            code.push_back(' ');
          } else if (c == '\'' && !(i >= 1 && IsIdentChar(raw[i - 1]))) {
            // Skip digit separators like 1'000'000 (preceded by idents).
            state = State::kChar;
            code.push_back(' ');
          } else {
            code.push_back(c);
          }
          break;
        case State::kLineComment:
          code.push_back(' ');
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            code.append(2, ' ');
            ++i;
          } else {
            code.push_back(' ');
          }
          break;
        case State::kString:
          if (c == '\\') {
            code.append(i + 1 < raw.size() ? 2 : 1, ' ');
            ++i;
          } else if (c == '"') {
            state = State::kCode;
            code.push_back(' ');
          } else {
            code.push_back(' ');
          }
          break;
        case State::kChar:
          if (c == '\\') {
            code.append(i + 1 < raw.size() ? 2 : 1, ' ');
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
            code.push_back(' ');
          } else {
            code.push_back(' ');
          }
          break;
        case State::kRawString:
          if (raw.compare(i, raw_delim.size(), raw_delim) == 0) {
            code.append(raw_delim.size(), ' ');
            i += raw_delim.size() - 1;
            state = State::kCode;
          } else {
            code.push_back(' ');
          }
          break;
      }
    }
    // Line comments never span lines.
    if (state == State::kLineComment || state == State::kString || state == State::kChar) {
      state = State::kCode;
    }
    file.code_lines.push_back(std::move(code));
  }
  return file;
}

bool LoadSource(const std::string& absolute_path, const std::string& repo_relative_path,
                SourceFile* out) {
  std::ifstream in(absolute_path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = LexSource(repo_relative_path, buffer.str());
  return true;
}

LintConfig DefaultConfig() {
  LintConfig config;

  // Determinism: every run must replay byte-identically from its seed
  // (the chaos campaigns in bench/a9 and the determinism tests rely on it).
  config.banned_identifiers = {"std::random_device", "std::mt19937", "std::mt19937_64"};
  config.banned_calls = {"rand", "srand", "time", "clock", "getrandom"};
  config.banned_suffixes = {"_clock::now"};
  config.banned_containers = {"std::unordered_map", "std::unordered_set",
                              "std::unordered_multimap", "std::unordered_multiset"};
  config.determinism_exempt_prefixes = {"src/stats/", "src/sim/random."};
  config.randomness_home = "src/sim/random.h";

  // Layering: sim is the root; accel (untrusted logic) may reach only the
  // Monitor-facing surface (core) and the simulator substrate — never mem
  // or noc directly, mirroring the paper's Monitor-interposition guarantee.
  // baseline must not include services (it models the no-OS world).
  config.layering = {
      {"sim", {"sim"}},
      {"stats", {"stats", "sim"}},
      {"mem", {"mem", "sim", "stats"}},
      {"noc", {"noc", "sim", "stats"}},
      {"fpga", {"fpga", "mem", "noc", "sim", "stats"}},
      {"core", {"core", "fpga", "mem", "noc", "sim", "stats"}},
      {"services", {"services", "core", "fpga", "mem", "noc", "sim", "stats"}},
      // Orchestration sits above services (it drives the supervisor and load
      // balancer) but below applications: accel/baseline must not see it.
      {"orch", {"orch", "core", "fpga", "services", "sim", "stats"}},
      {"fault", {"fault", "core", "fpga", "mem", "noc", "sim", "stats"}},
      // Tenant policy sits above orchestration (it owns quotas that the
      // scheduler, services and NoC enforce) but must never reach into
      // accel: tenants are principals, not accelerator logic.
      {"tenant",
       {"tenant", "orch", "services", "fault", "core", "fpga", "mem", "noc", "sim", "stats"}},
      {"accel", {"accel", "core", "sim", "stats"}},
      {"baseline", {"baseline", "fpga", "mem", "noc", "sim", "stats"}},
      {"workload", {"workload", "accel", "core", "services", "fpga", "sim", "stats"}},
  };
  // The opcode ABI header is the one services/ surface accelerators may
  // see: it is pure wire constants (Section 4.3's stable interface), the
  // moral equivalent of a syscall-number header.
  config.layering_exempt_includes = {"src/services/opcodes.h"};

  config.opcode_def_files = {"src/services/opcodes.h", "src/accel/accel_opcodes.h"};

  // Hot path: only the pool/serialization layer may allocate packets or
  // materialize contiguous wire vectors (the legacy-alloc ablation lives
  // there too).
  // The external Ethernet fabric (frames to/from simulated client hosts) is
  // a different wire domain from the NoC: its frame buffers are vectors by
  // design and never ride the executed-cycle packet path.
  config.hot_path_exempt_prefixes = {"src/noc/packet_pool.", "src/core/message.",
                                     "src/sim/payload_buf.", "src/fpga/ethernet.",
                                     "src/services/transport."};

  // src/sim/clocked.h rides along for quiescence hygiene: an ignored
  // NextActivity() result means a computed wake-up cycle was dropped on the
  // floor, the same leak shape as an orphaned capability.
  config.nodiscard_files = {"src/core/capability.h", "src/core/kernel.h",
                            "src/mem/segment_allocator.h", "src/sim/clocked.h"};
  config.nodiscard_types = {"CapRef", "std::optional<CapRef>", "std::optional<Segment>",
                            "Cycle"};
  return config;
}

void CheckDeterminism(const SourceFile& file, const LintConfig& config,
                      std::vector<Finding>* findings) {
  for (const auto& prefix : config.determinism_exempt_prefixes) {
    if (StartsWith(file.path, prefix)) {
      return;
    }
  }
  const bool in_sim_state = StartsWith(file.path, "src/");
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    for (const auto& ident : config.banned_identifiers) {
      if (!FindIdentifier(line, ident).empty()) {
        findings->push_back({file.path, lineno, "apiary-determinism",
                             ident + " breaks seeded replay; draw randomness from " +
                                 config.randomness_home});
      }
    }
    for (const auto& call : config.banned_calls) {
      if (FindCall(line, call)) {
        findings->push_back({file.path, lineno, "apiary-determinism",
                             call + "() is nondeterministic across runs; use the seeded " +
                                 "Rng (" + config.randomness_home + ") or simulator time"});
      }
    }
    for (const auto& suffix : config.banned_suffixes) {
      size_t pos = line.find(suffix);
      if (pos != std::string::npos) {
        const size_t after = pos + suffix.size();
        if (after >= line.size() || !IsIdentChar(line[after])) {
          findings->push_back({file.path, lineno, "apiary-determinism",
                               "wall-clock reads (" + suffix + ") are nondeterministic; " +
                                   "use Simulator::now() cycles"});
        }
      }
    }
    if (in_sim_state) {
      for (const auto& container : config.banned_containers) {
        if (!FindIdentifier(line, container).empty()) {
          findings->push_back(
              {file.path, lineno, "apiary-determinism",
               container + " has seed-visible iteration order; use std::map/std::set, or "
                           "suppress with // NOLINT(apiary-determinism) if never iterated"});
        }
      }
    }
  }
}

void CheckLayering(const SourceFile& file, const LintConfig& config,
                   std::vector<Finding>* findings) {
  const std::string layer = SrcLayer(file.path);
  if (layer.empty()) {
    return;  // Layering governs src/ only; tests and bench see everything.
  }
  auto rule = config.layering.find(layer);
  for (size_t i = 0; i < file.raw_lines.size(); ++i) {
    const std::string target = ParseQuotedInclude(file.raw_lines[i]);
    if (target.empty() || !StartsWith(target, "src/")) {
      continue;
    }
    const int lineno = static_cast<int>(i) + 1;
    if (std::find(config.layering_exempt_includes.begin(),
                  config.layering_exempt_includes.end(),
                  target) != config.layering_exempt_includes.end()) {
      continue;
    }
    if (rule == config.layering.end()) {
      findings->push_back({file.path, lineno, "apiary-layering",
                           "src/" + layer + "/ is not a declared layer; add it to the "
                           "allowed-include DAG in tools/apiary_lint/lint.cc"});
      continue;
    }
    const std::string target_layer = SrcLayer(target);
    if (std::find(rule->second.begin(), rule->second.end(), target_layer) ==
        rule->second.end()) {
      findings->push_back({file.path, lineno, "apiary-layering",
                           "src/" + layer + "/ may not include " + target + " (allowed " +
                               "layers are listed in tools/apiary_lint/lint.cc; accel must "
                               "reach mem/noc through the Monitor, never directly)"});
    }
  }
}

void CheckIncludeGuard(const SourceFile& file, const LintConfig& /*config*/,
                       std::vector<Finding>* findings) {
  if (!EndsWith(file.path, ".h")) {
    return;
  }
  const std::string expected = ExpectedGuard(file.path);
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string trimmed = Trimmed(file.code_lines[i]);
    if (trimmed.empty()) {
      continue;
    }
    if (StartsWith(trimmed, "#pragma once")) {
      findings->push_back({file.path, static_cast<int>(i) + 1, "apiary-include-guard",
                           "use the " + expected + " include-guard convention, not "
                           "#pragma once"});
      return;
    }
    if (StartsWith(trimmed, "#ifndef")) {
      const std::string guard = Trimmed(trimmed.substr(7));
      if (guard != expected) {
        findings->push_back({file.path, static_cast<int>(i) + 1, "apiary-include-guard",
                             "include guard '" + guard + "' should be '" + expected + "'"});
        return;
      }
      // The guard define must follow immediately.
      for (size_t j = i + 1; j < file.code_lines.size(); ++j) {
        const std::string next = Trimmed(file.code_lines[j]);
        if (next.empty()) {
          continue;
        }
        if (next != "#define " + expected) {
          findings->push_back({file.path, static_cast<int>(j) + 1, "apiary-include-guard",
                               "expected '#define " + expected + "' right after #ifndef"});
        }
        return;
      }
      return;
    }
    // First significant line is neither a guard nor pragma once.
    findings->push_back({file.path, static_cast<int>(i) + 1, "apiary-include-guard",
                         "header has no include guard; expected #ifndef " + expected});
    return;
  }
}

void CheckDebugName(const SourceFile& file, const LintConfig& /*config*/,
                    std::vector<Finding>* findings) {
  // Join the code view so class heads and bodies spanning lines are easy to
  // scan; remember line starts for reporting.
  std::string text;
  std::vector<size_t> line_start;
  for (const auto& line : file.code_lines) {
    line_start.push_back(text.size());
    text += line;
    text.push_back('\n');
  }
  auto line_of = [&](size_t offset) {
    size_t lo = 0;
    size_t hi = line_start.size();
    while (lo + 1 < hi) {
      size_t mid = (lo + hi) / 2;
      if (line_start[mid] <= offset) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return static_cast<int>(lo) + 1;
  };

  size_t pos = 0;
  while ((pos = text.find("class ", pos)) != std::string::npos) {
    if (pos > 0 && IsIdentChar(text[pos - 1])) {
      pos += 6;
      continue;
    }
    const size_t head_start = pos;
    pos += 6;
    // Class head runs to the first '{' or ';' (forward declaration).
    size_t body_open = text.find_first_of("{;", head_start);
    if (body_open == std::string::npos || text[body_open] == ';') {
      continue;
    }
    const std::string head = text.substr(head_start, body_open - head_start);
    // Direct Clocked subclass: base list mentions Clocked after a ':'.
    size_t colon = head.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    const std::string bases = head.substr(colon + 1);
    if (FindIdentifier(bases, "Clocked").empty()) {
      continue;
    }
    // Walk the brace-matched class body looking for a DebugName override.
    int depth = 0;
    size_t body_end = body_open;
    for (size_t i = body_open; i < text.size(); ++i) {
      if (text[i] == '{') {
        ++depth;
      } else if (text[i] == '}') {
        --depth;
        if (depth == 0) {
          body_end = i;
          break;
        }
      }
    }
    const std::string body = text.substr(body_open, body_end - body_open);
    if (body.find("DebugName") == std::string::npos) {
      findings->push_back({file.path, line_of(head_start), "apiary-debug-name",
                           "Clocked subclass must override DebugName() so traces and "
                           "debug dumps can identify the block"});
    }
  }
}

void CheckNodiscard(const SourceFile& file, const LintConfig& config,
                    std::vector<Finding>* findings) {
  if (!MatchesAnySuffix(file.path, config.nodiscard_files)) {
    return;
  }
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    for (const auto& type : config.nodiscard_types) {
      for (size_t pos : FindIdentifier(line, type)) {
        // A minting declaration: type, whitespace, identifier, '('.
        size_t p = pos + type.size();
        while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) {
          ++p;
        }
        const size_t name_start = p;
        while (p < line.size() && IsIdentChar(line[p])) {
          ++p;
        }
        if (p == name_start || p >= line.size() || line[p] != '(') {
          continue;
        }
        const std::string name = line.substr(name_start, p - name_start);
        const bool marked =
            line.find("[[nodiscard]]") != std::string::npos ||
            (i > 0 && file.raw_lines[i - 1].find("[[nodiscard]]") != std::string::npos);
        if (!marked) {
          findings->push_back({file.path, lineno, "apiary-nodiscard",
                               name + "() mints a " + type + "; dropping the result leaks "
                               "or orphans the grant — declare it [[nodiscard]]"});
        }
      }
    }
  }
}

void CheckHotPath(const SourceFile& file, const LintConfig& config,
                  std::vector<Finding>* findings) {
  // Discipline applies to simulator code only; tests and bench hand-build
  // packets freely.
  if (!StartsWith(file.path, "src/")) {
    return;
  }
  for (const auto& prefix : config.hot_path_exempt_prefixes) {
    if (StartsWith(file.path, prefix)) {
      return;
    }
  }
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    if (line.find("make_shared<NocPacket") != std::string::npos ||
        line.find("make_shared< NocPacket") != std::string::npos) {
      findings->push_back({file.path, lineno, "apiary-hot-path",
                           "std::make_shared<NocPacket> allocates a control block per "
                           "message; draw packets from PacketPool::Acquire()"});
    } else if ([&line] {
                 size_t pos = line.find("new NocPacket");
                 while (pos != std::string::npos) {
                   if (pos == 0 || !IsIdentChar(line[pos - 1])) {
                     return true;
                   }
                   pos = line.find("new NocPacket", pos + 1);
                 }
                 return false;
               }()) {
      findings->push_back({file.path, lineno, "apiary-hot-path",
                           "bare new NocPacket heap-allocates per message; draw packets "
                           "from PacketPool::Acquire()"});
    }
    if (line.find("std::vector<uint8_t>") != std::string::npos &&
        !FindIdentifier(line, "payload").empty()) {
      findings->push_back({file.path, lineno, "apiary-hot-path",
                           "message payloads ride in PayloadBuf end-to-end; a "
                           "std::vector<uint8_t> copy reintroduces per-message heap "
                           "allocation on the executed-cycle path"});
    }
  }
}

void CheckOpcodeCoverage(const std::vector<SourceFile>& files, const LintConfig& config,
                         std::vector<Finding>* findings) {
  struct OpcodeDef {
    std::string file;
    int line;
  };
  std::map<std::string, OpcodeDef> defs;
  bool corpus_has_tests = false;
  for (const auto& file : files) {
    if (StartsWith(file.path, "tests/")) {
      corpus_has_tests = true;
    }
    if (!MatchesAnySuffix(file.path, config.opcode_def_files)) {
      continue;
    }
    for (size_t i = 0; i < file.code_lines.size(); ++i) {
      const std::string& line = file.code_lines[i];
      if (line.find("constexpr") == std::string::npos) {
        continue;
      }
      size_t pos = 0;
      while ((pos = line.find("kOp", pos)) != std::string::npos) {
        if (pos > 0 && (IsIdentChar(line[pos - 1]) || line[pos - 1] == ':')) {
          pos += 3;
          continue;
        }
        size_t end = pos;
        while (end < line.size() && IsIdentChar(line[end])) {
          ++end;
        }
        const std::string name = line.substr(pos, end - pos);
        // *Base constants are numbering-space markers, not wire opcodes.
        if (name.size() > 3 && !EndsWith(name, "Base")) {
          defs.emplace(name, OpcodeDef{file.path, static_cast<int>(i) + 1});
        }
        pos = end;
      }
    }
  }
  if (defs.empty()) {
    return;
  }

  std::set<std::string> handled;
  std::set<std::string> tested;
  for (const auto& file : files) {
    const bool is_def_file = MatchesAnySuffix(file.path, config.opcode_def_files);
    const bool in_src = StartsWith(file.path, "src/") && !is_def_file;
    const bool in_tests = StartsWith(file.path, "tests/");
    if (!in_src && !in_tests) {
      continue;
    }
    for (const auto& line : file.code_lines) {
      if (line.find("kOp") == std::string::npos) {
        continue;
      }
      for (const auto& [name, def] : defs) {
        if (!FindIdentifier(line, name).empty()) {
          if (in_src) {
            handled.insert(name);
          } else {
            tested.insert(name);
          }
        }
      }
    }
  }

  for (const auto& [name, def] : defs) {
    if (handled.find(name) == handled.end()) {
      findings->push_back({def.file, def.line, "apiary-opcode-coverage",
                           name + " has no dispatching handler under src/ — every wire "
                           "opcode in the stable ABI must be handled (Section 4.3)"});
    }
    if (corpus_has_tests && tested.find(name) == tested.end()) {
      findings->push_back({def.file, def.line, "apiary-opcode-coverage",
                           name + " is never referenced under tests/ — every wire opcode "
                           "needs at least one test exercising it"});
    }
  }
}

std::vector<Finding> RunAllChecks(const std::vector<SourceFile>& files,
                                  const LintConfig& config) {
  std::vector<Finding> raw;
  for (const auto& file : files) {
    CheckDeterminism(file, config, &raw);
    CheckLayering(file, config, &raw);
    CheckIncludeGuard(file, config, &raw);
    CheckDebugName(file, config, &raw);
    CheckNodiscard(file, config, &raw);
    CheckHotPath(file, config, &raw);
  }
  CheckOpcodeCoverage(files, config, &raw);

  std::map<std::string, const SourceFile*> by_path;
  for (const auto& file : files) {
    by_path[file.path] = &file;
  }
  std::vector<Finding> kept;
  for (auto& finding : raw) {
    auto it = by_path.find(finding.file);
    if (it != by_path.end() && it->second->IsSuppressed(finding.line, finding.check)) {
      continue;
    }
    kept.push_back(std::move(finding));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) {
      return a.file < b.file;
    }
    if (a.line != b.line) {
      return a.line < b.line;
    }
    return a.check < b.check;
  });
  return kept;
}

}  // namespace lint
}  // namespace apiary
