// Coyote-style host-mediated baseline (Section 5).
//
// "Earlier efforts to build FPGA operating systems, such as Coyote and
// AmorphOS, delegate key operating system functions ... to an attached
// server CPU." In this model a client request traverses:
//
//   client -> NIC -> host CPU (net stack + permissions + forwarding)
//          -> PCIe -> FPGA accelerator -> PCIe -> host CPU -> NIC -> client
//
// versus Apiary's direct path (client -> MAC -> NoC -> accelerator). The
// model charges realistic CPU software time, PCIe crossings, and a bounded
// CPU core pool (the source of tail-latency collapse under load).
#ifndef SRC_BASELINE_HOSTED_H_
#define SRC_BASELINE_HOSTED_H_

#include <deque>
#include <functional>
#include <vector>

#include "src/fpga/ethernet.h"
#include "src/fpga/pcie.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"
#include "src/stats/summary.h"

namespace apiary {

struct HostedConfig {
  // Host software time per request on the ingress path: NIC interrupt/poll,
  // kernel network stack, permission check, DMA descriptor setup. ~2 us.
  Cycle cpu_ingress_cycles = 500;
  // Egress path: completion handling + reply transmission. ~1.5 us.
  Cycle cpu_egress_cycles = 375;
  uint32_t cpu_cores = 1;
  PcieConfig pcie;
  // FPGA-side service time per request (the accelerator itself).
  Cycle accel_cycles = 200;
  // Optional real compute applied to the payload to form the reply.
  std::function<std::vector<uint8_t>(const std::vector<uint8_t>&)> compute;
  uint32_t max_queue_depth = 4096;
};

class HostedSystem : public Clocked, public ExternalEndpoint {
 public:
  HostedSystem(HostedConfig config, Simulator& sim, ExternalNetwork* network);

  void OnFrame(EthFrame frame, Cycle now) override;
  void Tick(Cycle now) override;
  std::string DebugName() const override { return "hosted"; }

  uint64_t completed() const { return completed_; }
  uint64_t dropped() const { return dropped_; }
  // Total cycles any host CPU core spent busy (for the energy proxy).
  uint64_t cpu_busy_cycles() const { return cpu_busy_cycles_; }
  uint64_t pcie_bytes() const { return pcie_to_fpga_.counters().Get("pcie.bytes") +
                                       pcie_from_fpga_.counters().Get("pcie.bytes"); }
  const CounterSet& counters() const { return counters_; }

 private:
  struct Job {
    EthFrame request;
    std::vector<uint8_t> reply_payload;
  };
  struct PendingReply {
    Cycle ready_at;
    Job job;
  };

  HostedConfig config_;
  ExternalNetwork* network_;
  PcieEndpoint pcie_to_fpga_;
  PcieEndpoint pcie_from_fpga_;

  std::deque<Job> cpu_ingress_;
  std::deque<Job> fpga_queue_;
  std::deque<Job> cpu_egress_;
  std::deque<PendingReply> pending_to_pcie_;
  std::deque<PendingReply> pending_replies_;
  std::vector<Cycle> core_free_at_;
  uint32_t address_ = 0;
  Cycle fpga_free_at_ = 0;
  bool fpga_busy_ = false;
  Job fpga_current_;

  uint64_t completed_ = 0;
  uint64_t dropped_ = 0;
  uint64_t cpu_busy_cycles_ = 0;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_BASELINE_HOSTED_H_
