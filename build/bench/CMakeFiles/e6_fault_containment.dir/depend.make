# Empty dependencies file for e6_fault_containment.
# This may be replaced when dependencies are built.
