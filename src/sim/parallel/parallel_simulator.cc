#include "src/sim/parallel/parallel_simulator.h"

#include <algorithm>
#include <cassert>

#include "src/sim/parallel/thread_domain.h"

namespace apiary {

namespace {

// Bounded spin: on machines with fewer cores than threads (CI runners under
// load, single-core containers) a raw spin would starve the very thread it
// waits for, so yield to the scheduler every so often.
class BoundedSpin {
 public:
  void Relax() {
    if (++spins_ >= 128) {
      spins_ = 0;
      std::this_thread::yield();
    }
  }

 private:
  int spins_ = 0;
};

}  // namespace

ParallelSimulator::ParallelSimulator(Simulator* sim, ShardedFabric* fabric, ParallelConfig config)
    : sim_(sim), fabric_(fabric) {
  const uint32_t width = fabric_->FabricWidth();
  const uint32_t height = fabric_->FabricHeight();
  uint32_t shards = config.shards;
  if (shards == 0) {
    shards = std::min<uint32_t>(4, std::max(width, height));
  }
  partition_ = DomainPartition::Build(width, height, shards);
  num_shards_ = partition_.num_shards;
  threads_ = std::max<uint32_t>(1, std::min(config.threads, num_shards_));

  std::vector<std::unique_ptr<SimContext>> contexts;
  contexts.reserve(num_shards_);
  shard_contexts_.reserve(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    contexts.push_back(std::make_unique<SimContext>());
    shard_contexts_.push_back(contexts.back().get());
  }
  fabric_->EnablePartition(partition_, std::move(contexts));

  route_done_ = std::make_unique<GrantSlot[]>(num_shards_);
  shard_begin_.resize(threads_ + 1);
  for (uint32_t w = 0; w <= threads_; ++w) {
    shard_begin_[w] = static_cast<uint32_t>(static_cast<uint64_t>(w) * num_shards_ / threads_);
  }
  owner_of_shard_.resize(num_shards_);
  for (uint32_t w = 0; w < threads_; ++w) {
    for (uint32_t s = shard_begin_[w]; s < shard_begin_[w + 1]; ++s) {
      owner_of_shard_[s] = w;
    }
  }

  shard_scheds_.reserve(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    shard_scheds_.push_back(std::make_unique<ActiveSchedule>());
  }
  folded_ticked_.assign(num_shards_, 0);
  folded_wheel_.assign(num_shards_, 0);
  folded_wake_.assign(num_shards_, 0);
  // The engine classifies new blocks at the top of the next cycle, so even
  // event-registered blocks start ticking one cycle later than under the
  // serial Step() — make the schedule defer them the same way.
  sim_->defer_new_blocks_ = true;

  workers_.reserve(threads_ - 1);
  for (uint32_t w = 1; w < threads_; ++w) {
    workers_.emplace_back(&ParallelSimulator::WorkerMain, this, w);
  }
}

ParallelSimulator::~ParallelSimulator() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    shutdown_ = true;
  }
  run_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  FoldShardCounters();
  // Return every block to the simulator's root schedule (re-adding in
  // blocks_ order preserves the registration-order tick sequence) and
  // conservatively re-activate everything for serial ticking.
  for (size_t i = 0; i < sim_->blocks_.size(); ++i) {
    Simulator::SlotRef& ref = sim_->slot_refs_[i];
    if (ref.sched == &sim_->sched_) {
      continue;
    }
    if (ref.sched != nullptr) {
      ref.sched->Remove(ref.slot);
    }
    ref.sched = &sim_->sched_;
    ref.slot = sim_->sched_.Add(sim_->blocks_[i], sim_->now_);
  }
  sim_->sched_.RebuildAllActive();
  sim_->ResetHotCache();
  sim_->defer_new_blocks_ = false;
  fabric_->DisablePartition();
}

void ParallelSimulator::Reclassify() {
  root_blocks_.clear();
  shard_blocks_.assign(num_shards_, {});
  Clocked* const fabric_block = fabric_->AsClocked();
  for (size_t i = 0; i < sim_->blocks_.size(); ++i) {
    Clocked* block = sim_->blocks_[i];
    // Pick the schedule that matches the block's phase: the root schedule
    // for root-phase blocks, shard s's schedule for shard-homed blocks, and
    // none for the fabric (the shard phases schedule routing themselves;
    // ParallelSkipAhead polls the fabric's declaration directly).
    ActiveSchedule* want = nullptr;
    if (block != fabric_block) {
      const TileId home = block->PartitionHome();
      if (home != kInvalidTile && home < partition_.shard_of_tile.size()) {
        const uint32_t shard = partition_.shard_of_tile[home];
        shard_blocks_[shard].push_back(block);
        want = shard_scheds_[shard].get();
      } else {
        root_blocks_.push_back(block);
        want = &sim_->sched_;
      }
    }
    Simulator::SlotRef& ref = sim_->slot_refs_[i];
    if (ref.sched != want) {
      if (ref.sched != nullptr) {
        ref.sched->Remove(ref.slot);
      }
      ref.sched = want;
      // Migration happens at the top of a cycle, pre-tick: the block is
      // conservatively active and may tick this cycle, like the legacy
      // lists it just joined.
      ref.slot = want != nullptr ? want->Add(block, sim_->now_) : 0;
    }
  }
  classified_count_ = sim_->blocks_.size();
}

void ParallelSimulator::FoldShardCounters() {
  for (uint32_t s = 0; s < num_shards_; ++s) {
    const ActiveSchedule& sched = *shard_scheds_[s];
    sim_->extra_ticked_blocks_ += sched.ticked_blocks() - folded_ticked_[s];
    sim_->extra_wheel_wakes_ += sched.wheel_wakes() - folded_wheel_[s];
    sim_->extra_wake_calls_ += sched.wake_calls() - folded_wake_[s];
    folded_ticked_[s] = sched.ticked_blocks();
    folded_wheel_[s] = sched.wheel_wakes();
    folded_wake_[s] = sched.wake_calls();
  }
}

void ParallelSimulator::WaitWorkersDone() {
  BoundedSpin spin;
  while (done_.load(std::memory_order_acquire) != threads_ - 1) {
    spin.Relax();
  }
  done_.store(0, std::memory_order_relaxed);
}

void ParallelSimulator::WorkerCycle(uint32_t worker, Cycle now) {
  const uint32_t begin = shard_begin_[worker];
  const uint32_t end = shard_begin_[worker + 1];
  const uint64_t seq = cycle_seq_;
  // Phase 1 over ALL owned shards first: grants depend only on phase-1 work,
  // so no wait below can cycle back to an unpublished grant (deadlock-free
  // for any threads <= shards).
  for (uint32_t s = begin; s < end; ++s) {
    ThreadDomain::ScopedInstall install(shard_contexts_[s]);
    fabric_->ShardCommit(s, now);
    fabric_->ShardRoute(s, now);
    route_done_[s].seq.store(seq, std::memory_order_release);
  }
  for (uint32_t s = begin; s < end; ++s) {
    for (const uint32_t n : partition_.neighbors[s]) {
      if (owner_of_shard_[n] == worker) {
        continue;  // Granted by our own phase-1 loop above.
      }
      BoundedSpin spin;
      while (route_done_[n].seq.load(std::memory_order_acquire) < seq) {
        spin.Relax();
      }
    }
    ThreadDomain::ScopedInstall install(shard_contexts_[s]);
    fabric_->ShardTransfer(s, now);
    if (sim_->ActiveSetLive()) {
      shard_scheds_[s]->ExecuteTicks(now);
      // Establish next cycle's active set while the schedule is still
      // worker-confined: the NextActivity polls here read only shard state
      // (and root state frozen since the root phase).
      shard_scheds_[s]->AdvanceBoundary(now + 1);
    } else {
      for (Clocked* block : shard_blocks_[s]) {
        block->Tick(now);
      }
    }
  }
}

void ParallelSimulator::WorkerMain(uint32_t worker) {
  uint64_t seen_run = 0;
  uint64_t seen_go = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(run_mu_);
      run_cv_.wait(lock, [&] { return shutdown_ || run_seq_ > seen_run; });
      if (shutdown_) {
        return;
      }
      seen_run = run_seq_;
    }
    for (;;) {
      BoundedSpin spin;
      uint64_t go;
      while ((go = go_seq_.load(std::memory_order_acquire)) == seen_go) {
        spin.Relax();
      }
      seen_go = go;
      if (go_token_ == kTokenEndRun) {
        done_.fetch_add(1, std::memory_order_release);
        break;  // Repark until the next Run().
      }
      WorkerCycle(worker, go_cycle_);
      done_.fetch_add(1, std::memory_order_release);
    }
  }
}

void ParallelSimulator::ExecuteCycle() {
  if (sim_->blocks_.size() != classified_count_) {
    Reclassify();
  }
  const Cycle now = sim_->now_;
  const bool active_sets = sim_->ActiveSetLive();
  const size_t events_run = sim_->events_.RunUntil(now);
  if (active_sets && events_run > 0) {
    // Event callbacks are opaque; conservatively re-activate every schedule
    // (see Simulator::Step). Workers are parked, so this is coordinator-safe.
    sim_->sched_.RebuildAllActive();
    for (auto& sched : shard_scheds_) {
      sched->RebuildAllActive();
    }
  }
  // Root blocks may Register new blocks mid-tick; they join the list (and a
  // shard, if homed) at the next cycle's Reclassify, exactly like the serial
  // engine's next-cycle pickup.
  if (active_sets) {
    sim_->sched_.ExecuteTicks(now);
  } else {
    const size_t root_count = root_blocks_.size();
    for (size_t i = 0; i < root_count; ++i) {
      root_blocks_[i]->Tick(now);
    }
    sim_->legacy_ticked_blocks_ += root_count;
  }
  const size_t blocks_after_root = sim_->blocks_.size();

  ++cycle_seq_;
  if (threads_ > 1) {
    go_cycle_ = now;
    go_token_ = kTokenCycle;
    go_seq_.fetch_add(1, std::memory_order_release);
  }
  WorkerCycle(0, now);
  if (threads_ > 1) {
    WaitWorkersDone();
  }
  // Shard-phase ticks must not mutate the block list (see the header
  // contract) — it is shared, and worker phases run concurrently.
  assert(sim_->blocks_.size() == blocks_after_root &&
         "Register/Unregister called from a shard-phase Tick");
  (void)blocks_after_root;

  if (!active_sets) {
    // Shard ticks ran through the legacy lists; count them deterministically
    // on the coordinator (every shard block ticks every cycle in this mode).
    for (uint32_t s = 0; s < num_shards_; ++s) {
      sim_->legacy_ticked_blocks_ += shard_blocks_[s].size();
    }
  }
  const bool removed = !sim_->pending_removals_.empty();
  sim_->ApplyPendingRemovals();
  if (removed) {
    Reclassify();
  }
  ++sim_->now_;
  ++sim_->executed_cycles_;
  if (active_sets) {
    // Root-schedule boundary after the workers are done, so boundary-poll
    // blocks (DRAM, MACs, PCIe) observe shard-phase enqueues from this cycle.
    sim_->sched_.AdvanceBoundary(sim_->now_);
  }
}

void ParallelSimulator::ParallelSkipAhead(Cycle limit) {
  if (!sim_->skip_enabled_ || sim_->now_ >= limit) {
    return;
  }
  if (!sim_->ActiveSetLive()) {
    sim_->SkipAhead(limit);  // Tick-everything mode: the O(N) sweep is correct as is.
    return;
  }
  const Cycle now = sim_->now_;
  Cycle target = sim_->sched_.EarliestWork(now);
  if (target <= now) {
    return;
  }
  for (auto& sched : shard_scheds_) {
    target = std::min(target, sched->EarliestWork(now));
    if (target <= now) {
      return;
    }
  }
  const Cycle fabric_next = fabric_->AsClocked()->NextActivity(now);
  if (fabric_next <= now) {
    return;
  }
  target = std::min(target, fabric_next);
  if (!sim_->events_.empty()) {
    const Cycle due = sim_->events_.NextEventCycle();
    if (due <= now) {
      return;
    }
    target = std::min(target, due);
  }
  target = std::min(target, limit);
  if (target <= now) {
    return;
  }
  sim_->JumpTo(target);
  for (auto& sched : shard_scheds_) {
    sched->AdvanceBoundary(sim_->now_);
  }
}

void ParallelSimulator::Run(Cycle cycles) {
  ThreadDomain::ScopedInstall install(&sim_->context_);
  if (threads_ > 1) {
    {
      std::lock_guard<std::mutex> lock(run_mu_);
      ++run_seq_;
    }
    run_cv_.notify_all();
  }
  const Cycle end = sim_->now_ + cycles;
  while (sim_->now_ < end) {
    ExecuteCycle();
    // Workers spin idle across the jump; they touch no simulation state
    // between cycles, so the coordinator can skip exactly like the serial
    // engine (boundary rings are drained every executed cycle, so pending
    // cross-shard traffic always pins NextActivity at `now`).
    ParallelSkipAhead(end);
  }
  if (threads_ > 1) {
    go_token_ = kTokenEndRun;
    go_seq_.fetch_add(1, std::memory_order_release);
    WaitWorkersDone();
  }
  FoldShardCounters();
}

}  // namespace apiary
