#include "src/sim/parallel/parallel_simulator.h"

#include <algorithm>
#include <cassert>

#include "src/sim/parallel/thread_domain.h"

namespace apiary {

namespace {

// Bounded spin: on machines with fewer cores than threads (CI runners under
// load, single-core containers) a raw spin would starve the very thread it
// waits for, so yield to the scheduler every so often.
class BoundedSpin {
 public:
  void Relax() {
    if (++spins_ >= 128) {
      spins_ = 0;
      std::this_thread::yield();
    }
  }

 private:
  int spins_ = 0;
};

}  // namespace

ParallelSimulator::ParallelSimulator(Simulator* sim, ShardedFabric* fabric, ParallelConfig config)
    : sim_(sim), fabric_(fabric) {
  const uint32_t width = fabric_->FabricWidth();
  const uint32_t height = fabric_->FabricHeight();
  uint32_t shards = config.shards;
  if (shards == 0) {
    shards = std::min<uint32_t>(4, std::max(width, height));
  }
  partition_ = DomainPartition::Build(width, height, shards);
  num_shards_ = partition_.num_shards;
  threads_ = std::max<uint32_t>(1, std::min(config.threads, num_shards_));

  std::vector<std::unique_ptr<SimContext>> contexts;
  contexts.reserve(num_shards_);
  shard_contexts_.reserve(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    contexts.push_back(std::make_unique<SimContext>());
    shard_contexts_.push_back(contexts.back().get());
  }
  fabric_->EnablePartition(partition_, std::move(contexts));

  route_done_ = std::make_unique<GrantSlot[]>(num_shards_);
  shard_begin_.resize(threads_ + 1);
  for (uint32_t w = 0; w <= threads_; ++w) {
    shard_begin_[w] = static_cast<uint32_t>(static_cast<uint64_t>(w) * num_shards_ / threads_);
  }
  owner_of_shard_.resize(num_shards_);
  for (uint32_t w = 0; w < threads_; ++w) {
    for (uint32_t s = shard_begin_[w]; s < shard_begin_[w + 1]; ++s) {
      owner_of_shard_[s] = w;
    }
  }

  workers_.reserve(threads_ - 1);
  for (uint32_t w = 1; w < threads_; ++w) {
    workers_.emplace_back(&ParallelSimulator::WorkerMain, this, w);
  }
}

ParallelSimulator::~ParallelSimulator() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    shutdown_ = true;
  }
  run_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  fabric_->DisablePartition();
}

void ParallelSimulator::Reclassify() {
  root_blocks_.clear();
  shard_blocks_.assign(num_shards_, {});
  Clocked* const fabric_block = fabric_->AsClocked();
  for (Clocked* block : sim_->blocks_) {
    if (block == fabric_block) {
      continue;  // The fabric runs as the shard phases, not as a root tick.
    }
    const TileId home = block->PartitionHome();
    if (home != kInvalidTile && home < partition_.shard_of_tile.size()) {
      shard_blocks_[partition_.shard_of_tile[home]].push_back(block);
    } else {
      root_blocks_.push_back(block);
    }
  }
  classified_count_ = sim_->blocks_.size();
}

void ParallelSimulator::WaitWorkersDone() {
  BoundedSpin spin;
  while (done_.load(std::memory_order_acquire) != threads_ - 1) {
    spin.Relax();
  }
  done_.store(0, std::memory_order_relaxed);
}

void ParallelSimulator::WorkerCycle(uint32_t worker, Cycle now) {
  const uint32_t begin = shard_begin_[worker];
  const uint32_t end = shard_begin_[worker + 1];
  const uint64_t seq = cycle_seq_;
  // Phase 1 over ALL owned shards first: grants depend only on phase-1 work,
  // so no wait below can cycle back to an unpublished grant (deadlock-free
  // for any threads <= shards).
  for (uint32_t s = begin; s < end; ++s) {
    ThreadDomain::ScopedInstall install(shard_contexts_[s]);
    fabric_->ShardCommit(s);
    fabric_->ShardRoute(s, now);
    route_done_[s].seq.store(seq, std::memory_order_release);
  }
  for (uint32_t s = begin; s < end; ++s) {
    for (const uint32_t n : partition_.neighbors[s]) {
      if (owner_of_shard_[n] == worker) {
        continue;  // Granted by our own phase-1 loop above.
      }
      BoundedSpin spin;
      while (route_done_[n].seq.load(std::memory_order_acquire) < seq) {
        spin.Relax();
      }
    }
    ThreadDomain::ScopedInstall install(shard_contexts_[s]);
    fabric_->ShardTransfer(s, now);
    for (Clocked* block : shard_blocks_[s]) {
      block->Tick(now);
    }
  }
}

void ParallelSimulator::WorkerMain(uint32_t worker) {
  uint64_t seen_run = 0;
  uint64_t seen_go = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(run_mu_);
      run_cv_.wait(lock, [&] { return shutdown_ || run_seq_ > seen_run; });
      if (shutdown_) {
        return;
      }
      seen_run = run_seq_;
    }
    for (;;) {
      BoundedSpin spin;
      uint64_t go;
      while ((go = go_seq_.load(std::memory_order_acquire)) == seen_go) {
        spin.Relax();
      }
      seen_go = go;
      if (go_token_ == kTokenEndRun) {
        done_.fetch_add(1, std::memory_order_release);
        break;  // Repark until the next Run().
      }
      WorkerCycle(worker, go_cycle_);
      done_.fetch_add(1, std::memory_order_release);
    }
  }
}

void ParallelSimulator::ExecuteCycle() {
  if (sim_->blocks_.size() != classified_count_) {
    Reclassify();
  }
  const Cycle now = sim_->now_;
  sim_->events_.RunUntil(now);
  // Root blocks may Register new blocks mid-tick; they join the list (and a
  // shard, if homed) at the next cycle's Reclassify, exactly like the serial
  // engine's next-cycle pickup.
  const size_t root_count = root_blocks_.size();
  for (size_t i = 0; i < root_count; ++i) {
    root_blocks_[i]->Tick(now);
  }
  const size_t blocks_after_root = sim_->blocks_.size();

  ++cycle_seq_;
  if (threads_ > 1) {
    go_cycle_ = now;
    go_token_ = kTokenCycle;
    go_seq_.fetch_add(1, std::memory_order_release);
  }
  WorkerCycle(0, now);
  if (threads_ > 1) {
    WaitWorkersDone();
  }
  // Shard-phase ticks must not mutate the block list (see the header
  // contract) — it is shared, and worker phases run concurrently.
  assert(sim_->blocks_.size() == blocks_after_root &&
         "Register/Unregister called from a shard-phase Tick");
  (void)blocks_after_root;

  const bool removed = !sim_->pending_removals_.empty();
  sim_->ApplyPendingRemovals();
  if (removed) {
    Reclassify();
  }
  ++sim_->now_;
}

void ParallelSimulator::Run(Cycle cycles) {
  ThreadDomain::ScopedInstall install(&sim_->context_);
  if (threads_ > 1) {
    {
      std::lock_guard<std::mutex> lock(run_mu_);
      ++run_seq_;
    }
    run_cv_.notify_all();
  }
  const Cycle end = sim_->now_ + cycles;
  while (sim_->now_ < end) {
    ExecuteCycle();
    // Workers spin idle across the jump; they touch no simulation state
    // between cycles, so the coordinator can skip exactly like the serial
    // engine (boundary rings are drained every executed cycle, so pending
    // cross-shard traffic always pins NextActivity at `now`).
    sim_->SkipAhead(end);
  }
  if (threads_ > 1) {
    go_token_ = kTokenEndRun;
    go_seq_.fetch_add(1, std::memory_order_release);
    WaitWorkersDone();
  }
}

}  // namespace apiary
