// Lock-free single-producer / single-consumer ring — the cross-domain
// sibling of src/sim/ring_buffer.h.
//
// RingBuffer is the single-owner FIFO: one thread (one shard) pushes and
// pops, no synchronization, no atomics. SpscRing is the one queue shape the
// sharded engine (parallel_simulator.h) allows *between* domains: exactly
// one producer thread and exactly one consumer thread, communicating through
// two monotonically increasing indices.
//
// Memory-ordering contract (why this is enough — and why MPMC would not be):
//   * Push() writes the slot, then publishes it with a release store of
//     tail_. Pop() acquires tail_, so the consumer's read of the slot
//     happens-after the producer's write — the only edge a SPSC queue needs.
//   * Pop() releases head_ after reading the slot; Push() acquires head_
//     before overwriting, so slot reuse happens-after consumption.
//   * With a single producer and a single consumer each index has exactly
//     one writer, so there are no CAS loops, no ABA window, and the ring is
//     wait-free in both directions. Any MPMC generalization would reintroduce
//     contended RMW traffic on the hot handoff path for no benefit: the mesh
//     partition gives every directed cut link exactly one sending shard and
//     one receiving shard by construction.
//
// Capacity is a compile-time power of two so the wrap is a mask, and slots
// are plain assignable values (the boundary handoff moves POD records, not
// owning handles — ownership crosses the cut via the clone protocol in
// src/noc/boundary_link.h).
#ifndef SRC_SIM_PARALLEL_SPSC_RING_H_
#define SRC_SIM_PARALLEL_SPSC_RING_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#ifndef NDEBUG
#include <thread>
#endif

namespace apiary {

template <typename T, uint32_t kCapacity>
class SpscRing {
  static_assert(kCapacity >= 2 && (kCapacity & (kCapacity - 1)) == 0,
                "SpscRing capacity must be a power of two");

 public:
  SpscRing() = default;
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. Returns false when the ring is full (the boundary
  // protocol sizes rings so this cannot happen in steady state; callers
  // assert success).
  bool Push(const T& value) {
    AssertProducer();
    const uint32_t tail = tail_.load(std::memory_order_relaxed);
    const uint32_t head = head_.load(std::memory_order_acquire);
    if (tail - head == kCapacity) {
      return false;
    }
    slots_[tail & kMask] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool Pop(T* out) {
    AssertConsumer();
    const uint32_t head = head_.load(std::memory_order_relaxed);
    const uint32_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) {
      return false;
    }
    *out = slots_[head & kMask];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Racy size snapshot — exact only while both sides are quiescent (the
  // barrier-separated phases of the parallel engine, or teardown).
  uint32_t SizeApprox() const {
    return tail_.load(std::memory_order_acquire) - head_.load(std::memory_order_acquire);
  }
  bool EmptyApprox() const { return SizeApprox() == 0; }

  static constexpr uint32_t capacity() { return kCapacity; }

  // Debug-mode ownership reset: forget which threads were seen producing and
  // consuming. Call only while both sides are quiescent (e.g. when a new set
  // of worker threads takes over the partition).
  void ResetOwners() {
#ifndef NDEBUG
    producer_ = std::thread::id{};
    consumer_ = std::thread::id{};
#endif
  }

 private:
  static constexpr uint32_t kMask = kCapacity - 1;

#ifndef NDEBUG
  // Each role records the first thread that exercised it and asserts every
  // later use comes from that same thread: a second producer (or consumer)
  // is a partition bug, caught here instead of as a silent race. Each field
  // is only ever written by its own role's thread, so the check itself adds
  // no cross-thread traffic.
  void AssertRole(std::thread::id* owner) {
    const std::thread::id self = std::this_thread::get_id();
    if (*owner == std::thread::id{}) {
      *owner = self;
    }
    assert(*owner == self && "SpscRing role exercised from more than one thread");
  }
  void AssertProducer() { AssertRole(&producer_); }
  void AssertConsumer() { AssertRole(&consumer_); }
  std::thread::id producer_{};
  std::thread::id consumer_{};
#else
  void AssertProducer() {}
  void AssertConsumer() {}
#endif

  // Indices on separate cache lines so the producer's tail stores never
  // false-share with the consumer's head stores.
  alignas(64) std::atomic<uint32_t> head_{0};
  alignas(64) std::atomic<uint32_t> tail_{0};
  alignas(64) T slots_[kCapacity] = {};
};

}  // namespace apiary

#endif  // SRC_SIM_PARALLEL_SPSC_RING_H_
