// Partial-reconfiguration scheduler: serializes bitstream loads through the
// single ICAP port.
//
// Real FPGAs have one internal configuration access port; two regions cannot
// reconfigure concurrently. The board model charges each load
// `partial_reconfig_cycles`, and this scheduler is the arbiter that keeps
// the port single-owner: jobs queue FIFO, at most one tile is mid-load at a
// time, and the port also yields to Supervisor-driven recovery
// reconfigurations (any tile already reconfiguring blocks the queue — the
// supervisor and the orchestrator share the ICAP without racing).
//
// A teardown job models the full drain -> reconfigure -> rebind shutdown:
// wait for the caller's drain predicate (bounded by a deadline), then load
// the blanking bitstream through the same serialized port.
#ifndef SRC_ORCH_RECONFIG_SCHEDULER_H_
#define SRC_ORCH_RECONFIG_SCHEDULER_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "src/core/kernel.h"
#include "src/sim/clocked.h"
#include "src/stats/summary.h"

namespace apiary {

struct ReconfigSchedulerConfig {
  // Cycles a teardown waits after its drain predicate turns true, letting
  // in-flight responses clear the NoC before the region is blanked.
  Cycle drain_cycles = 4'000;
  // A drain predicate that never turns true aborts the teardown after this
  // long (the caller is told ok=false and the region stays up).
  Cycle drain_deadline_cycles = 200'000;
};

class ReconfigScheduler : public Clocked {
 public:
  using AccelFactory = std::function<std::unique_ptr<Accelerator>()>;
  // (tile, service assigned by Deploy, ok). service is kInvalidService when
  // !ok.
  using LoadCallback = std::function<void(TileId, ServiceId, bool)>;
  using TeardownCallback = std::function<void(TileId, bool)>;

  ReconfigScheduler(ApiaryOs* os, AppId app,
                    ReconfigSchedulerConfig config = ReconfigSchedulerConfig{});

  // Queues a bitstream load of `factory()` onto `tile` (which the caller
  // placed and reserved). The callback fires when the accelerator is booted
  // (ok) or the job was abandoned because the tile became unusable (!ok).
  void ScheduleLoad(TileId tile, AccelFactory factory, LoadCallback done);

  // Queues a drain-then-blank teardown of `tile`. `drained` is polled each
  // cycle while the job is at the head of the queue; once true (or the
  // deadline passes), the region is undeployed through the ICAP.
  void ScheduleTeardown(TileId tile, std::function<bool()> drained,
                        TeardownCallback done);

  void Tick(Cycle now) override;
  // Drain predicates and ICAP-stall accounting are polled cycle-by-cycle, so
  // the scheduler pins the clock whenever a job is queued or active; with an
  // empty queue the tick is a no-op and the clock may run free.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    return busy() ? now : kNoActivity;
  }
  void OnFastForward(Cycle resume_cycle) override { now_ = resume_cycle - 1; }
  std::string DebugName() const override { return "reconfig_scheduler"; }

  size_t queue_depth() const { return jobs_.size(); }
  bool busy() const { return active_.has_value() || !jobs_.empty(); }
  const CounterSet& counters() const { return counters_; }

  // ICAP rate quota: at most `loads_per_window` bitstream pushes (loads or
  // blanks) per `window_cycles` window. Jobs over quota wait at the head of
  // the queue ("orch.quota_stall_cycles") instead of being dropped — a
  // reconfig-thrashing tenant throttles itself without losing work. Zero
  // `loads_per_window` clears the quota. The window counter is kept inline
  // (not a noc WindowMeter): orchestration sits below noc in the layering
  // DAG and must not include it.
  void SetRateQuota(uint32_t loads_per_window, Cycle window_cycles);
  uint64_t quota_loads_in_window(Cycle now) const {
    return quota_window_cycles_ != 0 && now / quota_window_cycles_ == quota_window_index_
               ? quota_used_
               : 0;
  }

 private:
  enum class JobKind : uint8_t { kLoad, kTeardown };
  struct Job {
    JobKind kind = JobKind::kLoad;
    TileId tile = kInvalidTile;
    AccelFactory factory;                 // kLoad only.
    LoadCallback on_load;                 // kLoad only.
    std::function<bool()> drained;        // kTeardown only.
    TeardownCallback on_teardown;         // kTeardown only.
    Cycle queued_at = 0;
    Cycle drain_ok_since = kInvalidCycle; // First cycle `drained` held.
  };
  // Job currently holding (or waiting to hold) the ICAP.
  struct Active {
    Job job;
    ServiceId service = kInvalidService;
    bool loading = false;  // Bitstream actually started (tile reconfiguring).
  };

  static constexpr Cycle kInvalidCycle = ~Cycle{0};

  // True when no tile on the board is mid-reconfiguration — the ICAP is
  // free. Supervisor recoveries claim it through the same board state.
  bool IcapFree() const;
  // Rate-quota window accounting (see SetRateQuota).
  bool QuotaAllows(Cycle now);
  void ChargeQuota(Cycle now);
  void StartNext(Cycle now);
  void FinishActive(bool ok);

  ApiaryOs* os_;
  AppId app_;
  ReconfigSchedulerConfig config_;
  std::deque<Job> jobs_;
  std::optional<Active> active_;
  Cycle now_ = 0;
  uint32_t quota_loads_per_window_ = 0;  // 0 = unlimited.
  Cycle quota_window_cycles_ = 0;
  Cycle quota_window_index_ = 0;
  uint64_t quota_used_ = 0;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_ORCH_RECONFIG_SCHEDULER_H_
