#include "src/sim/simulator.h"

#include <algorithm>

#include "src/sim/parallel/thread_domain.h"

namespace apiary {

void Simulator::Register(Clocked* block) { blocks_.push_back(block); }

void Simulator::Unregister(Clocked* block) { pending_removals_.push_back(block); }

void Simulator::ApplyPendingRemovals() {
  if (pending_removals_.empty()) {
    return;
  }
  // Single-pass compaction: sort the removal set once and binary-search it
  // per block, instead of one O(blocks) erase per removal. Sorting also
  // makes double-unregister of the same block harmless (both entries match
  // the same element; remove_if visits each block once).
  std::sort(pending_removals_.begin(), pending_removals_.end());
  Clocked* hot = hot_block_ < blocks_.size() ? blocks_[hot_block_] : nullptr;
  blocks_.erase(std::remove_if(blocks_.begin(), blocks_.end(),
                               [this](Clocked* b) {
                                 return std::binary_search(pending_removals_.begin(),
                                                           pending_removals_.end(), b);
                               }),
                blocks_.end());
  // The compaction shifts indices, so the hot-block cache must follow its
  // block: removing the cached block itself invalidates the cache (index 0,
  // never out of range), and removing an earlier block remaps it — otherwise
  // the stale index silently aliases whatever slid into that slot and the
  // fast-exit poll in SkipAhead() probes the wrong block.
  if (hot != nullptr) {
    if (std::binary_search(pending_removals_.begin(), pending_removals_.end(), hot)) {
      hot_block_ = 0;
    } else if (hot_block_ >= blocks_.size() || blocks_[hot_block_] != hot) {
      hot_block_ = static_cast<size_t>(std::find(blocks_.begin(), blocks_.end(), hot) -
                                       blocks_.begin());
    }
  }
  pending_removals_.clear();
}

void Simulator::Step() {
  events_.RunUntil(now_);
  // Index-based loop: callbacks and ticks may register new blocks, which then
  // start ticking on the next cycle.
  const size_t count = blocks_.size();
  for (size_t i = 0; i < count; ++i) {
    blocks_[i]->Tick(now_);
  }
  ApplyPendingRemovals();
  ++now_;
}

void Simulator::SkipAhead(Cycle limit) {
  if (!skip_enabled_ || now_ >= limit) {
    return;
  }
  // Saturated-path fast exit: the block that most recently proved activity is
  // overwhelmingly likely to still be active, so poll it before scanning. A
  // failed skip attempt then costs one virtual call instead of O(blocks).
  // NextActivity is a pure query, so the extra poll has no observable effect.
  if (hot_block_ < blocks_.size() && blocks_[hot_block_]->NextActivity(now_) <= now_) {
    return;
  }
  // The jump target is the earliest cycle anyone needs: the next pending
  // event, or any block's declared next activity. A single active block
  // (NextActivity <= now_) pins the target at now_ and we execute normally.
  Cycle target = limit;
  if (!events_.empty()) {
    const Cycle due = events_.NextEventCycle();
    if (due <= now_) {
      return;  // An event is due immediately: nothing to skip.
    }
    target = std::min(target, due);
  }
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const Cycle next = blocks_[i]->NextActivity(now_);
    if (next <= now_) {
      hot_block_ = i;  // Remember the busy block for the fast exit above.
      return;          // Someone is active next cycle: bail before polling the rest.
    }
    target = std::min(target, next);
  }
  if (target <= now_) {
    return;
  }
  skipped_cycles_ += target - now_;
  ++skips_;
  // Every block observes the jump, so cached clocks and per-cycle
  // accumulators stay exactly as a cycle-by-cycle run would leave them.
  for (Clocked* block : blocks_) {
    block->OnFastForward(target);
  }
  now_ = target;
}

void Simulator::Run(Cycle cycles) {
  // Everything this run allocates or logs belongs to this simulator's
  // domain (nested installs of the same context are harmless no-ops).
  ThreadDomain::ScopedInstall install(&context_);
  const Cycle end = now_ + cycles;
  while (now_ < end) {
    Step();
    SkipAhead(end);
  }
}

bool Simulator::RunUntil(const std::function<bool()>& pred, Cycle max_cycles) {
  ThreadDomain::ScopedInstall install(&context_);
  const Cycle end = now_ + max_cycles;
  while (now_ < end) {
    if (pred()) {
      return true;
    }
    Step();
    // Re-check at the fresh boundary BEFORE skipping: if the executed cycle
    // satisfied the predicate, now_ must stay here (the cycle count callers
    // observe), not at the far side of a jump.
    if (pred()) {
      return true;
    }
    SkipAhead(end);
  }
  return pred();
}

}  // namespace apiary
