// Determinism regression: two runs of an identical, nontrivial scenario must
// produce bit-identical results — the reproducibility guarantee every other
// experiment relies on — plus tests for hot-standby service rebinding.
#include <gtest/gtest.h>

#include "src/accel/echo.h"
#include "src/accel/kv_store.h"
#include "src/core/service_ids.h"
#include "src/core/message.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/noc/packet_pool.h"
#include "src/services/gateway.h"
#include "src/services/supervisor.h"
#include "src/services/memory_service.h"
#include "src/services/network_service.h"
#include "src/sim/logging.h"
#include "src/workload/client.h"
#include "src/workload/kv_workload.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

struct ScenarioResult {
  uint64_t received;
  uint64_t errors;
  uint64_t flits;
  std::string monitor_counters;
  uint64_t p50;
  uint64_t p999;
  std::vector<uint8_t> last_response;
};

ScenarioResult RunScenario(uint64_t seed, bool pooled = true) {
  TestBoard tb;
  // Hot-path ablation switch: pools and arenas are per-simulator domain state
  // now, so the toggles live on this board's pool and this sim's context.
  tb.board.mesh().pool().SetEnabled(pooled);
  tb.sim.context().arena().SetEnabled(pooled);
  SetMessageLegacyAllocMode(!pooled);
  tb.net.SetLossRate(0.02, 7);  // Loss + retries stress the determinism.
  tb.os.DeployService(kMemoryService,
                      std::make_unique<MemoryService>(&tb.os, &tb.board.memory()));
  tb.os.DeployService(
      kNetworkService,
      std::make_unique<NetworkService>(&tb.os,
                                       std::make_unique<Mac100GAdapter>(tb.board.mac100g()),
                                       /*reliable=*/true));
  AppId app = tb.os.CreateApp("kv");
  auto* kv = new KvStoreAccelerator(1 << 18, 4096);
  ServiceId kv_svc = 0;
  const TileId kt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(kv), &kv_svc);
  (void)tb.os.GrantSendToService(kt, kMemoryService);
  auto* gw = new NetGateway();
  ServiceId gw_svc = 0;
  const TileId gt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(gw), &gw_svc);
  (void)tb.os.GrantSendToService(gt, kNetworkService);
  gw->SetBackend(tb.os.GrantSendToService(gt, kv_svc));

  KvWorkloadConfig wl;
  wl.keyspace = 50;
  wl.read_fraction = 0.7;
  ClientConfig ccfg;
  ccfg.server_endpoint = tb.board.mac100g()->address();
  ccfg.dst_service = gw_svc;
  ccfg.open_loop = false;
  ccfg.concurrency = 3;
  ccfg.max_requests = 60;
  ccfg.reliable = true;
  ccfg.seed = seed;
  ClientHost client(ccfg, &tb.net, MakeKvRequestFactory(wl));
  tb.sim.Register(&client);
  tb.sim.RunUntil([&] { return client.received() >= 60; }, 20'000'000);

  ScenarioResult r;
  r.received = client.received();
  r.errors = client.errors();
  r.flits = tb.board.mesh().TotalFlitsRouted();
  r.monitor_counters = tb.os.AggregateMonitorCounters().ToString();
  r.p50 = client.latency().P50();
  r.p999 = client.latency().P999();
  r.last_response = client.last_response();
  SetMessageLegacyAllocMode(false);
  return r;
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalResults) {
  const ScenarioResult a = RunScenario(11);
  const ScenarioResult b = RunScenario(11);
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.flits, b.flits);
  EXPECT_EQ(a.monitor_counters, b.monitor_counters);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p999, b.p999);
  EXPECT_EQ(a.last_response, b.last_response);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  const ScenarioResult a = RunScenario(11);
  const ScenarioResult b = RunScenario(12);
  // Different client op mixes must leave different traffic footprints.
  EXPECT_NE(a.flits, b.flits);
}

// Captures every log line (down to kDebug) a seeded run emits. Two runs of
// the same seed must produce byte-identical traces — a far stricter probe
// than comparing end-of-run aggregates, since any intermediate divergence
// (event order, retry timing, map iteration order) shows up in the trace.
std::string RunScenarioTrace(uint64_t seed, bool pooled = true) {
  std::string trace;
  SetLogSink(
      [](LogLevel level, const std::string& line, void* user) {
        auto* out = static_cast<std::string*>(user);
        *out += std::to_string(static_cast<int>(level));
        *out += ' ';
        *out += line;
        *out += '\n';
      },
      &trace);
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  (void)RunScenario(seed, pooled);
  SetLogLevel(prev);
  SetLogSink(nullptr, nullptr);
  return trace;
}

TEST(DeterminismTest, FullTraceOfTwoSeededRunsIsByteIdentical) {
  const std::string a = RunScenarioTrace(11);
  const std::string b = RunScenarioTrace(11);
  EXPECT_EQ(a, b);
  // And a different seed must actually change the execution, so an always-
  // empty or seed-blind trace cannot fake the test out.
  const std::string c = RunScenarioTrace(12);
  EXPECT_NE(a, c);
}

// The hot-path machinery (PacketPool recycling, PayloadBuf arena backing,
// the move-through serialization path) must change only *where* bytes live,
// never what the simulation does: a run with every optimization disabled —
// the legacy allocate-per-message shape — has to trace byte-identically to
// the pooled run. This is what licenses bench/b2's --no-pool ablation as a
// fair comparison.
TEST(DeterminismTest, PooledAndLegacyAllocRunsAreByteIdentical) {
  const std::string legacy = RunScenarioTrace(11, /*pooled=*/false);
  const std::string pooled = RunScenarioTrace(11, /*pooled=*/true);
  EXPECT_EQ(legacy, pooled);
}

// A periodic closed-fire client: one echo request every `period` cycles,
// fire-and-forget (losses surface as missing responses, not retries).
class PeriodicClient : public Accelerator {
 public:
  explicit PeriodicClient(ServiceId svc, Cycle period) : svc_(svc), period_(period) {}

  void Tick(TileApi& api) override {
    if (api.now() >= next_) {
      Message msg;
      msg.opcode = kOpEcho;
      msg.payload = {1, 2, 3, 4};
      if (api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
        ++sent;
      }
      next_ = api.now() + period_;
    }
  }
  void OnMessage(const Message& msg, TileApi&) override {
    (msg.status == MsgStatus::kOk ? ok : errors) += 1;
  }
  std::string name() const override { return "periodic_client"; }
  uint32_t LogicCellCost() const override { return 1000; }

  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;

 private:
  ServiceId svc_;
  Cycle period_;
  Cycle next_ = 0;
};

struct ChaosResult {
  std::string fault_trace;
  std::string injector_counters;
  std::string supervisor_counters;
  std::string monitor_counters;
  uint64_t flits;
  uint64_t client_ok;
  uint64_t client_errors;
};

// A seeded FaultPlan campaign (link drops, corruption, DRAM upsets, an SEU
// crash healed by the supervisor) over live traffic. Every probabilistic
// choice flows from the plan seed and the simulator's fixed tick order, so
// the whole chaos run — fault addresses, cycles, recovery timings — must
// replay byte-identically.
ChaosResult RunChaosScenario(uint64_t plan_seed) {
  Simulator sim(250.0);
  ExternalNetwork net(25);
  sim.Register(&net);
  BoardConfig cfg;
  cfg.mesh = MeshConfig{4, 4, 8, 512};
  cfg.dram.capacity_bytes = 64ull << 20;
  cfg.partial_reconfig_cycles = 20'000;
  Board board(cfg, sim, &net);
  ApiaryOs os(board);

  AppId app = os.CreateApp("chaos");
  ServiceId svc = 0;
  const TileId st = os.Deploy(app, std::make_unique<EchoAccelerator>(5), &svc);
  auto* client = new PeriodicClient(svc, 200);
  const TileId ct = os.Deploy(app, std::unique_ptr<Accelerator>(client));
  (void)os.GrantSendToService(ct, svc);

  SupervisorConfig scfg;
  scfg.poll_period = 64;
  Supervisor sup(&os);
  sup.Manage(st, [] { return std::make_unique<EchoAccelerator>(5); });

  FaultPlan plan;
  plan.seed = plan_seed;
  plan.LinkDrop(10'000, 15'000, 0.3)
      .LinkCorrupt(30'000, 15'000, 0.25)
      .DramBitFlips(40'000, 4)
      .AccelCrash(50'000, st)
      .LinkDrop(90'000, 10'000, 0.3)
      .DramBitFlips(100'000, 4);
  FaultInjector injector(
      plan, FaultHooks{.os = &os, .mesh = &board.mesh(), .memory = &board.memory()});

  sim.Run(150'000);

  ChaosResult r;
  r.fault_trace = injector.TraceString();
  r.injector_counters = injector.counters().ToString();
  r.supervisor_counters = sup.counters().ToString();
  r.monitor_counters = os.AggregateMonitorCounters().ToString();
  r.flits = board.mesh().TotalFlitsRouted();
  r.client_ok = client->ok;
  r.client_errors = client->errors;
  return r;
}

TEST(ChaosDeterminismTest, SameFaultPlanSeedReplaysIdentically) {
  const ChaosResult a = RunChaosScenario(9);
  const ChaosResult b = RunChaosScenario(9);
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_EQ(a.injector_counters, b.injector_counters);
  EXPECT_EQ(a.supervisor_counters, b.supervisor_counters);
  EXPECT_EQ(a.monitor_counters, b.monitor_counters);
  EXPECT_EQ(a.flits, b.flits);
  EXPECT_EQ(a.client_ok, b.client_ok);
  EXPECT_EQ(a.client_errors, b.client_errors);
  // Sanity: the campaign actually did damage and the supervisor healed it.
  EXPECT_GT(a.client_errors + a.client_ok, 0u);
  EXPECT_NE(a.injector_counters.find("fault.accel_crash=1"), std::string::npos);
}

TEST(ChaosDeterminismTest, DifferentFaultPlanSeedsDiverge) {
  const ChaosResult a = RunChaosScenario(9);
  const ChaosResult b = RunChaosScenario(10);
  // Different seeds pick different DRAM addresses and drop different packets.
  EXPECT_NE(a.fault_trace, b.fault_trace);
}

TEST(RebindServiceTest, ClientFollowsLogicalNameToStandby) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("svc");
  ServiceId svc = 0;
  auto* primary = new EchoAccelerator(5);
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(primary), &svc);
  ServiceId spare_svc = 0;
  auto* standby = new EchoAccelerator(5);
  const TileId st = tb.os.Deploy(app, std::unique_ptr<Accelerator>(standby), &spare_svc);

  auto* probe = new ProbeAccelerator();
  const TileId ct = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(ct, svc);
  Message msg;
  msg.opcode = kOpEcho;
  probe->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10000));
  EXPECT_EQ(primary->served(), 1u);
  probe->received.clear();

  // Fail the primary; rebind the logical name; regrant.
  tb.os.FailStop(pt, "gone");
  const CapRef old = tb.os.monitor(ct).cap_table().FindEndpointForService(svc);
  tb.os.Revoke(ct, old);
  tb.os.RebindService(svc, st);
  const CapRef fresh = tb.os.GrantSendToService(ct, svc);
  ASSERT_NE(fresh, kInvalidCapRef);

  Message msg2;
  msg2.opcode = kOpEcho;
  msg2.payload = {7};
  probe->EnqueueSend(msg2, fresh);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
  EXPECT_EQ(standby->served(), 1u);
  // The response carries the *logical* identity the client asked for.
  EXPECT_EQ(probe->received[0].src_service, svc);
}

}  // namespace
}  // namespace apiary
