// Tests for apiary_lint: library-level checks against in-memory sources,
// plus end-to-end runs of the binary against the testdata/ fixture trees
// (exit codes and which check fired).
#include "tools/apiary_lint/lint.h"

#include <sys/wait.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace apiary {
namespace lint {
namespace {

std::vector<Finding> LintOne(const std::string& path, const std::string& content) {
  std::vector<SourceFile> files;
  files.push_back(LexSource(path, content));
  return RunAllChecks(files, DefaultConfig());
}

bool HasCheck(const std::vector<Finding>& findings, const std::string& check) {
  for (const auto& finding : findings) {
    if (finding.check == check) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------------

TEST(Lexer, StripsCommentsAndStrings) {
  const auto findings = LintOne("src/noc/x.cc",
                                "// rand() and time(nullptr) in a comment\n"
                                "/* std::random_device in a block comment */\n"
                                "const char* s = \"srand(1) in a string\";\n"
                                "char c = '\\'';\n");
  EXPECT_TRUE(findings.empty()) << findings.size();
}

TEST(Lexer, BlockCommentSpansLines) {
  const auto findings = LintOne("src/noc/x.cc",
                                "/* begin\n"
                                "   rand();\n"
                                "   end */\n"
                                "int x = 0;\n");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// apiary-determinism.
// ---------------------------------------------------------------------------

TEST(Determinism, FlagsAmbientRandomnessAndWallClock) {
  const auto findings = LintOne("src/noc/x.cc",
                                "void f() {\n"
                                "  std::random_device rd;\n"
                                "  srand(42);\n"
                                "  int r = rand();\n"
                                "  auto t = std::chrono::steady_clock::now();\n"
                                "  long w = time(nullptr);\n"
                                "}\n");
  ASSERT_EQ(findings.size(), 5u);
  for (const auto& finding : findings) {
    EXPECT_EQ(finding.check, "apiary-determinism");
  }
  EXPECT_EQ(findings[0].line, 2);
}

TEST(Determinism, DoesNotFlagLookalikeIdentifiers) {
  const auto findings = LintOne("src/noc/x.cc",
                                "int hold_time(int x);\n"
                                "int y = hold_time(3);\n"
                                "int operand(int x);\n"
                                "int z = rng.rand();\n"   // member access: not ::rand
                                "int w = sim.time();\n");  // simulator time accessor
  EXPECT_TRUE(findings.empty());
}

TEST(Determinism, FlagsHashContainersOnlyInSrc) {
  EXPECT_TRUE(HasCheck(LintOne("src/core/x.h", "std::unordered_map<int, int> m_;\n"),
                       "apiary-determinism"));
  EXPECT_TRUE(LintOne("tests/x.cc", "std::unordered_map<int, int> m;\n").empty());
  EXPECT_TRUE(LintOne("bench/x.cc", "std::unordered_set<int> s;\n").empty());
}

TEST(Determinism, ExemptsStatsAndTheRngItself) {
  EXPECT_TRUE(LintOne("src/stats/x.cc", "std::unordered_map<int, int> m;\n").empty());
  EXPECT_TRUE(LintOne("src/sim/random.cc", "uint64_t seed = 1; // rand() replacement\n")
                  .empty());
}

TEST(Determinism, NolintSuppressions) {
  // Matching check name on the line.
  EXPECT_FALSE(HasCheck(
      LintOne("src/core/x.cc",
              "std::unordered_map<int, int> m_;  // NOLINT(apiary-determinism)\n"),
      "apiary-determinism"));
  // Bare NOLINT suppresses everything on the line.
  EXPECT_FALSE(HasCheck(
      LintOne("src/core/x.cc", "std::unordered_map<int, int> m_;  // NOLINT\n"),
      "apiary-determinism"));
  // NOLINTNEXTLINE applies to the following line.
  EXPECT_FALSE(HasCheck(LintOne("src/core/x.cc",
                                "// NOLINTNEXTLINE(apiary-determinism)\n"
                                "std::unordered_map<int, int> m_;\n"),
                        "apiary-determinism"));
  // A different check's NOLINT does not suppress.
  EXPECT_TRUE(HasCheck(
      LintOne("src/core/x.cc",
              "std::unordered_map<int, int> m_;  // NOLINT(apiary-layering)\n"),
      "apiary-determinism"));
}

// ---------------------------------------------------------------------------
// apiary-layering.
// ---------------------------------------------------------------------------

TEST(Layering, AllowsDeclaredEdges) {
  EXPECT_TRUE(LintOne("src/mem/x.cc",
                      "#include \"src/mem/dram.h\"\n"
                      "#include \"src/sim/types.h\"\n"
                      "#include \"src/stats/summary.h\"\n")
                  .empty());
}

TEST(Layering, BlocksAccelFromMemAndNoc) {
  const auto findings = LintOne("src/accel/x.cc",
                                "#include \"src/mem/dram.h\"\n"
                                "#include \"src/noc/packet.h\"\n"
                                "#include \"src/core/accelerator.h\"\n");
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_TRUE(HasCheck(findings, "apiary-layering"));
}

TEST(Layering, OpcodeAbiHeaderIsExemptEverywhere) {
  EXPECT_TRUE(LintOne("src/accel/x.cc", "#include \"src/services/opcodes.h\"\n").empty());
}

TEST(Layering, BlocksBaselineFromServices) {
  EXPECT_TRUE(HasCheck(LintOne("src/baseline/x.cc",
                               "#include \"src/services/transport.h\"\n"),
                       "apiary-layering"));
}

TEST(Layering, OrchSeesServicesAndCore) {
  EXPECT_TRUE(LintOne("src/orch/x.cc",
                      "#include \"src/core/kernel.h\"\n"
                      "#include \"src/fpga/board.h\"\n"
                      "#include \"src/orch/placer.h\"\n"
                      "#include \"src/services/supervisor.h\"\n"
                      "#include \"src/sim/clocked.h\"\n"
                      "#include \"src/stats/summary.h\"\n")
                  .empty());
}

TEST(Layering, BlocksAccelAndBaselineFromOrch) {
  EXPECT_TRUE(HasCheck(LintOne("src/accel/x.cc",
                               "#include \"src/orch/autoscaler.h\"\n"),
                       "apiary-layering"));
  EXPECT_TRUE(HasCheck(LintOne("src/baseline/x.cc",
                               "#include \"src/orch/placer.h\"\n"),
                       "apiary-layering"));
}

TEST(Layering, TenantSeesOrchServicesAndNoc) {
  EXPECT_TRUE(LintOne("src/tenant/x.cc",
                      "#include \"src/core/kernel.h\"\n"
                      "#include \"src/noc/rate_limiter.h\"\n"
                      "#include \"src/orch/reconfig_scheduler.h\"\n"
                      "#include \"src/services/memory_service.h\"\n"
                      "#include \"src/tenant/tenant.h\"\n")
                  .empty());
}

TEST(Layering, BlocksTenantAndAccelFromEachOther) {
  EXPECT_TRUE(HasCheck(LintOne("src/tenant/x.cc",
                               "#include \"src/accel/echo.h\"\n"),
                       "apiary-layering"));
  EXPECT_TRUE(HasCheck(LintOne("src/accel/x.cc",
                               "#include \"src/tenant/tenant.h\"\n"),
                       "apiary-layering"));
}

TEST(Layering, BlocksOrchFromNocAndMem) {
  const auto findings = LintOne("src/orch/x.cc",
                                "#include \"src/mem/dram.h\"\n"
                                "#include \"src/noc/packet.h\"\n");
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_TRUE(HasCheck(findings, "apiary-layering"));
}

TEST(Layering, SimIsTheRoot) {
  EXPECT_TRUE(HasCheck(LintOne("src/sim/x.cc", "#include \"src/core/tile.h\"\n"),
                       "apiary-layering"));
}

TEST(Layering, UndeclaredLayerIsFlagged) {
  EXPECT_TRUE(HasCheck(LintOne("src/newdir/x.cc", "#include \"src/sim/types.h\"\n"),
                       "apiary-layering"));
}

TEST(Layering, TestsAndBenchAreUnrestricted) {
  EXPECT_TRUE(LintOne("tests/x.cc", "#include \"src/noc/packet.h\"\n").empty());
  EXPECT_TRUE(LintOne("bench/x.cc", "#include \"src/mem/dram.h\"\n").empty());
}

// ---------------------------------------------------------------------------
// apiary-include-guard.
// ---------------------------------------------------------------------------

TEST(IncludeGuard, AcceptsConventionalGuard) {
  EXPECT_TRUE(LintOne("src/sim/x.h",
                      "#ifndef SRC_SIM_X_H_\n"
                      "#define SRC_SIM_X_H_\n"
                      "#endif  // SRC_SIM_X_H_\n")
                  .empty());
}

TEST(IncludeGuard, FlagsWrongAndMissingGuards) {
  EXPECT_TRUE(HasCheck(LintOne("src/sim/x.h",
                               "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n"),
                       "apiary-include-guard"));
  EXPECT_TRUE(HasCheck(LintOne("src/sim/x.h", "int x;\n"), "apiary-include-guard"));
  EXPECT_TRUE(HasCheck(LintOne("src/sim/x.h", "#pragma once\nint x;\n"),
                       "apiary-include-guard"));
}

TEST(IncludeGuard, IgnoresNonHeaders) {
  EXPECT_TRUE(LintOne("src/sim/x.cc", "int x;\n").empty());
}

// ---------------------------------------------------------------------------
// apiary-debug-name.
// ---------------------------------------------------------------------------

TEST(DebugName, RequiresOverrideInClockedSubclass) {
  const std::string good =
      "class Ticker : public Clocked {\n"
      " public:\n"
      "  void Tick(Cycle now) override;\n"
      "  std::string DebugName() const override { return \"ticker\"; }\n"
      "};\n";
  const std::string bad =
      "class Ticker : public Clocked {\n"
      " public:\n"
      "  void Tick(Cycle now) override;\n"
      "};\n";
  EXPECT_TRUE(LintOne("src/sim/t.cc", good).empty());
  const auto findings = LintOne("src/sim/t.cc", bad);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "apiary-debug-name");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(DebugName, IgnoresOtherBasesAndForwardDecls) {
  EXPECT_TRUE(LintOne("src/sim/t.cc",
                      "class Clocked;\n"
                      "class Foo : public Bar {\n"
                      "};\n")
                  .empty());
}

TEST(DebugName, HandlesMultipleClassesPerFile) {
  const auto findings = LintOne("src/sim/t.cc",
                                "class A : public Clocked {\n"
                                "  std::string DebugName() const override;\n"
                                "};\n"
                                "class B : public Clocked {\n"
                                "};\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
}

// ---------------------------------------------------------------------------
// apiary-nodiscard.
// ---------------------------------------------------------------------------

TEST(Nodiscard, RequiresMarkerOnMintingApis) {
  EXPECT_TRUE(HasCheck(LintOne("src/core/capability.h", "CapRef Install(int cap);\n"),
                       "apiary-nodiscard"));
  EXPECT_FALSE(HasCheck(LintOne("src/core/capability.h",
                                "[[nodiscard]] CapRef Install(int cap);\n"),
                        "apiary-nodiscard"));
  EXPECT_FALSE(HasCheck(LintOne("src/core/capability.h",
                                "[[nodiscard]]\n"
                                "CapRef Install(int cap);\n"),
                        "apiary-nodiscard"));
}

TEST(Nodiscard, CoversOptionalReturnTypes) {
  EXPECT_TRUE(HasCheck(LintOne("src/core/kernel.h",
                               "std::optional<CapRef> GrantMemory(int tile);\n"),
                       "apiary-nodiscard"));
  EXPECT_TRUE(HasCheck(LintOne("src/mem/segment_allocator.h",
                               "std::optional<Segment> Allocate(int bytes);\n"),
                       "apiary-nodiscard"));
}

TEST(Nodiscard, CoversQuiescenceHooks) {
  // A Cycle-returning hook in the Clocked interface without [[nodiscard]]
  // means a computed wake-up cycle can be silently dropped.
  EXPECT_TRUE(HasCheck(LintOne("src/sim/clocked.h",
                               "virtual Cycle NextActivity(Cycle now) const;\n"),
                       "apiary-nodiscard"));
  EXPECT_FALSE(HasCheck(
      LintOne("src/sim/clocked.h",
              "[[nodiscard]] virtual Cycle NextActivity(Cycle now) const;\n"),
      "apiary-nodiscard"));
  // Cycle as a parameter (Tick, OnFastForward) is not a minting declaration.
  EXPECT_FALSE(HasCheck(LintOne("src/sim/clocked.h",
                                "virtual void OnFastForward(Cycle resume_cycle);\n"),
                        "apiary-nodiscard"));
}

TEST(Nodiscard, IgnoresParametersAndOtherFiles) {
  // CapRef as a parameter type is not a minting declaration.
  EXPECT_FALSE(HasCheck(LintOne("src/core/capability.h", "bool Revoke(CapRef ref);\n"),
                        "apiary-nodiscard"));
  // The policy only covers the declared minting headers.
  EXPECT_FALSE(HasCheck(LintOne("src/core/monitor.h", "CapRef Install(int cap);\n"),
                        "apiary-nodiscard"));
}

// ---------------------------------------------------------------------------
// apiary-hot-path.
// ---------------------------------------------------------------------------

TEST(HotPath, FlagsPacketAllocationAndPayloadVectors) {
  const auto findings = LintOne("src/noc/x.cc",
                                "void f() {\n"
                                "  auto p = std::make_shared<NocPacket>();\n"
                                "  NocPacket* q = new NocPacket();\n"
                                "  std::vector<uint8_t> copy(p->payload);\n"
                                "}\n");
  ASSERT_EQ(findings.size(), 3u);
  for (const auto& finding : findings) {
    EXPECT_EQ(finding.check, "apiary-hot-path");
  }
  EXPECT_NE(findings[0].message.find("PacketPool::Acquire"), std::string::npos);
}

TEST(HotPath, DoesNotFlagPooledOrPayloadBufCode) {
  EXPECT_TRUE(LintOne("src/noc/x.cc",
                      "PacketRef p = PacketPool::Default().Acquire();\n"
                      "PayloadBuf staging;\n"
                      "std::vector<uint8_t> unrelated;\n"
                      "NocPacket& packet = *p;\n")
                  .empty());
}

TEST(HotPath, ExemptsPoolAndSerializationLayer) {
  EXPECT_TRUE(LintOne("src/noc/packet_pool.cc", "NocPacket* p = new NocPacket();\n")
                  .empty());
  EXPECT_TRUE(LintOne("src/core/message.cc",
                      "std::vector<uint8_t> wire(msg.payload.size());\n")
                  .empty());
}

TEST(HotPath, TestsAndBenchAreUnrestricted) {
  EXPECT_TRUE(LintOne("tests/x.cc", "PacketRef p(new NocPacket());\n").empty());
  EXPECT_TRUE(LintOne("bench/x.cc", "auto p = std::make_shared<NocPacket>();\n").empty());
}

TEST(HotPath, NolintSuppresses) {
  EXPECT_FALSE(HasCheck(
      LintOne("src/noc/x.cc",
              "NocPacket* p = new NocPacket();  // NOLINT(apiary-hot-path)\n"),
      "apiary-hot-path"));
}

// ---------------------------------------------------------------------------
// apiary-opcode-coverage.
// ---------------------------------------------------------------------------

std::vector<SourceFile> OpcodeCorpus(bool with_handler, bool with_test) {
  std::vector<SourceFile> files;
  files.push_back(LexSource("src/services/opcodes.h",
                            "inline constexpr uint16_t kOpPing = 0x0601;\n"
                            "inline constexpr uint16_t kOpAppBase = 0x1000;\n"));
  if (with_handler) {
    files.push_back(LexSource("src/services/ping.cc", "case kOpPing: break;\n"));
  }
  files.push_back(LexSource("tests/ping_test.cc",
                            with_test ? "int x = kOpPing;\n" : "int x = 0;\n"));
  return files;
}

std::vector<Finding> OpcodeFindings(const std::vector<SourceFile>& files) {
  std::vector<Finding> out;
  for (auto& finding : RunAllChecks(files, DefaultConfig())) {
    if (finding.check == "apiary-opcode-coverage") {
      out.push_back(finding);
    }
  }
  return out;
}

TEST(OpcodeCoverage, CleanWhenHandledAndTested) {
  EXPECT_TRUE(OpcodeFindings(OpcodeCorpus(true, true)).empty());
}

TEST(OpcodeCoverage, FlagsMissingHandler) {
  const auto findings = OpcodeFindings(OpcodeCorpus(false, true));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "apiary-opcode-coverage");
  EXPECT_NE(findings[0].message.find("no dispatching handler"), std::string::npos);
  EXPECT_EQ(findings[0].file, "src/services/opcodes.h");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(OpcodeCoverage, FlagsMissingTest) {
  const auto findings = OpcodeFindings(OpcodeCorpus(true, false));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("tests/"), std::string::npos);
}

TEST(OpcodeCoverage, TestRequirementOnlyWhenCorpusHasTests) {
  std::vector<SourceFile> files;
  files.push_back(LexSource("src/services/opcodes.h",
                            "inline constexpr uint16_t kOpPing = 0x0601;\n"));
  files.push_back(LexSource("src/services/ping.cc", "case kOpPing: break;\n"));
  EXPECT_TRUE(OpcodeFindings(files).empty());
}

TEST(OpcodeCoverage, NolintOnDefinitionSuppresses) {
  std::vector<SourceFile> files;
  files.push_back(LexSource(
      "src/services/opcodes.h",
      "inline constexpr uint16_t kOpFuture = 0x07ff;  // NOLINT(apiary-opcode-coverage)\n"));
  files.push_back(LexSource("tests/t.cc", "int x = 0;\n"));
  EXPECT_TRUE(OpcodeFindings(files).empty());
}

// ---------------------------------------------------------------------------
// End-to-end fixture runs of the binary.
// ---------------------------------------------------------------------------

int RunLintBinary(const std::string& fixture, const std::vector<std::string>& paths,
                  std::string* output) {
  std::string cmd = std::string(APIARY_LINT_BIN) + " --repo-root " +
                    std::string(APIARY_LINT_TESTDATA) + "/" + fixture;
  for (const auto& path : paths) {
    cmd += " " + path;
  }
  cmd += " 2>&1";
  output->clear();
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return -1;
  }
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    *output += buffer;
  }
  const int status = pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

struct FixtureCase {
  std::string fixture;
  std::vector<std::string> paths;
  int expected_exit;
  std::string expected_check;  // Must appear in output when exit != 0.
};

TEST(Fixtures, GoodTreesAreCleanBadTreesFail) {
  const std::vector<FixtureCase> cases = {
      {"determinism/good", {"src"}, 0, ""},
      {"determinism/bad", {"src"}, 1, "apiary-determinism"},
      {"determinism/suppressed", {"src"}, 0, ""},
      {"layering/good", {"src"}, 0, ""},
      {"layering/bad", {"src"}, 1, "apiary-layering"},
      {"opcode/good", {"src", "tests"}, 0, ""},
      {"opcode/bad", {"src", "tests"}, 1, "apiary-opcode-coverage"},
      {"guard/good", {"src"}, 0, ""},
      {"guard/bad", {"src"}, 1, "apiary-include-guard"},
      {"debugname/good", {"src"}, 0, ""},
      {"debugname/bad", {"src"}, 1, "apiary-debug-name"},
      {"nodiscard/good", {"src"}, 0, ""},
      {"nodiscard/bad", {"src"}, 1, "apiary-nodiscard"},
      {"hotpath/good", {"src"}, 0, ""},
      {"hotpath/bad", {"src"}, 1, "apiary-hot-path"},
      {"hotpath/suppressed", {"src"}, 0, ""},
  };
  for (const auto& c : cases) {
    std::string output;
    const int exit_code = RunLintBinary(c.fixture, c.paths, &output);
    EXPECT_EQ(exit_code, c.expected_exit) << c.fixture << "\n" << output;
    if (!c.expected_check.empty()) {
      EXPECT_NE(output.find(c.expected_check), std::string::npos)
          << c.fixture << "\n" << output;
    }
  }
}

TEST(Fixtures, OpcodeBadNamesBothGaps) {
  std::string output;
  const int exit_code = RunLintBinary("opcode/bad", {"src", "tests"}, &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_NE(output.find("kOpOrphan has no dispatching handler"), std::string::npos)
      << output;
  EXPECT_NE(output.find("kOpOrphan is never referenced under tests/"), std::string::npos)
      << output;
}

TEST(Fixtures, MissingPathIsAUsageError) {
  std::string output;
  EXPECT_EQ(RunLintBinary("determinism/good", {"no_such_dir"}, &output), 2) << output;
}

}  // namespace
}  // namespace lint
}  // namespace apiary
