#include "src/accel/video_encoder.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/core/message.h"

namespace apiary {
namespace {

// JPEG Annex K luminance quantization table.
constexpr int kBaseQuant[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

// Zigzag scan order for an 8x8 block.
constexpr int kZigzag[64] = {0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
                             12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
                             35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
                             58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

void ScaledQuantTable(uint32_t quality, int out[64]) {
  // Standard JPEG quality scaling.
  if (quality < 1) {
    quality = 1;
  }
  if (quality > 100) {
    quality = 100;
  }
  const int scale = quality < 50 ? 5000 / static_cast<int>(quality)
                                 : 200 - 2 * static_cast<int>(quality);
  for (int i = 0; i < 64; ++i) {
    int q = (kBaseQuant[i] * scale + 50) / 100;
    if (q < 1) {
      q = 1;
    }
    if (q > 255) {
      q = 255;
    }
    out[i] = q;
  }
}

void ForwardDct8x8(const double in[64], double out[64]) {
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      double sum = 0;
      for (int x = 0; x < 8; ++x) {
        for (int y = 0; y < 8; ++y) {
          sum += in[x * 8 + y] * std::cos((2 * x + 1) * u * M_PI / 16.0) *
                 std::cos((2 * y + 1) * v * M_PI / 16.0);
        }
      }
      const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
      const double cv = v == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
      out[u * 8 + v] = 0.25 * cu * cv * sum;
    }
  }
}

void InverseDct8x8(const double in[64], double out[64]) {
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      double sum = 0;
      for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
          const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
          const double cv = v == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
          sum += cu * cv * in[u * 8 + v] * std::cos((2 * x + 1) * u * M_PI / 16.0) *
                 std::cos((2 * y + 1) * v * M_PI / 16.0);
        }
      }
      out[x * 8 + y] = 0.25 * sum;
    }
  }
}

void PutI16(std::vector<uint8_t>& buf, int16_t v) {
  const uint16_t u = static_cast<uint16_t>(v);
  buf.push_back(static_cast<uint8_t>(u));
  buf.push_back(static_cast<uint8_t>(u >> 8));
}

int16_t GetI16(const std::vector<uint8_t>& buf, size_t off) {
  return static_cast<int16_t>(static_cast<uint16_t>(buf[off]) |
                              (static_cast<uint16_t>(buf[off + 1]) << 8));
}

constexpr uint8_t kEobRun = 0xff;

}  // namespace

std::vector<uint8_t> EncodeFrame(const uint8_t* pixels, uint32_t width, uint32_t height,
                                 uint32_t quality) {
  std::vector<uint8_t> out;
  out.push_back('A');
  out.push_back('V');
  PutU32(out, width);
  PutU32(out, height);
  PutU32(out, quality);

  int quant[64];
  ScaledQuantTable(quality, quant);

  const uint32_t blocks_x = (width + 7) / 8;
  const uint32_t blocks_y = (height + 7) / 8;
  for (uint32_t by = 0; by < blocks_y; ++by) {
    for (uint32_t bx = 0; bx < blocks_x; ++bx) {
      // Gather the block (edge blocks replicate the last row/column).
      double block[64];
      for (int x = 0; x < 8; ++x) {
        for (int y = 0; y < 8; ++y) {
          uint32_t px = bx * 8 + static_cast<uint32_t>(y);
          uint32_t py = by * 8 + static_cast<uint32_t>(x);
          if (px >= width) {
            px = width - 1;
          }
          if (py >= height) {
            py = height - 1;
          }
          block[x * 8 + y] = static_cast<double>(pixels[py * width + px]) - 128.0;
        }
      }
      double coeffs[64];
      ForwardDct8x8(block, coeffs);
      int16_t quantized[64];
      for (int i = 0; i < 64; ++i) {
        quantized[i] = static_cast<int16_t>(std::lround(coeffs[i] / quant[i]));
      }
      // Zigzag + RLE: (zero-run, value) pairs, EOB when the rest is zero.
      int run = 0;
      for (int i = 0; i < 64; ++i) {
        const int16_t v = quantized[kZigzag[i]];
        if (v == 0) {
          ++run;
          continue;
        }
        while (run > 254) {
          out.push_back(254);
          PutI16(out, 0);
          run -= 254;
        }
        out.push_back(static_cast<uint8_t>(run));
        PutI16(out, v);
        run = 0;
      }
      out.push_back(kEobRun);
      PutI16(out, 0);
    }
  }
  return out;
}

std::vector<uint8_t> DecodeFrame(const std::vector<uint8_t>& bitstream, uint32_t* width_out,
                                 uint32_t* height_out) {
  if (bitstream.size() < 14 || bitstream[0] != 'A' || bitstream[1] != 'V') {
    return {};
  }
  const uint32_t width = GetU32(bitstream, 2);
  const uint32_t height = GetU32(bitstream, 6);
  const uint32_t quality = GetU32(bitstream, 10);
  if (width == 0 || height == 0) {
    return {};
  }
  if (width_out != nullptr) {
    *width_out = width;
  }
  if (height_out != nullptr) {
    *height_out = height;
  }
  int quant[64];
  ScaledQuantTable(quality, quant);

  std::vector<uint8_t> pixels(static_cast<size_t>(width) * height, 0);
  const uint32_t blocks_x = (width + 7) / 8;
  const uint32_t blocks_y = (height + 7) / 8;
  size_t off = 14;
  for (uint32_t by = 0; by < blocks_y; ++by) {
    for (uint32_t bx = 0; bx < blocks_x; ++bx) {
      int16_t quantized[64] = {0};
      int i = 0;
      while (off + 3 <= bitstream.size()) {
        const uint8_t run = bitstream[off];
        const int16_t value = GetI16(bitstream, off + 1);
        off += 3;
        if (run == kEobRun) {
          break;
        }
        i += run;
        if (value != 0) {
          if (i >= 64) {
            return {};
          }
          quantized[kZigzag[i]] = value;
          ++i;
        }
      }
      double coeffs[64];
      for (int k = 0; k < 64; ++k) {
        coeffs[k] = static_cast<double>(quantized[k]) * quant[k];
      }
      double block[64];
      InverseDct8x8(coeffs, block);
      for (int x = 0; x < 8; ++x) {
        for (int y = 0; y < 8; ++y) {
          const uint32_t px = bx * 8 + static_cast<uint32_t>(y);
          const uint32_t py = by * 8 + static_cast<uint32_t>(x);
          if (px >= width || py >= height) {
            continue;
          }
          double v = block[x * 8 + y] + 128.0;
          if (v < 0) {
            v = 0;
          }
          if (v > 255) {
            v = 255;
          }
          pixels[py * width + px] = static_cast<uint8_t>(std::lround(v));
        }
      }
    }
  }
  return pixels;
}

void VideoEncoderAccelerator::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind != MsgKind::kRequest || msg.opcode != kOpEncodeFrame) {
    if (msg.kind == MsgKind::kRequest) {
      Message err;
      err.opcode = msg.opcode;
      err.status = MsgStatus::kBadRequest;
      api.Reply(msg, std::move(err));
    }
    return;
  }
  if (msg.payload.size() < 8) {
    Message err;
    err.opcode = msg.opcode;
    err.status = MsgStatus::kBadRequest;
    api.Reply(msg, std::move(err));
    return;
  }
  const uint32_t width = GetU32(msg.payload, 0);
  const uint32_t height = GetU32(msg.payload, 4);
  if (width == 0 || height == 0 ||
      msg.payload.size() < 8 + static_cast<size_t>(width) * height) {
    Message err;
    err.opcode = msg.opcode;
    err.status = MsgStatus::kBadRequest;
    api.Reply(msg, std::move(err));
    return;
  }
  Job job;
  job.request = msg;
  job.encoded = EncodeFrame(msg.payload.data() + 8, width, height, quality_);
  // Occupy the engine: back-to-back frames queue behind each other.
  const uint64_t blocks =
      static_cast<uint64_t>((width + 7) / 8) * ((height + 7) / 8);
  const Cycle start = std::max(engine_free_at_, api.now());
  engine_free_at_ = start + blocks * cycles_per_block_;
  job.done_at = engine_free_at_;
  jobs_.push_back(std::move(job));
  counters_.Add("encoder.frames_in");
}

void VideoEncoderAccelerator::Tick(TileApi& api) {
  while (!jobs_.empty() && jobs_.front().done_at <= api.now()) {
    Job& job = jobs_.front();
    SendResult result;
    if (next_stage_ != kInvalidCapRef) {
      // Pipeline mode: hand the bitstream to the next stage (Section 2's
      // encode -> compress composition).
      Message fwd;
      fwd.opcode = next_opcode_;
      fwd.payload = job.encoded;
      result = api.Send(std::move(fwd), next_stage_);
    } else {
      Message reply;
      reply.opcode = kOpEncodeFrame;
      reply.payload = job.encoded;
      result = api.Reply(job.request, std::move(reply));
    }
    if (result.status == MsgStatus::kBackpressure ||
        result.status == MsgStatus::kRateLimited) {
      break;  // Retry next cycle.
    }
    if (!result.ok()) {
      counters_.Add("encoder.output_failures");
    }
    ++frames_encoded_;
    counters_.Add("encoder.frames_out");
    jobs_.pop_front();
  }
}

}  // namespace apiary
