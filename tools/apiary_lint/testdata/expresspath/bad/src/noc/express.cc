// Bad: the corridor planner grows its reservation structures during launch
// and materialization — hidden allocation on the executed-cycle path.
#include <cstdint>
#include <memory>
#include <vector>

namespace apiary {

struct Corridor {
  uint32_t hops = 0;
};

class ExpressLane {
 public:
  void Configure(uint32_t num_tiles);
  bool TryLaunch(uint32_t tile);
  void Materialize(uint32_t idx);

 private:
  std::vector<uint16_t> path_owner_;
  std::vector<Corridor*> scratch_;
};

void ExpressLane::Configure(uint32_t num_tiles) {
  path_owner_.assign(num_tiles, 0);
}

bool ExpressLane::TryLaunch(uint32_t tile) {
  path_owner_.resize(tile + 1);
  scratch_.reserve(scratch_.size() + 1);
  auto spare = std::make_unique<Corridor>();
  Corridor* raw = new Corridor();
  (void)spare;
  (void)raw;
  return true;
}

void ExpressLane::Materialize(uint32_t idx) {
  path_owner_.assign(idx, 0);
}

}  // namespace apiary
