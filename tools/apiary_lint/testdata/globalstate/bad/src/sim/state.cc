// Bad: process-global mutable state a sharded simulation would race on.
namespace apiary {

int g_counter = 0;

int& Registry() {
  static int registry = 0;
  return registry;
}

// APIARY-SHARED(process)
int g_malformed = 0;

}  // namespace apiary
