#include "tools/apiary_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

namespace apiary {
namespace lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool MatchesAnySuffix(const std::string& path, const std::vector<std::string>& suffixes) {
  for (const auto& suffix : suffixes) {
    if (EndsWith(path, suffix)) {
      return true;
    }
  }
  return false;
}

std::string Trimmed(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

// Finds occurrences of `token` in `line` with an identifier boundary on
// both sides ('::'-qualified tokens also require the leading char not be
// ':'). Returns byte offsets of each occurrence.
std::vector<size_t> FindIdentifier(const std::string& line, const std::string& token) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool head_ok =
        pos == 0 || (!IsIdentChar(line[pos - 1]) && line[pos - 1] != ':');
    const size_t after = pos + token.size();
    const bool tail_ok = after >= line.size() || !IsIdentChar(line[after]);
    if (head_ok && tail_ok) {
      hits.push_back(pos);
    }
    pos += token.size();
  }
  return hits;
}

// True when line contains a *call* of `name`: identifier boundary before
// (and not a member access or qualified name), '(' after optional spaces.
bool FindCall(const std::string& line, const std::string& name) {
  size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    const bool head_ok = pos == 0 || (!IsIdentChar(line[pos - 1]) && line[pos - 1] != ':' &&
                                      line[pos - 1] != '.' && line[pos - 1] != '>');
    size_t after = pos + name.size();
    while (after < line.size() && (line[after] == ' ' || line[after] == '\t')) {
      ++after;
    }
    if (head_ok && after < line.size() && line[after] == '(') {
      return true;
    }
    pos += name.size();
  }
  return false;
}

// Parses `#include "target"` from a raw line; empty string when absent.
std::string ParseQuotedInclude(const std::string& raw) {
  const std::string trimmed = Trimmed(raw);
  if (trimmed.empty() || trimmed[0] != '#') {
    return "";
  }
  size_t pos = trimmed.find_first_not_of(" \t", 1);
  if (pos == std::string::npos || trimmed.compare(pos, 7, "include") != 0) {
    return "";
  }
  size_t open = trimmed.find('"', pos + 7);
  if (open == std::string::npos) {
    return "";
  }
  size_t close = trimmed.find('"', open + 1);
  if (close == std::string::npos) {
    return "";
  }
  return trimmed.substr(open + 1, close - open - 1);
}

// Top-level directory under src/ for a repo-relative path, or "" if the
// path is not of the form src/<dir>/...
std::string SrcLayer(const std::string& path) {
  if (!StartsWith(path, "src/")) {
    return "";
  }
  size_t slash = path.find('/', 4);
  if (slash == std::string::npos) {
    return "";
  }
  return path.substr(4, slash - 4);
}

// Records the check names listed in "(...)" after a NOLINT marker at
// `after` in `line`; a bare marker records "*".
std::vector<std::string> ParseNolintList(const std::string& line, size_t after) {
  std::vector<std::string> checks;
  if (after < line.size() && line[after] == '(') {
    size_t close = line.find(')', after);
    if (close != std::string::npos) {
      std::string inside = line.substr(after + 1, close - after - 1);
      std::stringstream ss(inside);
      std::string item;
      while (std::getline(ss, item, ',')) {
        item = Trimmed(item);
        if (!item.empty()) {
          checks.push_back(item);
        }
      }
      return checks;
    }
  }
  checks.push_back("*");
  return checks;
}

// Parses the shared "(<tag>): <reason>" annotation grammar starting at
// `pos` (just past the marker). Well-formed means: non-empty parenthesized
// tag, a ':' after the close paren, and a non-empty reason after the colon.
SharedAnnotation ParseAnnotationGrammar(const std::string& raw, size_t pos) {
  if (pos >= raw.size() || raw[pos] != '(') {
    return SharedAnnotation::kMalformed;
  }
  size_t close = raw.find(')', pos);
  if (close == std::string::npos || Trimmed(raw.substr(pos + 1, close - pos - 1)).empty()) {
    return SharedAnnotation::kMalformed;
  }
  pos = close + 1;
  while (pos < raw.size() && (raw[pos] == ' ' || raw[pos] == '\t')) {
    ++pos;
  }
  if (pos >= raw.size() || raw[pos] != ':') {
    return SharedAnnotation::kMalformed;
  }
  if (Trimmed(raw.substr(pos + 1)).empty()) {
    return SharedAnnotation::kMalformed;
  }
  return SharedAnnotation::kOk;
}

SharedAnnotation ParseSharedAnnotation(const std::string& raw, size_t marker_pos) {
  return ParseAnnotationGrammar(raw, marker_pos + 13);  // strlen("APIARY-SHARED")
}

// "APIARY-WAKE(<source>): <reason>" shares the grammar; only the marker
// (and what the tag names — a waker, not a sharing domain) differs.
SharedAnnotation ParseWakeAnnotation(const std::string& raw, size_t marker_pos) {
  return ParseAnnotationGrammar(raw, marker_pos + 11);  // strlen("APIARY-WAKE")
}

std::string ExpectedGuard(const std::string& path) {
  std::string guard;
  guard.reserve(path.size() + 1);
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    } else {
      guard.push_back('_');
    }
  }
  guard.push_back('_');
  return guard;
}

}  // namespace

std::string Finding::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << check << "] " << message;
  return os.str();
}

bool SourceFile::IsSuppressed(int line, const std::string& check) const {
  if (line < 1 || line > static_cast<int>(nolint.size())) {
    return false;
  }
  for (const auto& entry : nolint[line - 1]) {
    if (entry == "*" || entry == check) {
      return true;
    }
  }
  return false;
}

bool SourceFile::IsSharedAnnotated(int line) const {
  // The annotation blesses the declaration on its own line (trailing
  // comment) or on the line directly below it (comment-above style).
  for (int candidate : {line, line - 1}) {
    if (candidate >= 1 && candidate <= static_cast<int>(shared.size()) &&
        shared[candidate - 1] == SharedAnnotation::kOk) {
      return true;
    }
  }
  return false;
}

SourceFile LexSource(std::string path, const std::string& content) {
  SourceFile file;
  file.path = std::move(path);

  // Split into lines (keeping structure for both raw and code views).
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    lines.push_back(current);
  }
  file.raw_lines = lines;
  file.nolint.assign(lines.size(), {});
  file.shared.assign(lines.size(), SharedAnnotation::kNone);

  // Record APIARY-SHARED annotations from the raw text (they live inside
  // comments, which the code view erases).
  for (size_t i = 0; i < lines.size(); ++i) {
    size_t pos = lines[i].find("APIARY-SHARED");
    if (pos != std::string::npos) {
      file.shared[i] = ParseSharedAnnotation(lines[i], pos);
    }
  }

  // Record NOLINT markers from the raw text (they live inside comments,
  // which the code view erases). NOLINTNEXTLINE is matched first since
  // NOLINT is a prefix of it.
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& raw = lines[i];
    size_t pos = 0;
    while ((pos = raw.find("NOLINT", pos)) != std::string::npos) {
      if (raw.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
        auto checks = ParseNolintList(raw, pos + 14);
        if (i + 1 < file.nolint.size()) {
          auto& dst = file.nolint[i + 1];
          dst.insert(dst.end(), checks.begin(), checks.end());
        }
        pos += 14;
      } else {
        auto checks = ParseNolintList(raw, pos + 6);
        auto& dst = file.nolint[i];
        dst.insert(dst.end(), checks.begin(), checks.end());
        pos += 6;
      }
    }
  }

  // Build the code view: comments and string/char literals blanked.
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // Delimiter for raw string literals: )<delim>"
  file.code_lines.reserve(lines.size());
  for (const std::string& raw : lines) {
    std::string code;
    code.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      const char c = raw[i];
      const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            code.append(raw.size() - i, ' ');
            i = raw.size();
            break;
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            code.append(2, ' ');
            ++i;
          } else if (c == '"' && i >= 1 && raw[i - 1] == 'R') {
            // Raw string literal R"delim( ... )delim".
            size_t open = raw.find('(', i + 1);
            raw_delim = ")" + raw.substr(i + 1, open == std::string::npos
                                                    ? std::string::npos
                                                    : open - i - 1) + "\"";
            state = State::kRawString;
            code.push_back(' ');
          } else if (c == '"') {
            state = State::kString;
            code.push_back(' ');
          } else if (c == '\'' && !(i >= 1 && IsIdentChar(raw[i - 1]))) {
            // Skip digit separators like 1'000'000 (preceded by idents).
            state = State::kChar;
            code.push_back(' ');
          } else {
            code.push_back(c);
          }
          break;
        case State::kLineComment:
          code.push_back(' ');
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            code.append(2, ' ');
            ++i;
          } else {
            code.push_back(' ');
          }
          break;
        case State::kString:
          if (c == '\\') {
            code.append(i + 1 < raw.size() ? 2 : 1, ' ');
            ++i;
          } else if (c == '"') {
            state = State::kCode;
            code.push_back(' ');
          } else {
            code.push_back(' ');
          }
          break;
        case State::kChar:
          if (c == '\\') {
            code.append(i + 1 < raw.size() ? 2 : 1, ' ');
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
            code.push_back(' ');
          } else {
            code.push_back(' ');
          }
          break;
        case State::kRawString:
          if (raw.compare(i, raw_delim.size(), raw_delim) == 0) {
            code.append(raw_delim.size(), ' ');
            i += raw_delim.size() - 1;
            state = State::kCode;
          } else {
            code.push_back(' ');
          }
          break;
      }
    }
    // Line comments never span lines.
    if (state == State::kLineComment || state == State::kString || state == State::kChar) {
      state = State::kCode;
    }
    file.code_lines.push_back(std::move(code));
  }
  return file;
}

bool LoadSource(const std::string& absolute_path, const std::string& repo_relative_path,
                SourceFile* out) {
  std::ifstream in(absolute_path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = LexSource(repo_relative_path, buffer.str());
  return true;
}

LintConfig DefaultConfig() {
  LintConfig config;

  // Determinism: every run must replay byte-identically from its seed
  // (the chaos campaigns in bench/a9 and the determinism tests rely on it).
  config.banned_identifiers = {"std::random_device", "std::mt19937", "std::mt19937_64"};
  config.banned_calls = {"rand", "srand", "time", "clock", "getrandom"};
  config.banned_suffixes = {"_clock::now"};
  config.banned_containers = {"std::unordered_map", "std::unordered_set",
                              "std::unordered_multimap", "std::unordered_multiset"};
  config.determinism_exempt_prefixes = {"src/stats/", "src/sim/random."};
  config.randomness_home = "src/sim/random.h";

  // Layering: sim is the root; accel (untrusted logic) may reach only the
  // Monitor-facing surface (core) and the simulator substrate — never mem
  // or noc directly, mirroring the paper's Monitor-interposition guarantee.
  // baseline must not include services (it models the no-OS world).
  config.layering = {
      {"sim", {"sim"}},
      {"stats", {"stats", "sim"}},
      {"mem", {"mem", "sim", "stats"}},
      {"noc", {"noc", "sim", "stats"}},
      {"fpga", {"fpga", "mem", "noc", "sim", "stats"}},
      {"core", {"core", "fpga", "mem", "noc", "sim", "stats"}},
      {"services", {"services", "core", "fpga", "mem", "noc", "sim", "stats"}},
      // Orchestration sits above services (it drives the supervisor and load
      // balancer) but below applications: accel/baseline must not see it.
      {"orch", {"orch", "core", "fpga", "services", "sim", "stats"}},
      {"fault", {"fault", "core", "fpga", "mem", "noc", "sim", "stats"}},
      // Tenant policy sits above orchestration (it owns quotas that the
      // scheduler, services and NoC enforce) but must never reach into
      // accel: tenants are principals, not accelerator logic.
      {"tenant",
       {"tenant", "orch", "services", "fault", "core", "fpga", "mem", "noc", "sim", "stats"}},
      {"accel", {"accel", "core", "sim", "stats"}},
      {"baseline", {"baseline", "fpga", "mem", "noc", "sim", "stats"}},
      {"workload", {"workload", "accel", "core", "services", "fpga", "sim", "stats"}},
  };
  // The opcode ABI header is the one services/ surface accelerators may
  // see: it is pure wire constants (Section 4.3's stable interface), the
  // moral equivalent of a syscall-number header.
  config.layering_exempt_includes = {"src/services/opcodes.h"};

  config.opcode_def_files = {"src/services/opcodes.h", "src/accel/accel_opcodes.h"};

  // Hot path: only the pool/serialization layer may allocate packets or
  // materialize contiguous wire vectors (the legacy-alloc ablation lives
  // there too).
  // The external Ethernet fabric (frames to/from simulated client hosts) is
  // a different wire domain from the NoC: its frame buffers are vectors by
  // design and never ride the executed-cycle packet path.
  config.hot_path_exempt_prefixes = {"src/noc/packet_pool.", "src/core/message.",
                                     "src/sim/payload_buf.", "src/fpga/ethernet.",
                                     "src/services/transport."};
  // The corridor planner/reservation layer: launch and materialize run on
  // the executed-cycle path, so allocation is confined to Configure().
  config.express_hot_path_prefixes = {"src/noc/express"};

  // src/sim/clocked.h rides along for quiescence hygiene: an ignored
  // NextActivity() result means a computed wake-up cycle was dropped on the
  // floor, the same leak shape as an orphaned capability.
  config.nodiscard_files = {"src/core/capability.h", "src/core/kernel.h",
                            "src/mem/segment_allocator.h", "src/sim/clocked.h"};
  config.nodiscard_types = {"CapRef", "std::optional<CapRef>", "std::optional<Segment>",
                            "Cycle"};

  // Global state: no path is exempt — the APIARY-SHARED annotation is the
  // only sanctioned way to keep process-global mutable state alive, so
  // every survivor carries its own audit trail.
  config.global_state_exempt_prefixes = {};

  // Domain confinement: these layers hold the per-domain simulation state
  // that ROADMAP item 1 shards across worker threads. A raw pointer or
  // reference member crossing between them is an edge a sharded run would
  // race on unless it rides one of the registered channel types below.
  config.confined_layers = {"sim", "noc", "core"};
  // Sanctioned crossing points: the simulator substrate every block is
  // built on, the per-domain context, the NI injection surface, intrusive
  // packet refs, and the pool/arena handles SimContext hands out.
  config.confinement_channel_types = {"Simulator", "SimContext", "Clocked",
                                      "NetworkInterface", "PacketRef", "PacketPool",
                                      "PayloadArena", "Rng"};

  // Sync discipline: every synchronization primitive in simulator code
  // lives in the one reviewed home, src/sim/parallel/. Ad-hoc mutexes and
  // atomics elsewhere are how "thread-safe enough" state sneaks back in.
  config.banned_sync_identifiers = {
      "std::mutex", "std::recursive_mutex", "std::timed_mutex",
      "std::recursive_timed_mutex", "std::shared_mutex", "std::shared_timed_mutex",
      "std::atomic", "std::atomic_flag", "std::atomic_bool", "std::atomic_int",
      "std::atomic_uint", "std::atomic_size_t", "std::atomic_uint64_t",
      "std::atomic_thread_fence", "std::atomic_signal_fence", "std::memory_order",
      "std::condition_variable", "std::condition_variable_any",
      "std::thread", "std::jthread", "std::async", "std::future", "std::promise",
      "std::lock_guard", "std::unique_lock", "std::scoped_lock", "std::shared_lock",
      "std::call_once", "std::once_flag", "std::counting_semaphore",
      "std::binary_semaphore", "std::latch", "std::barrier", "thread_local"};
  config.sync_allowed_prefixes = {"src/sim/parallel/"};

  // Wake path: what counts as a visible wake integration. Firing or handing
  // out a wake handle proves input delivery ends quiescence; overriding
  // SchedulingPolicy proves the block opted out of parking entirely
  // (kEveryCycle / kBoundaryPoll are re-polled, never parked).
  config.wake_evidence = {"RequestWake(", "RequestPolicyRefresh(", "WakeHint", ".Wake(",
                          "SchedulingPolicy("};
  return config;
}

void CheckDeterminism(const SourceFile& file, const LintConfig& config,
                      std::vector<Finding>* findings) {
  for (const auto& prefix : config.determinism_exempt_prefixes) {
    if (StartsWith(file.path, prefix)) {
      return;
    }
  }
  const bool in_sim_state = StartsWith(file.path, "src/");
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    for (const auto& ident : config.banned_identifiers) {
      if (!FindIdentifier(line, ident).empty()) {
        findings->push_back({file.path, lineno, "apiary-determinism",
                             ident + " breaks seeded replay; draw randomness from " +
                                 config.randomness_home});
      }
    }
    for (const auto& call : config.banned_calls) {
      if (FindCall(line, call)) {
        findings->push_back({file.path, lineno, "apiary-determinism",
                             call + "() is nondeterministic across runs; use the seeded " +
                                 "Rng (" + config.randomness_home + ") or simulator time"});
      }
    }
    for (const auto& suffix : config.banned_suffixes) {
      size_t pos = line.find(suffix);
      if (pos != std::string::npos) {
        const size_t after = pos + suffix.size();
        if (after >= line.size() || !IsIdentChar(line[after])) {
          findings->push_back({file.path, lineno, "apiary-determinism",
                               "wall-clock reads (" + suffix + ") are nondeterministic; " +
                                   "use Simulator::now() cycles"});
        }
      }
    }
    if (in_sim_state) {
      for (const auto& container : config.banned_containers) {
        if (!FindIdentifier(line, container).empty()) {
          findings->push_back(
              {file.path, lineno, "apiary-determinism",
               container + " has seed-visible iteration order; use std::map/std::set, or "
                           "suppress with // NOLINT(apiary-determinism) if never iterated"});
        }
      }
    }
  }
}

void CheckLayering(const SourceFile& file, const LintConfig& config,
                   std::vector<Finding>* findings) {
  const std::string layer = SrcLayer(file.path);
  if (layer.empty()) {
    return;  // Layering governs src/ only; tests and bench see everything.
  }
  auto rule = config.layering.find(layer);
  for (size_t i = 0; i < file.raw_lines.size(); ++i) {
    const std::string target = ParseQuotedInclude(file.raw_lines[i]);
    if (target.empty() || !StartsWith(target, "src/")) {
      continue;
    }
    const int lineno = static_cast<int>(i) + 1;
    if (std::find(config.layering_exempt_includes.begin(),
                  config.layering_exempt_includes.end(),
                  target) != config.layering_exempt_includes.end()) {
      continue;
    }
    if (rule == config.layering.end()) {
      findings->push_back({file.path, lineno, "apiary-layering",
                           "src/" + layer + "/ is not a declared layer; add it to the "
                           "allowed-include DAG in tools/apiary_lint/lint.cc"});
      continue;
    }
    const std::string target_layer = SrcLayer(target);
    if (std::find(rule->second.begin(), rule->second.end(), target_layer) ==
        rule->second.end()) {
      findings->push_back({file.path, lineno, "apiary-layering",
                           "src/" + layer + "/ may not include " + target + " (allowed " +
                               "layers are listed in tools/apiary_lint/lint.cc; accel must "
                               "reach mem/noc through the Monitor, never directly)"});
    }
  }
}

void CheckIncludeGuard(const SourceFile& file, const LintConfig& /*config*/,
                       std::vector<Finding>* findings) {
  if (!EndsWith(file.path, ".h")) {
    return;
  }
  const std::string expected = ExpectedGuard(file.path);
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string trimmed = Trimmed(file.code_lines[i]);
    if (trimmed.empty()) {
      continue;
    }
    if (StartsWith(trimmed, "#pragma once")) {
      findings->push_back({file.path, static_cast<int>(i) + 1, "apiary-include-guard",
                           "use the " + expected + " include-guard convention, not "
                           "#pragma once"});
      return;
    }
    if (StartsWith(trimmed, "#ifndef")) {
      const std::string guard = Trimmed(trimmed.substr(7));
      if (guard != expected) {
        findings->push_back({file.path, static_cast<int>(i) + 1, "apiary-include-guard",
                             "include guard '" + guard + "' should be '" + expected + "'"});
        return;
      }
      // The guard define must follow immediately.
      for (size_t j = i + 1; j < file.code_lines.size(); ++j) {
        const std::string next = Trimmed(file.code_lines[j]);
        if (next.empty()) {
          continue;
        }
        if (next != "#define " + expected) {
          findings->push_back({file.path, static_cast<int>(j) + 1, "apiary-include-guard",
                               "expected '#define " + expected + "' right after #ifndef"});
        }
        return;
      }
      return;
    }
    // First significant line is neither a guard nor pragma once.
    findings->push_back({file.path, static_cast<int>(i) + 1, "apiary-include-guard",
                         "header has no include guard; expected #ifndef " + expected});
    return;
  }
}

void CheckDebugName(const SourceFile& file, const LintConfig& /*config*/,
                    std::vector<Finding>* findings) {
  // Join the code view so class heads and bodies spanning lines are easy to
  // scan; remember line starts for reporting.
  std::string text;
  std::vector<size_t> line_start;
  for (const auto& line : file.code_lines) {
    line_start.push_back(text.size());
    text += line;
    text.push_back('\n');
  }
  auto line_of = [&](size_t offset) {
    size_t lo = 0;
    size_t hi = line_start.size();
    while (lo + 1 < hi) {
      size_t mid = (lo + hi) / 2;
      if (line_start[mid] <= offset) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return static_cast<int>(lo) + 1;
  };

  size_t pos = 0;
  while ((pos = text.find("class ", pos)) != std::string::npos) {
    if (pos > 0 && IsIdentChar(text[pos - 1])) {
      pos += 6;
      continue;
    }
    const size_t head_start = pos;
    pos += 6;
    // Class head runs to the first '{' or ';' (forward declaration).
    size_t body_open = text.find_first_of("{;", head_start);
    if (body_open == std::string::npos || text[body_open] == ';') {
      continue;
    }
    const std::string head = text.substr(head_start, body_open - head_start);
    // Direct Clocked subclass: base list mentions Clocked after a ':'.
    size_t colon = head.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    const std::string bases = head.substr(colon + 1);
    if (FindIdentifier(bases, "Clocked").empty()) {
      continue;
    }
    // Walk the brace-matched class body looking for a DebugName override.
    int depth = 0;
    size_t body_end = body_open;
    for (size_t i = body_open; i < text.size(); ++i) {
      if (text[i] == '{') {
        ++depth;
      } else if (text[i] == '}') {
        --depth;
        if (depth == 0) {
          body_end = i;
          break;
        }
      }
    }
    const std::string body = text.substr(body_open, body_end - body_open);
    if (body.find("DebugName") == std::string::npos) {
      findings->push_back({file.path, line_of(head_start), "apiary-debug-name",
                           "Clocked subclass must override DebugName() so traces and "
                           "debug dumps can identify the block"});
    }
  }
}

void CheckNodiscard(const SourceFile& file, const LintConfig& config,
                    std::vector<Finding>* findings) {
  if (!MatchesAnySuffix(file.path, config.nodiscard_files)) {
    return;
  }
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    for (const auto& type : config.nodiscard_types) {
      for (size_t pos : FindIdentifier(line, type)) {
        // A minting declaration: type, whitespace, identifier, '('.
        size_t p = pos + type.size();
        while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) {
          ++p;
        }
        const size_t name_start = p;
        while (p < line.size() && IsIdentChar(line[p])) {
          ++p;
        }
        if (p == name_start || p >= line.size() || line[p] != '(') {
          continue;
        }
        const std::string name = line.substr(name_start, p - name_start);
        const bool marked =
            line.find("[[nodiscard]]") != std::string::npos ||
            (i > 0 && file.raw_lines[i - 1].find("[[nodiscard]]") != std::string::npos);
        if (!marked) {
          findings->push_back({file.path, lineno, "apiary-nodiscard",
                               name + "() mints a " + type + "; dropping the result leaks "
                               "or orphans the grant — declare it [[nodiscard]]"});
        }
      }
    }
  }
}

void CheckHotPath(const SourceFile& file, const LintConfig& config,
                  std::vector<Finding>* findings) {
  // Discipline applies to simulator code only; tests and bench hand-build
  // packets freely.
  if (!StartsWith(file.path, "src/")) {
    return;
  }
  for (const auto& prefix : config.hot_path_exempt_prefixes) {
    if (StartsWith(file.path, prefix)) {
      return;
    }
  }
  // The express corridor planner/reservation files additionally ban ALL
  // allocation outside the one-time Configure() sizing: TryLaunch, the
  // per-cycle conflict scan, and materialization run on the executed-cycle
  // path, and a grow-on-demand container there would turn the fast path
  // into a hidden allocator.
  bool express_file = false;
  for (const auto& prefix : config.express_hot_path_prefixes) {
    if (StartsWith(file.path, prefix)) {
      express_file = true;
      break;
    }
  }
  if (express_file) {
    bool in_setup = false;  // Inside a Configure() definition.
    for (size_t i = 0; i < file.code_lines.size(); ++i) {
      const std::string& line = file.code_lines[i];
      const int lineno = static_cast<int>(i) + 1;
      // Track the enclosing member function: out-of-line definitions all
      // carry the ExpressLane:: qualifier, so a qualifier sighting updates
      // whether we are inside the sanctioned sizing function.
      if (line.find("ExpressLane::") != std::string::npos) {
        in_setup = line.find("::Configure(") != std::string::npos;
      }
      if (in_setup) {
        continue;
      }
      static const char* const kAllocOps[] = {".assign(", ".resize(", ".reserve(",
                                              "std::make_unique", "std::make_shared"};
      std::string hit;
      for (const char* op : kAllocOps) {
        if (line.find(op) != std::string::npos) {
          hit = op;
          break;
        }
      }
      if (hit.empty() && !FindIdentifier(line, "new").empty()) {
        hit = "new";
      }
      if (!hit.empty()) {
        findings->push_back(
            {file.path, lineno, "apiary-hot-path",
             "express corridor state allocates outside Configure() (" + hit +
                 "): launch/conflict-scan/materialize run on the executed-cycle "
                 "path — size reservations once and recycle slots in place"});
      }
    }
  }
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    if (line.find("make_shared<NocPacket") != std::string::npos ||
        line.find("make_shared< NocPacket") != std::string::npos) {
      findings->push_back({file.path, lineno, "apiary-hot-path",
                           "std::make_shared<NocPacket> allocates a control block per "
                           "message; draw packets from PacketPool::Acquire()"});
    } else if ([&line] {
                 size_t pos = line.find("new NocPacket");
                 while (pos != std::string::npos) {
                   if (pos == 0 || !IsIdentChar(line[pos - 1])) {
                     return true;
                   }
                   pos = line.find("new NocPacket", pos + 1);
                 }
                 return false;
               }()) {
      findings->push_back({file.path, lineno, "apiary-hot-path",
                           "bare new NocPacket heap-allocates per message; draw packets "
                           "from PacketPool::Acquire()"});
    }
    if (line.find("std::vector<uint8_t>") != std::string::npos &&
        !FindIdentifier(line, "payload").empty()) {
      findings->push_back({file.path, lineno, "apiary-hot-path",
                           "message payloads ride in PayloadBuf end-to-end; a "
                           "std::vector<uint8_t> copy reintroduces per-message heap "
                           "allocation on the executed-cycle path"});
    }
  }
}

namespace {

// Splits a statement into identifier tokens (type names keep their '::'
// qualification; punctuation is dropped).
std::vector<std::string> StatementTokens(const std::string& stmt) {
  std::vector<std::string> tokens;
  std::string current;
  for (size_t i = 0; i < stmt.size(); ++i) {
    const char c = stmt[i];
    if (IsIdentChar(c) || (c == ':' && i + 1 < stmt.size() && stmt[i + 1] == ':') ||
        (c == ':' && !current.empty() && current.back() == ':')) {
      current.push_back(c);
    } else if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) {
    tokens.push_back(current);
  }
  return tokens;
}

bool HasToken(const std::vector<std::string>& tokens, const std::string& token) {
  return std::find(tokens.begin(), tokens.end(), token) != tokens.end();
}

// True when the declared object itself is const: a "const" token after the
// last '*' / '&' (pointer-to-const with a mutable pointer does not count).
bool DeclaredObjectIsConst(const std::string& stmt) {
  const size_t last_ptr = stmt.find_last_of("*&");
  size_t pos = 0;
  while ((pos = stmt.find("const", pos)) != std::string::npos) {
    const bool head_ok = pos == 0 || !IsIdentChar(stmt[pos - 1]);
    const bool tail_ok = pos + 5 >= stmt.size() || !IsIdentChar(stmt[pos + 5]);
    if (head_ok && tail_ok && (last_ptr == std::string::npos || pos > last_ptr)) {
      return true;
    }
    pos += 5;
  }
  return false;
}

// True when the statement looks like a function declaration/definition
// head rather than a variable: its first '(' comes before any '='.
bool LooksLikeFunctionDecl(const std::string& stmt) {
  const size_t paren = stmt.find('(');
  if (paren == std::string::npos) {
    return false;
  }
  const size_t equals = stmt.find('=');
  return equals == std::string::npos || paren < equals;
}

// Last declarator-ish identifier before '=', '[' or the end — the variable
// name, for the finding message.
std::string DeclaredName(const std::string& stmt) {
  size_t end = stmt.find_first_of("=[{");
  std::string head = end == std::string::npos ? stmt : stmt.substr(0, end);
  const auto tokens = StatementTokens(head);
  return tokens.empty() ? "<unnamed>" : tokens.back();
}

// Statement-head keywords that mean "not a variable declaration".
bool IsNonDeclarationStatement(const std::vector<std::string>& tokens) {
  static const char* kSkip[] = {
      "using", "typedef", "extern", "friend", "template", "static_assert",
      "struct", "class", "enum", "union", "namespace", "return", "operator",
      "delete", "case", "default", "goto", "throw", "co_return", "co_yield",
      "if", "else", "for", "while", "do", "switch", "break", "continue",
      "public", "private", "protected", "asm"};
  if (tokens.empty()) {
    return true;
  }
  for (const char* word : kSkip) {
    if (HasToken(tokens, word)) {
      return true;
    }
  }
  // A lone token ("g_anon" after an anonymous-struct body) has no type.
  return tokens.size() < 2;
}

}  // namespace

void CheckGlobalState(const SourceFile& file, const LintConfig& config,
                      std::vector<Finding>* findings) {
  if (!StartsWith(file.path, "src/")) {
    return;
  }
  for (const auto& prefix : config.global_state_exempt_prefixes) {
    if (StartsWith(file.path, prefix)) {
      return;
    }
  }

  // Reports one global-state finding, honoring APIARY-SHARED annotations.
  auto report = [&](int lineno, const std::string& what) {
    if (file.IsSharedAnnotated(lineno)) {
      return;
    }
    for (int candidate : {lineno, lineno - 1}) {
      if (candidate >= 1 && candidate <= static_cast<int>(file.shared.size()) &&
          file.shared[candidate - 1] == SharedAnnotation::kMalformed) {
        findings->push_back(
            {file.path, candidate, "apiary-global-state",
             "malformed APIARY-SHARED annotation; the grammar is "
             "// APIARY-SHARED(<domain>): <reason>"});
        return;
      }
    }
    findings->push_back(
        {file.path, lineno, "apiary-global-state",
         what + " is process-global mutable state a sharded simulation would race "
                "on; make it domain-local (SimContext) or annotate the declaration "
                "with // APIARY-SHARED(<domain>): <reason>"});
  };

  // Evaluates one flushed statement. `other_depth` counts enclosing braces
  // that are not namespaces (class bodies, function bodies, initializers).
  auto evaluate = [&](const std::string& stmt_in, int stmt_line, int other_depth) {
    std::string stmt = Trimmed(stmt_in);
    // Access-specifier labels are not statement terminators in this
    // scanner; strip them so `public: static int x_;` still evaluates.
    for (bool stripped = true; stripped;) {
      stripped = false;
      for (const char* label : {"public", "private", "protected"}) {
        const size_t len = std::string(label).size();
        if (StartsWith(stmt, label) &&
            (stmt.size() == len || !IsIdentChar(stmt[len]))) {
          const size_t colon = stmt.find(':', len);
          if (colon != std::string::npos && Trimmed(stmt.substr(len, colon - len)).empty()) {
            stmt = Trimmed(stmt.substr(colon + 1));
            stripped = true;
          }
        }
      }
    }
    if (stmt.empty()) {
      return;
    }
    const auto tokens = StatementTokens(stmt);
    if (IsNonDeclarationStatement(tokens)) {
      return;
    }
    if (HasToken(tokens, "constexpr") || DeclaredObjectIsConst(stmt)) {
      return;
    }
    if (LooksLikeFunctionDecl(stmt)) {
      return;
    }
    if (other_depth == 0) {
      report(stmt_line, "namespace-scope global '" + DeclaredName(stmt) + "'");
    } else if (tokens[0] == "static" || (tokens[0] == "inline" && tokens[1] == "static")) {
      report(stmt_line, "function-local/class static '" + DeclaredName(stmt) +
                            "' (Meyers singletons included)");
    }
  };

  // Brace kinds: namespaces don't open a scope for this check; initializer
  // braces get the declaration evaluated at the '{' and add no scope.
  enum class Brace : uint8_t { kNamespace, kOther, kInit };
  std::vector<Brace> stack;
  int other_depth = 0;
  std::string stmt;
  int stmt_line = 0;
  int paren_depth = 0;
  bool in_preproc = false;

  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const int lineno = static_cast<int>(i) + 1;
    const std::string raw_trimmed = Trimmed(file.raw_lines[i]);
    if (in_preproc || (!raw_trimmed.empty() && raw_trimmed[0] == '#')) {
      in_preproc = !raw_trimmed.empty() && raw_trimmed.back() == '\\';
      continue;
    }
    const std::string& line = file.code_lines[i];
    for (char c : line) {
      if (c == '(') {
        ++paren_depth;
      } else if (c == ')') {
        paren_depth = paren_depth > 0 ? paren_depth - 1 : 0;
      }
      if (paren_depth > 0) {
        if (Trimmed(stmt).empty() && c != ' ' && c != '\t') {
          stmt_line = lineno;
        }
        stmt.push_back(c);
        continue;
      }
      if (c == '{') {
        const std::string head = Trimmed(stmt);
        const auto tokens = StatementTokens(head);
        if (!tokens.empty() && tokens[0] == "namespace") {
          stack.push_back(Brace::kNamespace);
        } else if (head.empty() || head.back() == ')' || LooksLikeFunctionDecl(head) ||
                   IsNonDeclarationStatement(tokens)) {
          stack.push_back(Brace::kOther);
          ++other_depth;
        } else {
          // Brace-initialized declaration: `int g_x{0};`, `auto g = ...{`.
          evaluate(head, stmt_line == 0 ? lineno : stmt_line, other_depth);
          stack.push_back(Brace::kInit);
        }
        stmt.clear();
        stmt_line = 0;
      } else if (c == '}') {
        if (!stack.empty()) {
          if (stack.back() == Brace::kOther) {
            --other_depth;
          }
          stack.pop_back();
        }
        stmt.clear();
        stmt_line = 0;
      } else if (c == ';') {
        evaluate(stmt, stmt_line == 0 ? lineno : stmt_line, other_depth);
        stmt.clear();
        stmt_line = 0;
      } else {
        if (Trimmed(stmt).empty() && c != ' ' && c != '\t') {
          stmt_line = lineno;
        }
        stmt.push_back(c);
      }
    }
    stmt.push_back(' ');  // Statements spanning lines keep token boundaries.
  }
}

void CheckSyncDiscipline(const SourceFile& file, const LintConfig& config,
                         std::vector<Finding>* findings) {
  if (!StartsWith(file.path, "src/")) {
    return;
  }
  for (const auto& prefix : config.sync_allowed_prefixes) {
    if (StartsWith(file.path, prefix)) {
      return;
    }
  }
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    for (const auto& ident : config.banned_sync_identifiers) {
      if (!FindIdentifier(line, ident).empty()) {
        findings->push_back(
            {file.path, lineno, "apiary-sync-discipline",
             ident + " is ad-hoc synchronization; every primitive lives in the "
                     "reviewed " +
                 (config.sync_allowed_prefixes.empty()
                      ? std::string("parallel home")
                      : config.sync_allowed_prefixes.front()) +
                 " so the sharded engine (ROADMAP item 1) has one concurrency "
                 "surface to audit"});
      }
    }
  }
}

void CheckNolintReason(const SourceFile& file, const LintConfig& /*config*/,
                       std::vector<Finding>* findings) {
  for (size_t i = 0; i < file.raw_lines.size(); ++i) {
    const std::string& raw = file.raw_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    size_t pos = 0;
    while ((pos = raw.find("NOLINT", pos)) != std::string::npos) {
      const size_t marker_len = raw.compare(pos, 14, "NOLINTNEXTLINE") == 0 ? 14 : 6;
      size_t after = pos + marker_len;
      const auto checks = ParseNolintList(raw, after);
      bool names_apiary = false;
      for (const auto& check : checks) {
        if (StartsWith(check, "apiary-")) {
          names_apiary = true;
        }
      }
      if (names_apiary) {
        // Reason grammar: "(...)": <non-empty text>.
        size_t close = raw.find(')', after);
        size_t p = close == std::string::npos ? after : close + 1;
        while (p < raw.size() && (raw[p] == ' ' || raw[p] == '\t')) {
          ++p;
        }
        const bool has_reason =
            p < raw.size() && raw[p] == ':' && !Trimmed(raw.substr(p + 1)).empty();
        if (!has_reason) {
          findings->push_back(
              {file.path, lineno, "apiary-nolint-reason",
               "NOLINT(apiary-*) must carry a ': <reason>' suffix — the reason is "
               "the audit trail for why the invariant is waived here"});
        }
      }
      pos += marker_len;
    }
  }
}

void CheckDomainConfinement(const std::vector<SourceFile>& files, const LintConfig& config,
                            std::vector<Finding>* findings) {
  auto confined = [&](const std::string& layer) {
    return std::find(config.confined_layers.begin(), config.confined_layers.end(), layer) !=
           config.confined_layers.end();
  };
  auto is_channel = [&](const std::string& type) {
    return std::find(config.confinement_channel_types.begin(),
                     config.confinement_channel_types.end(),
                     type) != config.confinement_channel_types.end();
  };

  // Pass 1: symbol table — class/struct definition name -> owning layer.
  // Names defined in more than one layer are ambiguous and dropped.
  std::map<std::string, std::set<std::string>> defs;
  for (const auto& file : files) {
    const std::string layer = SrcLayer(file.path);
    if (layer.empty() || !confined(layer)) {
      continue;
    }
    for (const auto& line : file.code_lines) {
      for (const char* keyword : {"class ", "struct "}) {
        const size_t klen = std::string(keyword).size();
        size_t pos = 0;
        while ((pos = line.find(keyword, pos)) != std::string::npos) {
          const bool head_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
          // "enum class" defines a scoped enum, not a class.
          const bool after_enum = pos >= 5 && line.compare(pos - 5, 5, "enum ") == 0;
          if (!head_ok || after_enum) {
            pos += klen;
            continue;
          }
          size_t p = pos + klen;
          while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) {
            ++p;
          }
          const size_t name_start = p;
          while (p < line.size() && IsIdentChar(line[p])) {
            ++p;
          }
          const std::string name = line.substr(name_start, p - name_start);
          while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) {
            ++p;
          }
          if (line.compare(p, 5, "final") == 0) {
            p += 5;
            while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) {
              ++p;
            }
          }
          // Definition heads end the line or open a body/base list; anything
          // else (';' forward decl, '>' template param, '*' usage) is not one.
          const bool definition = !name.empty() &&
                                  (p >= line.size() || line[p] == '{' || line[p] == ':');
          if (definition) {
            defs[name].insert(layer);
          }
          pos += klen;
        }
      }
    }
  }
  std::map<std::string, std::string> type_layer;
  for (const auto& [name, layers] : defs) {
    if (layers.size() == 1 && !is_channel(name)) {
      type_layer[name] = *layers.begin();
    }
  }

  // Pass 2: flag raw pointer/reference *members* (trailing-underscore
  // declarator convention) whose pointee type lives in a different
  // confined layer than the declaring file.
  for (const auto& file : files) {
    const std::string layer = SrcLayer(file.path);
    if (layer.empty() || !confined(layer)) {
      continue;
    }
    for (size_t i = 0; i < file.code_lines.size(); ++i) {
      const std::string& line = file.code_lines[i];
      const int lineno = static_cast<int>(i) + 1;
      for (const auto& [type, owner] : type_layer) {
        if (owner == layer) {
          continue;
        }
        for (size_t pos : FindIdentifier(line, type)) {
          size_t p = pos + type.size();
          while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) {
            ++p;
          }
          bool raw_indirect = false;
          while (p < line.size() && (line[p] == '*' || line[p] == '&')) {
            raw_indirect = true;
            ++p;
          }
          if (!raw_indirect) {
            continue;
          }
          while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) {
            ++p;
          }
          if (line.compare(p, 5, "const") == 0 && (p + 5 >= line.size() ||
                                                   !IsIdentChar(line[p + 5]))) {
            p += 5;
            while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) {
              ++p;
            }
          }
          const size_t name_start = p;
          while (p < line.size() && IsIdentChar(line[p])) {
            ++p;
          }
          const std::string member = line.substr(name_start, p - name_start);
          if (member.size() < 2 || member.back() != '_') {
            continue;
          }
          while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) {
            ++p;
          }
          if (p < line.size() && line[p] != ';' && line[p] != '=' && line[p] != ',' &&
              line[p] != '{') {
            continue;
          }
          findings->push_back(
              {file.path, lineno, "apiary-domain-confinement",
               "member '" + member + "' holds a raw pointer/reference to " + type +
                   " (" + owner + "-owned) from src/" + layer + "/ — cross-domain "
                   "state must ride PacketRef, a capability handle, or a registered "
                   "channel type so domains stay shardable (ROADMAP item 1)"});
        }
      }
    }
  }
}

void CheckOpcodeCoverage(const std::vector<SourceFile>& files, const LintConfig& config,
                         std::vector<Finding>* findings) {
  struct OpcodeDef {
    std::string file;
    int line;
  };
  std::map<std::string, OpcodeDef> defs;
  bool corpus_has_tests = false;
  for (const auto& file : files) {
    if (StartsWith(file.path, "tests/")) {
      corpus_has_tests = true;
    }
    if (!MatchesAnySuffix(file.path, config.opcode_def_files)) {
      continue;
    }
    for (size_t i = 0; i < file.code_lines.size(); ++i) {
      const std::string& line = file.code_lines[i];
      if (line.find("constexpr") == std::string::npos) {
        continue;
      }
      size_t pos = 0;
      while ((pos = line.find("kOp", pos)) != std::string::npos) {
        if (pos > 0 && (IsIdentChar(line[pos - 1]) || line[pos - 1] == ':')) {
          pos += 3;
          continue;
        }
        size_t end = pos;
        while (end < line.size() && IsIdentChar(line[end])) {
          ++end;
        }
        const std::string name = line.substr(pos, end - pos);
        // *Base constants are numbering-space markers, not wire opcodes.
        if (name.size() > 3 && !EndsWith(name, "Base")) {
          defs.emplace(name, OpcodeDef{file.path, static_cast<int>(i) + 1});
        }
        pos = end;
      }
    }
  }
  if (defs.empty()) {
    return;
  }

  std::set<std::string> handled;
  std::set<std::string> tested;
  for (const auto& file : files) {
    const bool is_def_file = MatchesAnySuffix(file.path, config.opcode_def_files);
    const bool in_src = StartsWith(file.path, "src/") && !is_def_file;
    const bool in_tests = StartsWith(file.path, "tests/");
    if (!in_src && !in_tests) {
      continue;
    }
    for (const auto& line : file.code_lines) {
      if (line.find("kOp") == std::string::npos) {
        continue;
      }
      for (const auto& [name, def] : defs) {
        if (!FindIdentifier(line, name).empty()) {
          if (in_src) {
            handled.insert(name);
          } else {
            tested.insert(name);
          }
        }
      }
    }
  }

  for (const auto& [name, def] : defs) {
    if (handled.find(name) == handled.end()) {
      findings->push_back({def.file, def.line, "apiary-opcode-coverage",
                           name + " has no dispatching handler under src/ — every wire "
                           "opcode in the stable ABI must be handled (Section 4.3)"});
    }
    if (corpus_has_tests && tested.find(name) == tested.end()) {
      findings->push_back({def.file, def.line, "apiary-opcode-coverage",
                           name + " is never referenced under tests/ — every wire opcode "
                           "needs at least one test exercising it"});
    }
  }
}

void CheckWakePath(const std::vector<SourceFile>& files, const LintConfig& config,
                   std::vector<Finding>* findings) {
  // A wake often fires in the implementation file while the declaration
  // lives in the header (or vice versa), so evidence anywhere in the
  // .h/.cc pair clears both: map path-minus-extension -> evidence seen.
  std::map<std::string, bool> stem_evidence;
  auto stem_of = [](const std::string& path) {
    const size_t dot = path.rfind('.');
    return dot == std::string::npos ? path : path.substr(0, dot);
  };
  for (const auto& file : files) {
    if (!StartsWith(file.path, "src/")) {
      continue;
    }
    bool& evidence = stem_evidence[stem_of(file.path)];
    for (const auto& line : file.code_lines) {
      if (evidence) {
        break;
      }
      for (const auto& pattern : config.wake_evidence) {
        if (line.find(pattern) != std::string::npos) {
          evidence = true;
          break;
        }
      }
    }
  }

  for (const auto& file : files) {
    if (!StartsWith(file.path, "src/")) {
      continue;
    }
    std::string text;
    std::vector<size_t> line_start;
    for (const auto& line : file.code_lines) {
      line_start.push_back(text.size());
      text += line;
      text.push_back('\n');
    }
    auto line_of = [&](size_t offset) {
      size_t lo = 0;
      size_t hi = line_start.size();
      while (lo + 1 < hi) {
        const size_t mid = (lo + hi) / 2;
        if (line_start[mid] <= offset) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      return static_cast<int>(lo) + 1;
    };

    size_t pos = 0;
    while ((pos = text.find("NextActivity", pos)) != std::string::npos) {
      const size_t token = pos;
      pos += 12;  // strlen("NextActivity")
      // Identifier boundary before ('::' qualification is a definition head,
      // '->'/'.' is a call) and an open paren after.
      if (token > 0 && IsIdentChar(text[token - 1])) {
        continue;
      }
      size_t p = pos;
      while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) {
        ++p;
      }
      if (p >= text.size() || text[p] != '(') {
        continue;
      }
      // Skip the parameter list, then require a definition: only identifier
      // characters and whitespace ("const override" etc.) may sit between
      // the close paren and the '{'. Anything else — an operator, a second
      // ')' — is a call site in an expression, and a ';' is a declaration.
      int parens = 0;
      while (p < text.size()) {
        if (text[p] == '(') {
          ++parens;
        } else if (text[p] == ')') {
          if (--parens == 0) {
            ++p;
            break;
          }
        }
        ++p;
      }
      bool is_definition = false;
      while (p < text.size()) {
        const char c = text[p];
        if (c == '{') {
          is_definition = true;
          break;
        }
        if (!IsIdentChar(c) && c != ' ' && c != '\t' && c != '\n' && c != '[' && c != ']') {
          break;  // ';' (declaration) or an expression operator.
        }
        ++p;
      }
      if (!is_definition) {
        continue;
      }
      const size_t body_open = p;
      int depth = 0;
      size_t body_end = body_open;
      for (size_t i = body_open; i < text.size(); ++i) {
        if (text[i] == '{') {
          ++depth;
        } else if (text[i] == '}') {
          if (--depth == 0) {
            body_end = i;
            break;
          }
        }
      }
      if (FindIdentifier(text.substr(body_open, body_end - body_open), "kNoActivity")
              .empty()) {
        continue;  // The declaration never goes fully idle; parking is bounded.
      }

      // Blessing: an APIARY-WAKE annotation on the definition line or in the
      // contiguous // comment block directly above it.
      const int def_line = line_of(token);
      bool blessed = false;
      bool malformed = false;
      for (int candidate = def_line; candidate >= 1; --candidate) {
        const std::string& raw = file.raw_lines[static_cast<size_t>(candidate) - 1];
        if (candidate != def_line && !StartsWith(Trimmed(raw), "//")) {
          break;
        }
        const size_t marker = raw.find("APIARY-WAKE");
        if (marker == std::string::npos) {
          continue;
        }
        if (ParseWakeAnnotation(raw, marker) == SharedAnnotation::kOk) {
          blessed = true;
        } else {
          malformed = true;
        }
        break;
      }
      if (malformed) {
        findings->push_back({file.path, def_line, "apiary-wake-path",
                             "malformed APIARY-WAKE annotation; the grammar is "
                             "// APIARY-WAKE(<source>): <reason>"});
        continue;
      }
      if (blessed || stem_evidence[stem_of(file.path)]) {
        continue;
      }
      findings->push_back(
          {file.path, def_line, "apiary-wake-path",
           "NextActivity can return kNoActivity (idle until external input) but no "
           "wake path is visible in this file pair — whoever delivers input to a "
           "parked block must fire RequestWake()/WakeHint (or the block opts out "
           "via SchedulingPolicy()); if the waker lives elsewhere, annotate the "
           "definition with // APIARY-WAKE(<source>): <reason>"});
    }
  }
}

std::vector<Finding> RunAllChecks(const std::vector<SourceFile>& files,
                                  const LintConfig& config) {
  std::vector<Finding> raw;
  for (const auto& file : files) {
    CheckDeterminism(file, config, &raw);
    CheckLayering(file, config, &raw);
    CheckIncludeGuard(file, config, &raw);
    CheckDebugName(file, config, &raw);
    CheckNodiscard(file, config, &raw);
    CheckHotPath(file, config, &raw);
    CheckGlobalState(file, config, &raw);
    CheckSyncDiscipline(file, config, &raw);
    CheckNolintReason(file, config, &raw);
  }
  CheckOpcodeCoverage(files, config, &raw);
  CheckDomainConfinement(files, config, &raw);
  CheckWakePath(files, config, &raw);

  std::map<std::string, const SourceFile*> by_path;
  for (const auto& file : files) {
    by_path[file.path] = &file;
  }
  std::vector<Finding> kept;
  for (auto& finding : raw) {
    auto it = by_path.find(finding.file);
    if (it != by_path.end() && it->second->IsSuppressed(finding.line, finding.check)) {
      continue;
    }
    kept.push_back(std::move(finding));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) {
      return a.file < b.file;
    }
    if (a.line != b.line) {
      return a.line < b.line;
    }
    return a.check < b.check;
  });
  return kept;
}

}  // namespace lint
}  // namespace apiary
