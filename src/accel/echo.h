// Echo accelerator: replies with its request payload after a configurable
// service time. The workhorse of latency/throughput microbenchmarks.
#ifndef SRC_ACCEL_ECHO_H_
#define SRC_ACCEL_ECHO_H_

#include <deque>

#include "src/accel/accel_opcodes.h"
#include "src/core/accelerator.h"

namespace apiary {

class EchoAccelerator : public Accelerator {
 public:
  explicit EchoAccelerator(Cycle service_cycles = 0) : service_cycles_(service_cycles) {}

  void OnMessage(const Message& msg, TileApi& api) override {
    if (msg.kind != MsgKind::kRequest) {
      return;
    }
    // Serial engine: back-to-back requests queue behind each other.
    const Cycle start = engine_free_at_ > api.now() ? engine_free_at_ : api.now();
    engine_free_at_ = start + service_cycles_;
    pending_.push_back(Pending{msg, engine_free_at_});
  }

  void Tick(TileApi& api) override {
    while (!pending_.empty() && pending_.front().ready_at <= api.now()) {
      Message reply;
      reply.opcode = pending_.front().request.opcode;
      reply.payload = pending_.front().request.payload;
      if (api.Reply(pending_.front().request, std::move(reply)).ok()) {
        pending_.pop_front();
        ++served_;
      } else {
        break;  // Backpressure: retry next cycle.
      }
    }
  }

  // Idle until the head-of-line request finishes service; a failed Reply
  // keeps ready_at in the past, which keeps the block active for the retry.
  // APIARY-WAKE(tile): hosted accelerator — requests arrive through the
  // owning Tile, whose NI sink wake ends the park on message delivery.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    if (pending_.empty()) {
      return kNoActivity;
    }
    const Cycle at = pending_.front().ready_at;
    return at > now ? at : now;
  }

  std::string name() const override { return "echo"; }
  uint32_t LogicCellCost() const override { return 3000; }
  uint64_t served() const { return served_; }

 private:
  struct Pending {
    Message request;
    Cycle ready_at;
  };
  Cycle service_cycles_;
  Cycle engine_free_at_ = 0;
  std::deque<Pending> pending_;
  uint64_t served_ = 0;
};

}  // namespace apiary

#endif  // SRC_ACCEL_ECHO_H_
