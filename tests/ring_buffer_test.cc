// Unit tests for the two queue primitives on the flit hot path:
// RingBuffer (single-owner, intra-shard) and SpscRing (cross-shard handoff).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/sim/parallel/spsc_ring.h"
#include "src/sim/ring_buffer.h"

namespace apiary {
namespace {

TEST(RingBufferTest, FifoOrderAcrossWraparound) {
  RingBuffer<int> ring(3);  // Rounds slot storage to 4; logical capacity stays 3.
  EXPECT_EQ(ring.capacity(), 3u);
  int next_push = 0;
  int next_pop = 0;
  // Push/pop enough to wrap the index mask many times.
  for (int round = 0; round < 100; ++round) {
    while (!ring.full()) {
      ring.push_back(next_push++);
    }
    EXPECT_EQ(ring.size(), 3u);
    while (!ring.empty()) {
      EXPECT_EQ(ring.take_front(), next_pop++);
    }
  }
  EXPECT_EQ(next_push, next_pop);
}

TEST(RingBufferTest, PopResetsSlotImmediately) {
  // Reference-holding elements must release their target the moment they
  // leave the queue — the packet pool's acquire/release balance depends on
  // this, not on the slot being overwritten later.
  RingBuffer<std::shared_ptr<int>> ring(4);
  auto value = std::make_shared<int>(42);
  ring.push_back(value);
  EXPECT_EQ(value.use_count(), 2);
  ring.pop_front();
  EXPECT_EQ(value.use_count(), 1);

  ring.push_back(value);
  auto taken = ring.take_front();
  EXPECT_EQ(value.use_count(), 2);  // `value` + `taken`, nothing in the ring.
  taken.reset();
  EXPECT_EQ(value.use_count(), 1);
}

TEST(RingBufferTest, ClearReleasesEverything) {
  RingBuffer<std::shared_ptr<int>> ring(8);
  auto value = std::make_shared<int>(7);
  for (int i = 0; i < 5; ++i) {
    ring.push_back(value);
  }
  EXPECT_EQ(value.use_count(), 6);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(value.use_count(), 1);
}

TEST(SpscRingTest, SingleThreadedFifoAndBounds) {
  SpscRing<int, 4> ring;
  EXPECT_TRUE(ring.EmptyApprox());
  int out = 0;
  EXPECT_FALSE(ring.Pop(&out));  // Empty.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.Push(i));
  }
  EXPECT_FALSE(ring.Push(99));  // Full.
  EXPECT_EQ(ring.SizeApprox(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.Pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.Pop(&out));
  // Indices are monotonic (they wrapped the mask); FIFO must survive reuse.
  for (int i = 100; i < 110; ++i) {
    EXPECT_TRUE(ring.Push(i));
    ASSERT_TRUE(ring.Pop(&out));
    EXPECT_EQ(out, i);
  }
}

TEST(SpscRingTest, CrossThreadHandoffDeliversEverythingInOrder) {
  // One producer thread, one consumer thread (this one), full/empty
  // backpressure exercised by the tiny capacity. Run under TSan in the
  // sanitize CI job, this is the memory-ordering proof for the boundary
  // handoff path.
  constexpr int kItems = 50000;
  SpscRing<int, 8> ring;
  std::thread producer([&ring] {
    for (int i = 0; i < kItems;) {
      if (ring.Push(i)) {
        ++i;
      } else {
        std::this_thread::yield();  // Full: wait for the consumer.
      }
    }
  });
  int expected = 0;
  while (expected < kItems) {
    int out = -1;
    if (ring.Pop(&out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();  // Empty: wait for the producer.
    }
  }
  producer.join();
  EXPECT_TRUE(ring.EmptyApprox());
}

TEST(SpscRingTest, ResetOwnersAllowsHandover) {
  // A ring may change owner threads between runs, as long as both sides are
  // quiescent across the handover (the engine's workers are joined before
  // DisablePartition). ResetOwners forgets the debug-mode role bindings.
  SpscRing<int, 4> ring;
  std::thread first([&ring] { ASSERT_TRUE(ring.Push(1)); });
  first.join();
  ring.ResetOwners();
  std::thread second([&ring] { ASSERT_TRUE(ring.Push(2)); });
  second.join();
  int out = 0;
  ASSERT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out, 2);
}

}  // namespace
}  // namespace apiary
