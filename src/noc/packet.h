// NoC wire format: packets and flits.
//
// The NoC layer is deliberately ignorant of Apiary message semantics: it
// moves opaque payload bytes between tiles. Service naming, capabilities and
// policy all live one layer up in the monitor (Section 4.3: "the NoC allows
// us to move service naming to an API-layer interface").
#ifndef SRC_NOC_PACKET_H_
#define SRC_NOC_PACKET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/types.h"

namespace apiary {

// Virtual channels. Two VCs break message-dependent (request-response)
// deadlock cycles, per the deadlock literature the paper cites in 4.5.
enum class Vc : uint8_t {
  kRequest = 0,
  kResponse = 1,
};
inline constexpr int kNumVcs = 2;

struct NocPacket {
  TileId src = kInvalidTile;
  TileId dst = kInvalidTile;
  Vc vc = Vc::kRequest;
  uint64_t packet_id = 0;
  Cycle inject_cycle = 0;
  std::vector<uint8_t> payload;
  // End-to-end payload checksum, stamped by the injecting NI. The ejecting
  // NI recomputes it so link-level corruption is *detected* (and the packet
  // discarded) instead of a garbled message being silently consumed.
  uint32_t checksum = 0;  // 0 = unstamped (hand-built packets skip the check).
  // Set when a link fault dropped one of this packet's flits in flight. The
  // remaining flits still traverse the wormhole path (preserving router
  // state) but the ejecting NI discards the packet.
  bool dropped = false;
};

// FNV-1a over the payload bytes; cheap stand-in for a per-packet CRC.
inline uint32_t PacketChecksum(const std::vector<uint8_t>& payload) {
  uint32_t h = 2166136261u;
  for (uint8_t byte : payload) {
    h = (h ^ byte) * 16777619u;
  }
  return h;
}

// Width of a flit's data path. One head flit carries the header; payload
// flits carry kFlitBytes each.
inline constexpr uint32_t kFlitBytes = 32;

// Number of flits a packet occupies on the wire.
inline uint32_t FlitCount(const NocPacket& packet) {
  return 1 + static_cast<uint32_t>((packet.payload.size() + kFlitBytes - 1) / kFlitBytes);
}

// A flit in flight: a reference into its parent packet. The packet object is
// shared by all of its flits and handed to the destination NI when the tail
// arrives.
struct Flit {
  std::shared_ptr<NocPacket> packet;
  uint32_t index = 0;

  bool is_head() const { return index == 0; }
  bool is_tail() const { return index + 1 == FlitCount(*packet); }
  TileId dst() const { return packet->dst; }
  Vc vc() const { return packet->vc; }
};

}  // namespace apiary

#endif  // SRC_NOC_PACKET_H_
