// Experiment E10: the Section 2 motivating workload, measured end to end —
// a video-encoding service composed with a third-party compression
// accelerator, fed at increasing frame rates.
//
// Reports per-stage occupancy, end-to-end frame latency, and the sustained
// frame rate at which the pipeline saturates; then an ablation with the
// compressor on a *time-sliced* share of the encoder tile (the AmorphOS-
// style alternative to spatial composition).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/accel/compressor.h"
#include "src/accel/video_encoder.h"
#include "src/baseline/timesliced.h"
#include "src/stats/table.h"
#include "src/workload/frame_source.h"

using namespace apiary;

namespace {

constexpr uint32_t kW = 64;
constexpr uint32_t kH = 64;

class FrameSink : public Accelerator {
 public:
  void OnMessage(const Message& msg, TileApi& api) override {
    if (msg.kind != MsgKind::kRequest) {
      return;
    }
    ++frames;
    bytes += msg.payload.size();
    last_at = api.now();
  }
  std::string name() const override { return "sink"; }
  uint32_t LogicCellCost() const override { return 2000; }
  uint64_t frames = 0;
  uint64_t bytes = 0;
  Cycle last_at = 0;
};

class Feeder : public Accelerator {
 public:
  Feeder(ServiceId enc, Cycle interval) : enc_(enc), interval_(interval) {}
  void Tick(TileApi& api) override {
    if (api.now() < next_at_) {
      return;
    }
    const auto pixels = GenerateFrame(kW, kH, 21, sent_);
    Message msg;
    msg.opcode = kOpEncodeFrame;
    msg.payload = FrameToRequestPayload(kW, kH, pixels);
    if (api.Send(std::move(msg), api.LookupService(enc_)).ok()) {
      ++sent_;
      next_at_ = api.now() + interval_;
    }
  }
  void OnMessage(const Message&, TileApi&) override {}
  std::string name() const override { return "feeder"; }
  uint32_t LogicCellCost() const override { return 2000; }
  uint64_t sent() const { return sent_; }

 private:
  ServiceId enc_;
  Cycle interval_;
  uint64_t sent_ = 0;
  Cycle next_at_ = 0;
};

struct Result {
  uint64_t fed;
  uint64_t delivered;
  double fps_delivered;
  double mean_latency_cycles;
};

Result Run(Cycle frame_interval) {
  BenchBoard bb(BenchBoardOptions{}, /*deploy_services=*/false);
  ApiaryOs& os = bb.os;
  AppId app = os.CreateApp("pipeline");

  auto* sink = new FrameSink();
  ServiceId sink_svc = 0;
  os.Deploy(app, std::unique_ptr<Accelerator>(sink), &sink_svc);
  auto* comp = new CompressorAccelerator(8);
  ServiceId comp_svc = 0;
  const TileId comp_tile = os.Deploy(app, std::unique_ptr<Accelerator>(comp), &comp_svc);
  comp->SetNextStage(os.GrantSendToService(comp_tile, sink_svc), kOpEcho);
  auto* enc = new VideoEncoderAccelerator(/*cycles_per_block=*/60, 60);
  ServiceId enc_svc = 0;
  const TileId enc_tile = os.Deploy(app, std::unique_ptr<Accelerator>(enc), &enc_svc);
  enc->SetNextStage(os.GrantSendToService(enc_tile, comp_svc), kOpCompress);
  auto* feeder = new Feeder(enc_svc, frame_interval);
  const TileId ft = os.Deploy(app, std::unique_ptr<Accelerator>(feeder));
  (void)os.GrantSendToService(ft, enc_svc);

  constexpr Cycle kRun = 2'000'000;
  bb.sim.Run(kRun);
  Result r;
  r.fed = feeder->sent();
  r.delivered = sink->frames;
  const double ms = bb.sim.CyclesToNs(kRun) / 1e6;
  r.fps_delivered = static_cast<double>(sink->frames) / ms * 1000.0;
  // Mean pipeline latency approximated by Little's law over the run.
  r.mean_latency_cycles =
      sink->frames == 0 ? 0
                        : static_cast<double>(kRun) * (static_cast<double>(r.fed - r.delivered) +
                                                       1.0) /
                              static_cast<double>(sink->frames);
  return r;
}

}  // namespace

int main() {
  std::printf("E10: video encode->compress pipeline (64x64 frames; encoder 60 cyc/block,\n");
  std::printf("compressor 8 B/cycle; 2M-cycle runs at 250 MHz => 8 ms of board time)\n");

  // The encoder needs 64 blocks x 60 cycles = 3840 cycles/frame: saturation
  // is ~260 fps per ms... sweep intervals around that.
  Table table("E10: delivered frame rate vs offered frame rate");
  table.SetHeader({"offered interval (cyc)", "offered fps(k)", "fed", "delivered",
                   "delivered fps(k)"});
  for (Cycle interval : {20000u, 10000u, 6000u, 4000u, 3000u}) {
    const Result r = Run(interval);
    table.AddRow({Table::Int(interval),
                  Table::Num(250e6 / static_cast<double>(interval) / 1000.0, 1),
                  Table::Int(r.fed), Table::Int(r.delivered),
                  Table::Num(r.fps_delivered / 1000.0, 1)});
  }
  table.Print();

  // Ablation: spatial composition vs time-slicing one region (AmorphOS-ish).
  Table ablation("E10b: spatial composition vs time-sliced sharing of one region");
  ablation.SetHeader({"discipline", "frames/ms through both stages"});
  const Result spatial = Run(4000);
  ablation.AddRow({"two tiles (Apiary, spatial)", Table::Num(spatial.delivered / 8.0, 1)});
  {
    // Time-sliced: encoder and compressor alternate on ONE region; each
    // frame needs an encode pass then a compress pass, with a partial
    // reconfiguration between phases. Run a 40ms window so at least a few
    // slice rotations fit.
    Simulator sim(250.0);
    TimeSlicedConfig cfg;
    cfg.num_apps = 2;                // "apps" = the two pipeline stages.
    cfg.slice_cycles = 500000;
    cfg.reconfig_cycles = 4'000'000; // Full PR swap between stages (~16ms).
    cfg.service_cycles = 3840;       // Per-frame stage time.
    TimeSlicedFpga fpga(cfg);
    sim.Register(&fpga);
    // Offer frames continuously to stage 0; completed stage-0 frames queue
    // for stage 1.
    uint64_t stage0_done = 0;
    uint64_t offered = 0;
    constexpr Cycle kWindow = 10'000'000;
    for (Cycle t = 0; t < kWindow; t += 1000) {
      while (offered < t / 4000 + 1) {  // Same 4000-cycle offered interval.
        fpga.Submit(0, sim.now());
        ++offered;
      }
      sim.Run(1000);
      while (stage0_done < fpga.completed(0)) {
        fpga.Submit(1, sim.now());
        ++stage0_done;
      }
    }
    const double ms = 40.0;
    ablation.AddRow({"one region, time-sliced (AmorphOS-style)",
                     Table::Num(static_cast<double>(fpga.completed(1)) / ms, 1)});
  }
  ablation.Print();

  std::printf(
      "\nexpected shape: delivered rate tracks offered rate until the encoder's\n"
      "3840-cycle/frame engine saturates (~65k fps at 250 MHz), then flattens; the\n"
      "time-sliced ablation collapses because every stage switch pays a multi-ms\n"
      "partial reconfiguration — the paper's case for spatial composition over\n"
      "temporal multiplexing of composed pipelines.\n");
  return 0;
}
