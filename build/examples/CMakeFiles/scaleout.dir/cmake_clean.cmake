file(REMOVE_RECURSE
  "CMakeFiles/scaleout.dir/scaleout.cpp.o"
  "CMakeFiles/scaleout.dir/scaleout.cpp.o.d"
  "scaleout"
  "scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
