# Empty dependencies file for multi_tenant_kv.
# This may be replaced when dependencies are built.
