file(REMOVE_RECURSE
  "CMakeFiles/apiary_accel.dir/checksum.cc.o"
  "CMakeFiles/apiary_accel.dir/checksum.cc.o.d"
  "CMakeFiles/apiary_accel.dir/compressor.cc.o"
  "CMakeFiles/apiary_accel.dir/compressor.cc.o.d"
  "CMakeFiles/apiary_accel.dir/crypto.cc.o"
  "CMakeFiles/apiary_accel.dir/crypto.cc.o.d"
  "CMakeFiles/apiary_accel.dir/faulty.cc.o"
  "CMakeFiles/apiary_accel.dir/faulty.cc.o.d"
  "CMakeFiles/apiary_accel.dir/kv_store.cc.o"
  "CMakeFiles/apiary_accel.dir/kv_store.cc.o.d"
  "CMakeFiles/apiary_accel.dir/multi_context.cc.o"
  "CMakeFiles/apiary_accel.dir/multi_context.cc.o.d"
  "CMakeFiles/apiary_accel.dir/video_encoder.cc.o"
  "CMakeFiles/apiary_accel.dir/video_encoder.cc.o.d"
  "libapiary_accel.a"
  "libapiary_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apiary_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
