// Unit tests for the simulation kernel: RNG, event queue, simulator loop.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace apiary {
namespace {

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.NextInRange(5, 8);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolRoughlyMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(50.0);
  }
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextZipf(100, 0.99), 100u);
  }
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(29);
  uint64_t low = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(1000, 0.99) < 10) {
      ++low;
    }
  }
  // Under theta=0.99 the top-10 keys should absorb a large chunk of mass.
  EXPECT_GT(low, static_cast<uint64_t>(n) / 4);
}

TEST(RngTest, ZipfDegenerateSizes) {
  Rng rng(31);
  EXPECT_EQ(rng.NextZipf(0, 0.99), 0u);
  EXPECT_EQ(rng.NextZipf(1, 0.99), 0u);
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(10, [&](Cycle) { order.push_back(2); });
  q.ScheduleAt(5, [&](Cycle) { order.push_back(1); });
  q.ScheduleAt(20, [&](Cycle) { order.push_back(3); });
  q.RunUntil(20);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameCycleEventsRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(7, [&order, i](Cycle) { order.push_back(i); });
  }
  q.RunUntil(7);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, DoesNotRunFutureEvents) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(100, [&](Cycle) { ++ran; });
  q.RunUntil(99);
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(q.size(), 1u);
  q.RunUntil(100);
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CallbackMaySchedule) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(1, [&](Cycle now) {
    ++ran;
    q.ScheduleAt(now + 1, [&](Cycle) { ++ran; });
  });
  q.RunUntil(5);
  EXPECT_EQ(ran, 2);
}

class CountingBlock : public Clocked {
 public:
  void Tick(Cycle) override { ++ticks; }
  std::string DebugName() const override { return "counting_block"; }
  int ticks = 0;
};

TEST(SimulatorTest, TicksRegisteredBlocks) {
  Simulator sim;
  CountingBlock a;
  CountingBlock b;
  sim.Register(&a);
  sim.Register(&b);
  sim.Run(25);
  EXPECT_EQ(a.ticks, 25);
  EXPECT_EQ(b.ticks, 25);
  EXPECT_EQ(sim.now(), 25u);
}

TEST(SimulatorTest, UnregisterStopsTicking) {
  Simulator sim;
  CountingBlock a;
  sim.Register(&a);
  sim.Run(10);
  sim.Unregister(&a);
  sim.Run(10);
  // One extra tick may occur in the removal cycle itself; bound it tightly.
  EXPECT_LE(a.ticks, 11);
  EXPECT_GE(a.ticks, 10);
}

TEST(SimulatorTest, RunUntilPredicate) {
  Simulator sim;
  CountingBlock a;
  sim.Register(&a);
  const bool fired = sim.RunUntil([&] { return a.ticks >= 7; }, 100);
  EXPECT_TRUE(fired);
  EXPECT_LE(sim.now(), 10u);
}

TEST(SimulatorTest, RunUntilTimesOut) {
  Simulator sim;
  const bool fired = sim.RunUntil([] { return false; }, 50);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), 50u);
}

TEST(SimulatorTest, ScheduledEventsRunDuringTicks) {
  Simulator sim;
  int fired_at = -1;
  sim.ScheduleAt(13, [&](Cycle now) { fired_at = static_cast<int>(now); });
  sim.Run(20);
  EXPECT_EQ(fired_at, 13);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  sim.Run(5);
  int fired_at = -1;
  sim.ScheduleAfter(10, [&](Cycle now) { fired_at = static_cast<int>(now); });
  sim.Run(20);
  EXPECT_EQ(fired_at, 15);
}

TEST(SimulatorTest, CyclesToNsUsesFrequency) {
  Simulator sim(250.0);
  EXPECT_DOUBLE_EQ(sim.CyclesToNs(250), 1000.0);
  Simulator sim2(100.0);
  EXPECT_DOUBLE_EQ(sim2.CyclesToNs(100), 1000.0);
}

// --- Quiescence skipping. ---

// A block that is idle until work is pushed into it (pending), recording
// every cycle it was actually ticked.
class SleepyBlock : public Clocked {
 public:
  void Tick(Cycle now) override {
    ticked_at.push_back(now);
    if (pending) {
      pending = false;
      processed_at.push_back(now);
    }
  }
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    return pending ? now : kNoActivity;
  }
  std::string DebugName() const override { return "sleepy_block"; }

  bool pending = false;
  std::vector<Cycle> ticked_at;
  std::vector<Cycle> processed_at;
};

TEST(SimulatorSkipTest, IdleBlocksAreFastForwarded) {
  Simulator sim;
  SleepyBlock a;
  sim.Register(&a);
  sim.Run(1000);
  EXPECT_EQ(sim.now(), 1000u);
  // Cycle 0 executes (Step runs before the first skip opportunity), then one
  // jump covers the rest.
  EXPECT_EQ(a.ticked_at, (std::vector<Cycle>{0}));
  EXPECT_EQ(sim.skips(), 1u);
  EXPECT_EQ(sim.skipped_cycles(), 999u);
}

TEST(SimulatorSkipTest, NoSkipEscapeHatchTicksEveryCycle) {
  Simulator sim;
  sim.SetSkipEnabled(false);
  SleepyBlock a;
  sim.Register(&a);
  sim.Run(1000);
  EXPECT_EQ(sim.now(), 1000u);
  EXPECT_EQ(a.ticked_at.size(), 1000u);
  EXPECT_EQ(sim.skips(), 0u);
  EXPECT_EQ(sim.skipped_cycles(), 0u);
}

TEST(SimulatorSkipTest, EventInsideSkippedWindowFiresAtItsExactCycle) {
  Simulator sim;
  SleepyBlock a;
  sim.Register(&a);
  std::vector<Cycle> fired_at;
  // The first event lands mid-window; its callback both wakes the block and
  // schedules a second event deeper into what would have been skipped.
  sim.ScheduleAt(500, [&](Cycle now) {
    fired_at.push_back(now);
    a.pending = true;
    sim.ScheduleAt(750, [&](Cycle n2) { fired_at.push_back(n2); });
  });
  sim.Run(1000);
  EXPECT_EQ(fired_at, (std::vector<Cycle>{500, 750}));
  // The block was woken by the event and ran on that exact cycle.
  EXPECT_EQ(a.processed_at, (std::vector<Cycle>{500}));
  // Only the boundary cycles executed: 0, the two event cycles, 750's
  // follow-up boundary is idle again.
  EXPECT_EQ(a.ticked_at, (std::vector<Cycle>{0, 500, 750}));
  EXPECT_EQ(sim.now(), 1000u);
}

TEST(SimulatorSkipTest, SameCycleEventsKeepScheduleOrderAfterJump) {
  Simulator sim;
  SleepyBlock a;
  sim.Register(&a);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.ScheduleAt(700, [&order, i](Cycle) { order.push_back(i); });
  }
  sim.Run(1000);
  // The jump lands exactly on the deadline and the queue drains in schedule
  // order, before that cycle's block ticks (the block observed cycle 700).
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(a.ticked_at, (std::vector<Cycle>{0, 700}));
}

// A block that re-arms its own timer from inside Tick: fires every 100
// cycles starting at 50, sleeping in between.
class TimerBlock : public Clocked {
 public:
  void Tick(Cycle now) override {
    if (now >= wake_at_) {
      fired_at.push_back(now);
      wake_at_ = now + 100;
    }
  }
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    return wake_at_ > now ? wake_at_ : now;
  }
  std::string DebugName() const override { return "timer_block"; }

  std::vector<Cycle> fired_at;

 private:
  Cycle wake_at_ = 50;
};

TEST(SimulatorSkipTest, BlockReArmsItselfFromInsideTick) {
  Simulator sim;
  TimerBlock t;
  sim.Register(&t);
  sim.Run(1000);
  std::vector<Cycle> expected;
  for (Cycle c = 50; c < 1000; c += 100) {
    expected.push_back(c);
  }
  EXPECT_EQ(t.fired_at, expected);
  EXPECT_GT(sim.skipped_cycles(), 900u);
}

TEST(SimulatorSkipTest, SkippedPlusExecutedEqualsNow) {
  Simulator sim;
  TimerBlock t;
  sim.Register(&t);
  sim.Run(5000);
  // Every simulated cycle was either executed or skipped; no double counting.
  EXPECT_EQ(sim.now(), 5000u);
  EXPECT_LT(sim.skipped_cycles(), 5000u);
  EXPECT_GT(sim.skipped_cycles(), 0u);
}

TEST(SimulatorSkipTest, RunUntilStopsAtTheSatisfyingBoundary) {
  Simulator sim;
  TimerBlock t;
  sim.Register(&t);
  // The predicate flips when the timer fires at cycle 250; RunUntil must
  // report the boundary right after that executed cycle, not the far side of
  // a subsequent jump.
  const bool fired = sim.RunUntil([&] { return t.fired_at.size() >= 3; }, 10'000);
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 251u);
}

TEST(SimulatorTest, DoubleUnregisterIsHarmless) {
  Simulator sim;
  CountingBlock a;
  CountingBlock b;
  sim.Register(&a);
  sim.Register(&b);
  sim.Run(5);
  sim.Unregister(&a);
  sim.Unregister(&a);  // Duplicate removal of the same block.
  sim.Run(5);
  EXPECT_LE(a.ticks, 6);
  // The survivor keeps ticking: the duplicate entry must not eat `b`.
  EXPECT_EQ(b.ticks, 10);
}

// Records the order SkipAhead polls NextActivity, exposing the hot-block
// fast-exit cache (src/sim/simulator.cc) to the tests below.
class PollProbe : public Clocked {
 public:
  PollProbe(std::vector<const PollProbe*>* log, bool active) : log_(log), active_(active) {}

  void Tick(Cycle now) override { (void)now; }
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    log_->push_back(this);
    return active_ ? now : kNoActivity;
  }
  std::string DebugName() const override { return "poll_probe"; }

  void SetActive(bool active) { active_ = active; }

 private:
  std::vector<const PollProbe*>* log_;
  bool active_;
};

TEST(SimulatorTest, RemovingABlockBeforeTheHotBlockRemapsTheCache) {
  // Regression: ApplyPendingRemovals compacts blocks_, which shifts the
  // index the hot-block cache stored. Removing a block *before* the hot one
  // used to leave a stale index that aliased whatever slid into that slot;
  // the cache must follow its block instead.
  std::vector<const PollProbe*> log;
  Simulator sim;
  // The hot-block cache serves the tick-everything skip path; the active-set
  // path's busy check is O(1) and never scans.
  sim.SetActiveSetEnabled(false);
  PollProbe a(&log, false);
  PollProbe b(&log, false);
  PollProbe c(&log, true);  // The busy block: becomes the hot cache entry.
  PollProbe d(&log, false);
  sim.Register(&a);
  sim.Register(&b);
  sim.Register(&c);
  sim.Register(&d);

  // Two-cycle runs throughout: SkipAhead only polls between cycles of a run
  // (it early-outs once now reaches the run boundary).
  sim.Run(2);  // SkipAhead scans a, b, then finds c active: hot = index 2.
  log.clear();
  sim.Run(2);
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.front(), &c);  // Fast exit polls the cached hot block first.

  // The very next SkipAhead after the removal applies is the observable: a
  // stale index (still 2) would poll d — the block that slid into c's old
  // slot — before a scan self-heals the cache. The remapped cache polls c
  // first, full stop.
  sim.Unregister(&a);  // Compaction shifts c from index 2 to index 1.
  log.clear();
  sim.Run(2);  // Removal applies at the end of the first cycle's Step.
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.front(), &c);
}

TEST(SimulatorTest, RemovingTheHotBlockItselfResetsTheCache) {
  std::vector<const PollProbe*> log;
  Simulator sim;
  sim.SetActiveSetEnabled(false);  // The cache only serves the legacy scan.
  PollProbe a(&log, false);
  PollProbe b(&log, false);
  PollProbe c(&log, true);
  sim.Register(&a);
  sim.Register(&b);
  sim.Register(&c);

  sim.Run(2);  // hot = index 2 (c).
  c.SetActive(false);
  b.SetActive(true);
  sim.Unregister(&c);
  log.clear();
  sim.Run(2);  // Removal applies at the end of the first cycle's Step.
  // Removing the hot block bumps its slot's generation, which invalidates
  // the cache: no fast-exit poll happens and the scan starts from a, finding
  // b active. The failure mode guarded here is aliasing — a stale cache must
  // never poll whatever block slid into c's old slot.
  ASSERT_GE(log.size(), 2u);
  EXPECT_EQ(log[0], &a);
  EXPECT_EQ(log[1], &b);
}

// Register/unregister churn regression: slot identities must stay stable
// while other blocks come and go (the old engine re-resolved a raw index on
// every removal, which aliased the hot-block cache), recycled slots must
// never alias their previous tenant, and both engine modes must agree on
// every block's tick count.
TEST(SimulatorTest, RegisterUnregisterChurnTicksExactlyTheRightBlocks) {
  auto run = [](bool active_set) {
    Simulator sim;
    sim.SetActiveSetEnabled(active_set);
    CountingBlock anchor;  // Always busy: pins the clock, no fast-forwards.
    sim.Register(&anchor);

    std::vector<std::unique_ptr<CountingBlock>> churn;
    std::vector<int> final_ticks;
    // 40 rounds: add two busy blocks, run, remove the older one (plus a
    // harmless double-unregister), run again. Slot ids get freed and
    // recycled continuously while the anchor keeps every cycle executing.
    for (int round = 0; round < 40; ++round) {
      churn.push_back(std::make_unique<CountingBlock>());
      sim.Register(churn.back().get());
      churn.push_back(std::make_unique<CountingBlock>());
      sim.Register(churn.back().get());
      sim.Run(3);
      CountingBlock* oldest = churn.front().get();
      sim.Unregister(oldest);
      sim.Unregister(oldest);  // Double-unregister must be harmless.
      sim.Run(3);
      final_ticks.push_back(oldest->ticks);
      churn.erase(churn.begin());
    }
    for (const auto& block : churn) {
      final_ticks.push_back(block->ticks);
    }
    final_ticks.push_back(anchor.ticks);
    return final_ticks;
  };

  const std::vector<int> with_sets = run(true);
  const std::vector<int> legacy = run(false);
  EXPECT_EQ(with_sets, legacy);
  // The anchor saw every cycle: 40 rounds of 6 cycles each.
  EXPECT_EQ(with_sets.back(), 240);
}

// A parked block's slot is removed and immediately recycled by a new
// registration; a stale wake aimed at the old registration must not
// activate (or tick) the slot's new tenant.
TEST(SimulatorTest, RecycledSlotDoesNotAliasStaleWakes) {
  Simulator sim;
  CountingBlock anchor;
  sim.Register(&anchor);
  SleepyBlock old_tenant;
  sim.Register(&old_tenant);
  sim.Run(2);  // old_tenant parks after its first boundary.
  sim.Unregister(&old_tenant);
  sim.Run(1);  // Removal applies; the slot returns to the free list.

  SleepyBlock new_tenant;
  sim.Register(&new_tenant);  // Recycles the freed slot (LIFO free list).
  sim.Run(2);
  const size_t ticks_before = new_tenant.ticked_at.size();
  // The old registration's wake channel was unbound at removal: this is a
  // no-op, not a wake of whoever now owns the slot.
  old_tenant.RequestWake();
  sim.Run(3);
  EXPECT_EQ(new_tenant.ticked_at.size(), ticks_before);

  // The new tenant's own wake still lands.
  new_tenant.pending = true;
  new_tenant.RequestWake();
  sim.Run(3);
  ASSERT_EQ(new_tenant.processed_at.size(), 1u);
}

// A block whose SchedulingPolicy changes mid-run (a tile's policy follows
// the accelerator loaded onto it) announces it via RequestPolicyRefresh.
class PolicySwitchBlock : public Clocked {
 public:
  void Tick(Cycle now) override { ticked_at.push_back(now); }
  [[nodiscard]] Cycle NextActivity(Cycle) const override { return kNoActivity; }
  [[nodiscard]] SchedPolicy SchedulingPolicy() const override { return policy; }
  std::string DebugName() const override { return "policy_switch"; }

  SchedPolicy policy = SchedPolicy::kActiveSet;
  std::vector<Cycle> ticked_at;
};

TEST(SimulatorTest, PolicyRefreshMidRunIsFollowed) {
  Simulator sim;
  CountingBlock anchor;
  sim.Register(&anchor);
  PolicySwitchBlock block;
  sim.Register(&block);
  sim.Run(5);
  // kActiveSet + kNoActivity: parked after the first boundary.
  const size_t parked_ticks = block.ticked_at.size();
  EXPECT_LE(parked_ticks, 1u);

  block.policy = Clocked::SchedPolicy::kEveryCycle;
  block.RequestPolicyRefresh();
  sim.Run(5);
  // Pinned now: every executed cycle ticks it despite the idle declaration.
  EXPECT_EQ(block.ticked_at.size(), parked_ticks + 5);

  block.policy = Clocked::SchedPolicy::kActiveSet;
  block.RequestPolicyRefresh();
  sim.Run(5);
  // Back to parkable: at most the conservative re-activation tick.
  EXPECT_LE(block.ticked_at.size(), parked_ticks + 5 + 1);
}

}  // namespace
}  // namespace apiary
