# Empty compiler generated dependencies file for e5_segments_vs_pages.
# This may be replaced when dependencies are built.
