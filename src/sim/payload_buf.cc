#include "src/sim/payload_buf.h"

#include "src/sim/parallel/thread_domain.h"
#include "src/sim/sim_context.h"

namespace apiary {
namespace {

// The arena a freshly growing buf binds to: the installed domain's arena,
// or the process fallback outside any domain.
PayloadArena& CurrentArena() {
  SimContext* context = ThreadDomain::Current();
  return context != nullptr ? context->arena() : FallbackPayloadArena();
}

}  // namespace

void PayloadBuf::Grow(size_t min_capacity) {
  if (arena_ == nullptr) {
    arena_ = &CurrentArena();
  }
  // Geometric growth, then rounded up to the arena's size class.
  size_t want = capacity_ * 2;
  if (want < min_capacity) {
    want = min_capacity;
  }
  size_t new_capacity = 0;
  uint8_t* chunk = arena_->Acquire(want, &new_capacity);
  std::memcpy(chunk, data_, size_);
  if (data_ != inline_) {
    arena_->Release(data_, capacity_);
  }
  data_ = chunk;
  capacity_ = new_capacity;
}

void PayloadBuf::ReleaseHeap() {
  if (data_ != inline_) {
    arena_->Release(data_, capacity_);
    data_ = inline_;
    capacity_ = kInlineBytes;
    size_ = 0;
    arena_ = nullptr;  // A reused buf re-binds to the then-current domain.
  }
}

void PayloadBuf::SetArenaEnabled(bool enabled) {
  FallbackPayloadArena().SetEnabled(enabled);
}

const PayloadArenaStats& PayloadBuf::ArenaStats() {
  return FallbackPayloadArena().stats();
}

void PayloadBuf::ResetArenaStats() { FallbackPayloadArena().ResetStats(); }

void PayloadBuf::TrimArena() { FallbackPayloadArena().Trim(); }

}  // namespace apiary
