file(REMOVE_RECURSE
  "libapiary_mem.a"
)
