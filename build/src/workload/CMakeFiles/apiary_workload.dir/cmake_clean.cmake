file(REMOVE_RECURSE
  "CMakeFiles/apiary_workload.dir/client.cc.o"
  "CMakeFiles/apiary_workload.dir/client.cc.o.d"
  "CMakeFiles/apiary_workload.dir/frame_source.cc.o"
  "CMakeFiles/apiary_workload.dir/frame_source.cc.o.d"
  "CMakeFiles/apiary_workload.dir/kv_workload.cc.o"
  "CMakeFiles/apiary_workload.dir/kv_workload.cc.o.d"
  "libapiary_workload.a"
  "libapiary_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apiary_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
