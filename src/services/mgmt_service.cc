#include "src/services/mgmt_service.h"

#include "src/services/supervisor.h"

namespace apiary {

void MgmtService::Watch(TileId tile, Cycle deadline_cycles) {
  watched_[tile] = WatchEntry{deadline_cycles, 0, false};
}

void MgmtService::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind != MsgKind::kRequest) {
    return;
  }
  Message reply;
  reply.opcode = msg.opcode;
  switch (msg.opcode) {
    case kOpMgmtHeartbeat: {
      auto it = watched_.find(msg.src_tile);
      if (it != watched_.end()) {
        it->second.last_heartbeat = api.now();
      }
      counters_.Add("mgmt.heartbeats");
      // Heartbeats are fire-and-forget; no reply keeps the watchdog cheap.
      return;
    }
    case kOpMgmtWatch: {
      if (msg.payload.size() < 8) {
        reply.status = MsgStatus::kBadRequest;
        break;
      }
      Watch(msg.src_tile, GetU64(msg.payload, 0));
      watched_[msg.src_tile].last_heartbeat = api.now();
      counters_.Add("mgmt.watches");
      break;
    }
    case kOpMgmtReport: {
      fault_log_.emplace_back("tile " + std::to_string(msg.src_tile) + ": " +
                              std::string(msg.payload.begin(), msg.payload.end()));
      counters_.Add("mgmt.reports");
      break;
    }
    case kOpMgmtQuery: {
      const std::string text = counters_.ToString();
      reply.payload.assign(text.begin(), text.end());
      break;
    }
    default:
      reply.status = MsgStatus::kBadRequest;
      break;
  }
  api.Reply(msg, std::move(reply));
}

void MgmtService::Tick(TileApi& api) {
  // Watchdog sweep: fail-stop any watched tile that missed its deadline.
  for (auto& [tile, entry] : watched_) {
    if (entry.tripped || entry.deadline_cycles == 0) {
      continue;
    }
    if (api.now() > entry.last_heartbeat + entry.deadline_cycles) {
      entry.tripped = true;
      counters_.Add("mgmt.watchdog_trips");
      fault_log_.emplace_back("watchdog: tile " + std::to_string(tile) +
                              " missed heartbeat deadline");
      if (supervisor_ != nullptr) {
        supervisor_->OnTileFault(tile, "watchdog timeout");
      } else {
        os_->FailStop(tile, "watchdog timeout");
      }
    }
  }
}

}  // namespace apiary
