# Empty dependencies file for apiary_noc.
# This may be replaced when dependencies are built.
