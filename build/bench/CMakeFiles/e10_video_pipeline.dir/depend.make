# Empty dependencies file for e10_video_pipeline.
# This may be replaced when dependencies are built.
