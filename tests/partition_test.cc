// Edge-case tests for the spatial decomposition (DomainPartition) and the
// sharded engine driving it (ParallelSimulator): degenerate mesh shapes,
// empty shards, and mid-run unregistration of boundary blocks.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/noc/mesh.h"
#include "src/noc/packet_pool.h"
#include "src/sim/parallel/domain_partition.h"
#include "src/sim/parallel/parallel_simulator.h"
#include "src/sim/simulator.h"

namespace apiary {
namespace {

TEST(DomainPartitionTest, OneByNSplitsAlongTheLongAxis) {
  // 1-wide mesh: the long axis is vertical, so bands are row ranges.
  const DomainPartition p = DomainPartition::Build(1, 8, 4);
  EXPECT_FALSE(p.split_columns);
  EXPECT_EQ(p.num_shards, 4u);
  for (uint32_t t = 0; t < 8; ++t) {
    EXPECT_EQ(p.ShardOfTile(t), t / 2) << "tile " << t;
  }
  // Band s only ever touches bands s-1 and s+1.
  for (uint32_t s = 0; s < 4; ++s) {
    for (const uint32_t n : p.neighbors[s]) {
      EXPECT_TRUE(n + 1 == s || n == s + 1) << "shard " << s << " neighbor " << n;
    }
  }
}

TEST(DomainPartitionTest, NByOneSplitsAlongTheLongAxis) {
  const DomainPartition p = DomainPartition::Build(8, 1, 2);
  EXPECT_TRUE(p.split_columns);
  for (uint32_t t = 0; t < 8; ++t) {
    EXPECT_EQ(p.ShardOfTile(t), t < 4 ? 0u : 1u);
  }
  EXPECT_TRUE(p.SameShard(0, 3));
  EXPECT_FALSE(p.SameShard(3, 4));
}

TEST(DomainPartitionTest, MoreShardsThanAxisLeavesEmptyShards) {
  // 3 rows split 4 ways: one shard ends up with no tiles. That is legal —
  // it simply has no work and no boundary edges.
  const DomainPartition p = DomainPartition::Build(1, 3, 4);
  EXPECT_EQ(p.num_shards, 4u);
  uint32_t total = 0;
  uint32_t empty = 0;
  for (const auto& tiles : p.shard_tiles) {
    total += static_cast<uint32_t>(tiles.size());
    empty += tiles.empty() ? 1 : 0;
  }
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(empty, 1u);
  // Every tile still maps to exactly one shard.
  for (uint32_t t = 0; t < 3; ++t) {
    EXPECT_LT(p.ShardOfTile(t), 4u);
  }
}

// Self-driving traffic block for standalone-mesh engine tests: sends
// `count` small packets from `src` to `dst`, one per cycle. Homed at its
// source tile, so the sharded engine ticks it inside that shard's phase.
class PacketSource : public Clocked {
 public:
  PacketSource(Mesh* mesh, TileId src, TileId dst, int count)
      : mesh_(mesh), src_(src), dst_(dst), count_(count) {}

  void Tick(Cycle now) override {
    if (sent_ >= count_) {
      return;
    }
    NetworkInterface& ni = mesh_->ni(src_);
    PacketRef p = ni.pool()->Acquire();
    p->src = src_;
    p->dst = dst_;
    p->packet_id = static_cast<uint64_t>(src_) << 32 | static_cast<uint32_t>(sent_);
    p->payload.assign(16, static_cast<uint8_t>(sent_));
    if (ni.Inject(std::move(p), now)) {
      ++sent_;
    }
  }
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    return sent_ < count_ ? now : kNoActivity;
  }
  [[nodiscard]] TileId PartitionHome() const override { return src_; }
  std::string DebugName() const override { return "packet_source"; }

  int sent() const { return sent_; }

 private:
  Mesh* mesh_;
  TileId src_;
  TileId dst_;
  int count_;
  int sent_ = 0;
};

// Drains its tile's delivery queue and fingerprints what arrived.
class PacketSink : public Clocked {
 public:
  PacketSink(Mesh* mesh, TileId tile) : mesh_(mesh), tile_(tile) {
    // This sink is the consumer above the NI (the role a Tile normally
    // plays), so it claims the NI's delivery-side wake channel; without it a
    // parked sink would never see deliveries.
    mesh_->ni(tile_).SetSinkWake(WakeHint(this));
  }

  void Tick(Cycle now) override {
    (void)now;
    while (mesh_->ni(tile_).HasDeliverable()) {
      PacketRef p = mesh_->ni(tile_).Retrieve();
      ++received_;
      digest_ = digest_ * 1099511628211ull + p->packet_id;
    }
  }
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    return mesh_->ni(tile_).HasDeliverable() ? now : kNoActivity;
  }
  [[nodiscard]] TileId PartitionHome() const override { return tile_; }
  std::string DebugName() const override { return "packet_sink"; }

  int received() const { return received_; }
  uint64_t digest() const { return digest_; }

 private:
  Mesh* mesh_;
  TileId tile_;
  int received_ = 0;
  uint64_t digest_ = 14695981039346656037ull;
};

struct CrossShardResult {
  int received = 0;
  uint64_t digest = 0;
  uint64_t flits_routed = 0;
  uint64_t handed_off = 0;
  std::string counters;
};

// Runs end-to-end cross-shard traffic on a mesh of the given shape and
// returns everything the run observed, for byte-comparison across thread
// counts.
CrossShardResult RunCrossShardTraffic(uint32_t width, uint32_t height, uint32_t shards,
                                      uint32_t threads, Cycle cycles) {
  Simulator sim;
  Mesh mesh(MeshConfig{width, height, 8, 128}, &sim.context());
  sim.Register(&mesh);
  const TileId last = width * height - 1;
  PacketSource source(&mesh, 0, last, 40);
  PacketSource reverse(&mesh, last, 0, 40);
  PacketSink sink(&mesh, last);
  PacketSink reverse_sink(&mesh, 0);
  sim.Register(&source);
  sim.Register(&reverse);
  sim.Register(&sink);
  sim.Register(&reverse_sink);

  ParallelSimulator psim(&sim, &mesh, ParallelConfig{shards, threads});
  psim.Run(cycles);

  CrossShardResult result;
  result.received = sink.received() + reverse_sink.received();
  result.digest = sink.digest() ^ reverse_sink.digest();
  result.flits_routed = mesh.TotalFlitsRouted();
  result.handed_off = mesh.BoundaryFlitsHandedOff();
  result.counters = mesh.AggregateCounters().ToString();
  return result;
}

class ShapeParamTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, uint32_t>> {};

TEST_P(ShapeParamTest, CrossShardTrafficIsThreadCountInvariant) {
  const auto [width, height, shards] = GetParam();
  const CrossShardResult serial = RunCrossShardTraffic(width, height, shards, 1, 3000);
  EXPECT_EQ(serial.received, 80);
  EXPECT_GT(serial.handed_off, 0u);
  for (const uint32_t threads : {2u, shards}) {
    const CrossShardResult parallel = RunCrossShardTraffic(width, height, shards, threads, 3000);
    EXPECT_EQ(parallel.received, serial.received) << "threads=" << threads;
    EXPECT_EQ(parallel.digest, serial.digest) << "threads=" << threads;
    EXPECT_EQ(parallel.flits_routed, serial.flits_routed) << "threads=" << threads;
    EXPECT_EQ(parallel.handed_off, serial.handed_off) << "threads=" << threads;
    EXPECT_EQ(parallel.counters, serial.counters) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(DegenerateShapes, ShapeParamTest,
                         ::testing::Values(std::make_tuple(1u, 8u, 4u),   // 1xN column
                                           std::make_tuple(8u, 1u, 4u),   // Nx1 row
                                           std::make_tuple(1u, 3u, 4u),   // empty shard
                                           std::make_tuple(4u, 4u, 2u))); // square

TEST(ParallelSimulatorTest, EmptyShardEngineRuns) {
  // 1x3 mesh split 4 ways: shard 0 owns no tiles. Threads clamp to the
  // shard count and the empty shard's phases are no-ops.
  Simulator sim;
  Mesh mesh(MeshConfig{1, 3, 8, 128}, &sim.context());
  sim.Register(&mesh);
  ParallelSimulator psim(&sim, &mesh, ParallelConfig{4, 8});
  EXPECT_EQ(psim.shards(), 4u);
  EXPECT_EQ(psim.threads(), 4u);  // Clamped from 8.
  psim.Run(100);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(ParallelSimulatorTest, MidRunUnregisterOfBoundaryBlock) {
  // A source living on a shard-boundary tile is unregistered mid-run from
  // root-phase code (an event). It must stop ticking that cycle onward, and
  // in-flight packets it already injected must still drain cleanly across
  // the cut.
  auto run = [](uint32_t threads) {
    Simulator sim;
    Mesh mesh(MeshConfig{8, 1, 8, 128}, &sim.context());
    sim.Register(&mesh);
    // Tile 3 is the last tile of shard 0 in an 8x1/2-shard split: every
    // packet it sends to tile 7 crosses the cut.
    PacketSource source(&mesh, 3, 7, 1000000);
    PacketSink sink(&mesh, 7);
    sim.Register(&source);
    sim.Register(&sink);
    ParallelSimulator psim(&sim, &mesh, ParallelConfig{2, threads});
    sim.ScheduleAt(50, [&](Cycle) { sim.Unregister(&source); });
    psim.Run(400);
    // Removal is applied at the end of cycle 50, so the source's last tick
    // is cycle 50 itself: 51 packets, all of which must still arrive.
    EXPECT_EQ(source.sent(), 51);
    EXPECT_EQ(sink.received(), 51);
    return sink.digest();
  };
  const uint64_t serial = run(1);
  EXPECT_EQ(run(2), serial);
}

}  // namespace
}  // namespace apiary
