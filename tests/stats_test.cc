// Unit tests for histograms, counters and table rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/sim/random.h"
#include "src/stats/histogram.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace apiary {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_EQ(h.P50(), 42u);
  EXPECT_EQ(h.P999(), 42u);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < 32; ++v) {
    h.Record(v);
  }
  // Values below the sub-bucket count are stored exactly.
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  EXPECT_LE(h.P50(), 16u);
  EXPECT_GE(h.P50(), 15u);
}

TEST(HistogramTest, MeanAndStdDev) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
  EXPECT_NEAR(h.StdDev(), 8.165, 0.01);
}

// Percentiles must land within the histogram's relative error (~3% for 32
// sub-buckets) across several magnitudes.
class HistogramAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramAccuracyTest, UniformPercentileWithinRelativeError) {
  const uint64_t scale = GetParam();
  Histogram h;
  Rng rng(1234);
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.NextBelow(scale) + 1;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const uint64_t exact = values[static_cast<size_t>(q * (values.size() - 1))];
    const uint64_t approx = h.Percentile(q);
    const double rel = std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
                       static_cast<double>(exact);
    EXPECT_LT(rel, 0.08) << "q=" << q << " scale=" << scale << " exact=" << exact
                         << " approx=" << approx;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, HistogramAccuracyTest,
                         ::testing::Values(100, 10000, 1000000, 100000000));

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.Record(7);
  EXPECT_EQ(h.P50(), 7u);
}

TEST(HistogramTest, RecordNWeightsValues) {
  Histogram h;
  h.RecordN(10, 99);
  h.RecordN(1000, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.P50(), 10u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(HistogramTest, PercentileIsMonotoneInQ) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    h.Record(rng.NextBelow(100000));
  }
  uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const uint64_t v = h.Percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Record(1);
  h.Record(2);
  EXPECT_NE(h.Summary().find("n=2"), std::string::npos);
}

TEST(CounterSetTest, AddAndGet) {
  CounterSet c;
  c.Add("x");
  c.Add("x", 4);
  EXPECT_EQ(c.Get("x"), 5u);
  EXPECT_EQ(c.Get("missing"), 0u);
}

TEST(CounterSetTest, SetOverwrites) {
  CounterSet c;
  c.Add("x", 10);
  c.Set("x", 3);
  EXPECT_EQ(c.Get("x"), 3u);
}

TEST(CounterSetTest, MergeSums) {
  CounterSet a;
  CounterSet b;
  a.Add("x", 1);
  b.Add("x", 2);
  b.Add("y", 7);
  a.Merge(b);
  EXPECT_EQ(a.Get("x"), 3u);
  EXPECT_EQ(a.Get("y"), 7u);
}

TEST(CounterSetTest, ToStringSortedByName) {
  CounterSet c;
  c.Add("beta", 2);
  c.Add("alpha", 1);
  EXPECT_EQ(c.ToString(), "alpha=1 beta=2");
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  s.Record(1);
  s.Record(2);
  s.Record(3);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 3.0);
  EXPECT_NEAR(s.StdDev(), 0.8165, 0.001);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
}

TEST(TableTest, CsvRendering) {
  Table t("demo");
  t.SetHeader({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n3,4\n");
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(TableTest, IntGroupsDigits) {
  EXPECT_EQ(Table::Int(0), "0");
  EXPECT_EQ(Table::Int(999), "999");
  EXPECT_EQ(Table::Int(1000), "1,000");
  EXPECT_EQ(Table::Int(3780000), "3,780,000");
}

}  // namespace
}  // namespace apiary
