#include "src/services/opcodes.h"

namespace apiary {

int Dispatch(int opcode) {
  switch (opcode) {
    case kOpPing:
      return 1;
    default:
      return 0;
  }
}

}  // namespace apiary
