# Empty compiler generated dependencies file for video_pipeline.
# This may be replaced when dependencies are built.
