
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/apiary_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/apiary_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/interleaved_memory.cc" "src/mem/CMakeFiles/apiary_mem.dir/interleaved_memory.cc.o" "gcc" "src/mem/CMakeFiles/apiary_mem.dir/interleaved_memory.cc.o.d"
  "/root/repo/src/mem/memory_controller.cc" "src/mem/CMakeFiles/apiary_mem.dir/memory_controller.cc.o" "gcc" "src/mem/CMakeFiles/apiary_mem.dir/memory_controller.cc.o.d"
  "/root/repo/src/mem/page_allocator.cc" "src/mem/CMakeFiles/apiary_mem.dir/page_allocator.cc.o" "gcc" "src/mem/CMakeFiles/apiary_mem.dir/page_allocator.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/mem/CMakeFiles/apiary_mem.dir/page_table.cc.o" "gcc" "src/mem/CMakeFiles/apiary_mem.dir/page_table.cc.o.d"
  "/root/repo/src/mem/segment_allocator.cc" "src/mem/CMakeFiles/apiary_mem.dir/segment_allocator.cc.o" "gcc" "src/mem/CMakeFiles/apiary_mem.dir/segment_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/apiary_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/apiary_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
