# Empty dependencies file for a3_allocator_policy.
# This may be replaced when dependencies are built.
