// Table 1 of the paper: logic cell counts for the largest and smallest FPGA
// parts in the previous Virtex family and the current Virtex family —
// reproduced from the part catalog, followed by the derived analysis the
// table motivates: how many Apiary tiles each part could host.
#include <cstdio>

#include "src/fpga/part_catalog.h"
#include "src/fpga/resource_model.h"
#include "src/noc/network_interface.h"
#include "src/noc/router.h"
#include "src/stats/table.h"

using namespace apiary;

int main() {
  // --- The table as printed in the paper. ---
  Table table1("Table 1: Logic cell counts (paper rows, verbatim from the catalog)");
  table1.SetHeader({"Family", "Year Released", "Part Number", "Logic Cells"});
  for (const FpgaPart& part : PartCatalog()) {
    if (!part.in_paper_table) {
      continue;
    }
    table1.AddRow({part.family, std::to_string(part.year_released), part.part_number,
                   Table::Int(part.logic_cells)});
  }
  table1.Print();

  // --- The paper's headline observations about the table. ---
  const double smallest_growth = 862000.0 / 582720.0;
  const double largest_growth = 3780000.0 / 876160.0;
  std::printf("\npaper claim check:\n");
  std::printf("  smallest parts grew %.0f%% between generations (paper: \"about 50%%\")\n",
              (smallest_growth - 1.0) * 100.0);
  std::printf("  largest parts grew %.1fx between generations (paper: \"3x\")\n",
              largest_growth);

  // --- Derived: Apiary tile capacity per part. ---
  // Per-tile static cost = router + NI + monitor; tiles of 100k user cells.
  const ResourceCosts costs;
  const uint64_t per_tile_static = Router::LogicCellCost(8) + NetworkInterface::LogicCellCost() +
                                   MonitorCellCost(costs, 64);
  const uint64_t tile_user_cells = 100000;
  const uint64_t board_static = costs.eth_mac_100g + costs.memory_controller;

  Table derived("Derived: how many 100k-cell Apiary tiles fits each part");
  derived.SetHeader({"Part", "Logic Cells", "Tiles", "Static cells", "Static %"});
  for (const FpgaPart& part : PartCatalog()) {
    const uint64_t usable = part.logic_cells > board_static ? part.logic_cells - board_static : 0;
    const uint64_t tiles = usable / (per_tile_static + tile_user_cells);
    const uint64_t static_total = board_static + tiles * per_tile_static;
    derived.AddRow({part.part_number, Table::Int(part.logic_cells), Table::Int(tiles),
                    Table::Int(static_total),
                    Table::Num(100.0 * static_total / part.logic_cells, 1)});
  }
  derived.Print();
  std::printf(
      "\nreading: the current generation's largest part hosts ~4x the tiles of the\n"
      "previous generation's largest — the multi-accelerator capacity that motivates\n"
      "an FPGA OS (Section 2).\n");
  return 0;
}
