#include "src/sim/sim_context.h"

#include <cassert>

namespace apiary {

SimContext::SimContext() : arena_(new PayloadArena) {}

SimContext::~SimContext() {
  // Slots first (a PacketPool's freelist packets release payload chunks as
  // they are deleted), then the arena, which may outlive us in drain mode
  // if any PayloadBuf is still holding a chunk.
  for (int id = kMaxSlots - 1; id >= 0; --id) {
    if (slots_[id].value != nullptr && slots_[id].dtor != nullptr) {
      slots_[id].dtor(slots_[id].value);
      slots_[id].value = nullptr;
    }
  }
  arena_->Retire();
}

void* SimContext::slot(int id) const {
  assert(id >= 0 && id < kMaxSlots);
  return slots_[id].value;
}

void SimContext::set_slot(int id, void* value, SlotDtor dtor) {
  assert(id >= 0 && id < kMaxSlots);
  assert(slots_[id].value == nullptr);  // Slots are claim-once.
  slots_[id].value = value;
  slots_[id].dtor = dtor;
}

void SimContext::SetLogSink(LogSink sink, void* user) {
  log_sink_ = sink;
  log_sink_user_ = user;
}

}  // namespace apiary
