// The Apiary memory service: segment allocation and access, hosted on a
// tile and reached by messages like any other service (Sections 4.3, 4.6).
//
// Allocation mints a memory capability into the *requester's* monitor (the
// service is trusted OS logic and uses the kernel's management interface).
// Read/write requests must present the capability: the sending monitor
// attaches a SegmentGrant, and this service enforces segment bounds — a wild
// access is answered with kSegFault, never performed.
#ifndef SRC_SERVICES_MEMORY_SERVICE_H_
#define SRC_SERVICES_MEMORY_SERVICE_H_

#include <deque>
#include <map>
#include <memory>

#include "src/core/accelerator.h"
#include "src/core/kernel.h"
#include "src/mem/memory_controller.h"
#include "src/noc/rate_limiter.h"
#include "src/services/opcodes.h"
#include "src/stats/summary.h"

namespace apiary {

class MemoryService : public Accelerator {
 public:
  MemoryService(ApiaryOs* os, MemoryBackend* memory) : os_(os), memory_(memory) {}

  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override;
  // The tick only submits/completes in-flight DRAM operations; the memory
  // model itself (registered separately) pins the completion cycles. With
  // deferred (quota-blocked) accesses queued, the next window boundary is
  // when allowance returns.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override;

  std::string name() const override { return "memory_service"; }
  uint32_t LogicCellCost() const override { return 15000; }

  // Memory-channel share for one app: at most `ops_per_window` read/write
  // operations per `window_cycles` window. Accesses beyond the share are
  // deferred (bounded queue) and served when the window rolls — quota
  // pressure degrades to latency, not loss. A zero `ops_per_window` clears
  // the share. Alloc/free/share are control-plane and stay unmetered.
  void SetAppShare(AppId app, uint64_t ops_per_window, Cycle window_cycles);

  // Data-plane operations admitted for `app` since boot (for per-tenant
  // metering; deterministic).
  uint64_t AppOps(AppId app) const;

  const CounterSet& counters() const { return counters_; }

 private:
  struct PendingAccess {
    Message request;           // Retained so we can Reply on completion.
    std::vector<uint8_t> buffer;
    bool is_write = false;
    bool submitted = false;
    bool complete = false;
    uint64_t addr = 0;
  };

  void HandleAlloc(const Message& msg, TileApi& api);
  void HandleFree(const Message& msg, TileApi& api);
  void HandleShare(const Message& msg, TileApi& api);
  void HandleAccess(const Message& msg, TileApi& api, bool is_write);
  void ReplyError(const Message& msg, TileApi& api, MsgStatus status);

  // True when `app` has share allowance at `now` (unmetered apps always do).
  bool ShareAllows(AppId app, Cycle now);
  // Validated access admitted past the share check: charge and queue it.
  void AdmitAccess(const Message& msg, bool is_write, Cycle now);

  ApiaryOs* os_;
  MemoryBackend* memory_;
  // In-flight DRAM operations, replied to in completion order.
  std::deque<std::shared_ptr<PendingAccess>> pending_;
  // Per-app channel shares and the deferral queue for over-quota accesses.
  // Bounded: past the bound the service answers kBackpressure so a flooding
  // app throttles itself instead of wedging the service.
  std::map<AppId, WindowMeter> shares_;
  struct DeferredAccess {
    Message request;
    bool is_write = false;
  };
  std::deque<DeferredAccess> deferred_;
  static constexpr size_t kMaxDeferred = 64;
  std::map<AppId, uint64_t> app_ops_;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_SERVICES_MEMORY_SERVICE_H_
