// Plain-text table renderer used by every bench binary to print paper-style
// rows (and optional CSV for post-processing).
#ifndef SRC_STATS_TABLE_H_
#define SRC_STATS_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace apiary {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  // Sets the column headers. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Int(uint64_t v);

  // Renders with aligned columns to `out` (default stdout).
  void Print(std::FILE* out = stdout) const;

  // Renders as CSV (header + rows).
  std::string ToCsv() const;

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace apiary

#endif  // SRC_STATS_TABLE_H_
