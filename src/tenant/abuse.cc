#include "src/tenant/abuse.h"

#include <algorithm>

#include "src/core/message.h"
#include "src/services/opcodes.h"

namespace apiary {

const char* AttackKindName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kFlitFlood:
      return "flit_flood";
    case AttackKind::kReconfigThrash:
      return "reconfig_thrash";
    case AttackKind::kCapProbe:
      return "cap_probe";
    case AttackKind::kWedgeLoop:
      return "wedge_loop";
  }
  return "unknown";
}

AbuseCampaign& AbuseCampaign::FlitFlood(Cycle at, Cycle duration) {
  phases_.push_back(AbusePhase{AttackKind::kFlitFlood, at, duration, 0});
  return *this;
}

AbuseCampaign& AbuseCampaign::ReconfigThrash(Cycle at, Cycle duration, Cycle period) {
  phases_.push_back(AbusePhase{AttackKind::kReconfigThrash, at, duration, period});
  return *this;
}

AbuseCampaign& AbuseCampaign::CapProbe(Cycle at, Cycle duration) {
  phases_.push_back(AbusePhase{AttackKind::kCapProbe, at, duration, 0});
  return *this;
}

AbuseCampaign& AbuseCampaign::WedgeLoop(Cycle at, Cycle duration, Cycle period) {
  phases_.push_back(AbusePhase{AttackKind::kWedgeLoop, at, duration, period});
  return *this;
}

AbuseDriver::AbuseDriver(ApiaryOs* os, AbuseCampaign campaign)
    : os_(os), campaign_(std::move(campaign)), rng_(campaign_.seed()) {
  os_->sim().Register(this);
}

void AbuseDriver::ConfigureThrash(ReconfigScheduler* scheduler, TileId tile,
                                  AccelFactory factory) {
  thrash_scheduler_ = scheduler;
  thrash_tile_ = tile;
  thrash_factory_ = std::move(factory);
}

void AbuseDriver::ConfigureWedge(TileId tile) { wedge_tile_ = tile; }

bool AbuseDriver::PhaseActive(AttackKind kind, Cycle now, Cycle* period) const {
  for (const AbusePhase& p : campaign_.phases()) {
    if (p.kind == kind && now >= p.at && now - p.at < p.duration) {
      if (period != nullptr) {
        *period = p.period;
      }
      return true;
    }
  }
  return false;
}

void AbuseDriver::Tick(Cycle now) {
  now_ = now;
  for (int k = 0; k < kNumAttackKinds; ++k) {
    const bool was = active_[k];
    active_[k] = PhaseActive(static_cast<AttackKind>(k), now, nullptr);
    if (active_[k] && !was) {
      counters_.Add("abuse.phases_started");
    }
  }

  // Reconfig thrash: keep the tenant's scheduler saturated with alternating
  // load/teardown jobs on the thrash tile. With an ICAP rate quota in
  // place the scheduler throttles this loop; without one it contends for
  // the port every time the previous job finishes.
  Cycle thrash_period = 0;
  if (PhaseActive(AttackKind::kReconfigThrash, now, &thrash_period) &&
      thrash_scheduler_ != nullptr && !thrash_scheduler_->busy() &&
      !thrash_job_pending_) {
    if (os_->tile(thrash_tile_).vacant()) {
      thrash_job_pending_ = true;
      counters_.Add("abuse.thrash_loads");
      thrash_scheduler_->ScheduleLoad(
          thrash_tile_, [this] { return thrash_factory_(); },
          [this](TileId, ServiceId, bool ok) {
            thrash_job_pending_ = false;
            thrash_loaded_ = ok;
          });
    } else if (thrash_loaded_) {
      thrash_job_pending_ = true;
      counters_.Add("abuse.thrash_teardowns");
      thrash_scheduler_->ScheduleTeardown(
          thrash_tile_, [] { return true; },
          [this](TileId, bool) {
            thrash_job_pending_ = false;
            thrash_loaded_ = false;
          });
    }
  }

  // Wedge loop: upset the configured tile on a seeded cadence. Each wedge
  // silences the accelerator; the watchdog/supervisor pair pays the
  // recovery bill — which is exactly the resource the attack targets.
  Cycle wedge_period = 0;
  if (PhaseActive(AttackKind::kWedgeLoop, now, &wedge_period) &&
      wedge_tile_ != kInvalidTile && now >= next_wedge_) {
    if (!os_->tile(wedge_tile_).reconfiguring() && !os_->tile(wedge_tile_).seu_wedged() &&
        os_->monitor(wedge_tile_).fault_state() == TileFaultState::kHealthy) {
      os_->tile(wedge_tile_).InjectSeuWedge();
      counters_.Add("abuse.wedges_injected");
    }
    const Cycle base = wedge_period == 0 ? 1 : wedge_period;
    next_wedge_ = now + base + rng_.NextBelow(base / 4 + 1);
  }
}

Cycle AbuseDriver::NextActivity(Cycle now) const {
  for (int k = 0; k < kNumAttackKinds; ++k) {
    if (PhaseActive(static_cast<AttackKind>(k), now, nullptr)) {
      return now;  // Mid-phase: poll schedulers / flags every cycle.
    }
  }
  Cycle next = kNoActivity;
  for (const AbusePhase& p : campaign_.phases()) {
    if (p.at > now) {
      next = std::min(next, p.at);
    }
  }
  return next;
}

void FloodAttacker::Tick(TileApi& api) {
  if (active_ == nullptr || !*active_ || victim_ == kInvalidCapRef) {
    return;
  }
  // Saturate: keep sending until the monitor or the NI refuses.
  while (true) {
    Message msg;
    msg.opcode = kOpAppBase;
    msg.payload.assign(message_bytes_, 0x5a);
    const SendResult r = api.Send(std::move(msg), victim_);
    if (r.ok()) {
      ++sent_;
      continue;
    }
    if (r.status == MsgStatus::kRateLimited) {
      ++rate_limited_;
    } else if (r.status == MsgStatus::kBackpressure) {
      ++backpressured_;
    }
    break;
  }
}

void ProbeAttacker::OnMessage(const Message& msg, TileApi& api) {
  (void)api;
  if (msg.kind != MsgKind::kResponse) {
    return;
  }
  if (msg.status == MsgStatus::kOk && !msg.payload.empty()) {
    ++leaked_;  // A data-bearing answer to a forged ref: isolation broke.
  } else {
    ++denied_;
  }
}

void ProbeAttacker::Tick(TileApi& api) {
  if (active_ == nullptr || !*active_ || api.now() < next_probe_) {
    return;
  }
  next_probe_ = api.now() + probe_period_;
  // Forge endpoint refs by cycling (slot, generation) pairs; the local
  // monitor's table lookup should refuse every one of them.
  ++attempts_;
  Message probe;
  probe.opcode = kOpAppBase;
  probe.payload = {0xde, 0xad};
  const CapRef forged = MakeCapRef(probe_cursor_ % 64, (probe_cursor_ / 64) % 16);
  probe_cursor_ = (probe_cursor_ + 1) % (num_tiles_ * 64 * 16);
  if (!api.Send(std::move(probe), forged).ok()) {
    ++denied_;
  }
}

}  // namespace apiary
