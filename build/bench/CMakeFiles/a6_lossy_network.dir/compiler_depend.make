# Empty compiler generated dependencies file for a6_lossy_network.
# This may be replaced when dependencies are built.
