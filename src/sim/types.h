// Fundamental typedefs shared across the Apiary simulation.
#ifndef SRC_SIM_TYPES_H_
#define SRC_SIM_TYPES_H_

#include <cstdint>

namespace apiary {

// Simulated time, measured in clock cycles of the single global clock domain.
// The board model maps cycles to nanoseconds via its configured frequency.
using Cycle = uint64_t;

// Sentinel returned by NextActivity hooks (Clocked, Accelerator) meaning
// "idle until external input arrives" — the block schedules nothing on its
// own and only wakes because some other (active) block or event pushes work
// into it.
inline constexpr Cycle kNoActivity = ~Cycle{0};

// Identifies a tile on the NoC. Tiles are numbered row-major over the mesh.
using TileId = uint32_t;

// Sentinel for "no tile" / broadcast-invalid destinations.
inline constexpr TileId kInvalidTile = 0xffffffffu;

// Identifies a logical service name (the API-level destination in Section 4.3
// of the paper). Logical ids are resolved to TileIds by the per-tile monitor.
using ServiceId = uint32_t;

inline constexpr ServiceId kInvalidService = 0xffffffffu;

// Identifies a process: one user context running on one accelerator (4.2).
using ProcessId = uint32_t;

// Identifies an application: a set of mutually trusting processes (4.1).
using AppId = uint32_t;

inline constexpr AppId kInvalidApp = 0xffffffffu;

// Index of a capability reference inside a tile's partitioned capability
// table. The accelerator only ever holds a CapRef, never the capability
// itself (4.6).
using CapRef = uint32_t;

inline constexpr CapRef kInvalidCapRef = 0xffffffffu;

}  // namespace apiary

#endif  // SRC_SIM_TYPES_H_
