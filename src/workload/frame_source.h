// Synthetic video frame generation — the substitute for real video traces
// (see DESIGN.md's substitution table). Frames mix smooth gradients (highly
// compressible, like flat regions), moving edges and pseudo-random texture,
// so the DCT encoder and LZ compressor see realistic coefficient and match
// statistics.
#ifndef SRC_WORKLOAD_FRAME_SOURCE_H_
#define SRC_WORKLOAD_FRAME_SOURCE_H_

#include <cstdint>
#include <vector>

#include "src/sim/payload_buf.h"

namespace apiary {

// Returns width*height grayscale pixels for frame `frame_index` of a scene
// seeded by `seed`. Consecutive indices produce temporally coherent motion.
std::vector<uint8_t> GenerateFrame(uint32_t width, uint32_t height, uint64_t seed,
                                   uint64_t frame_index);

// Serializes a frame into the video encoder's request payload
// (u32 width, u32 height, pixels).
PayloadBuf FrameToRequestPayload(uint32_t width, uint32_t height,
                                           const std::vector<uint8_t>& pixels);

}  // namespace apiary

#endif  // SRC_WORKLOAD_FRAME_SOURCE_H_
