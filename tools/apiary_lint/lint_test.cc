// Tests for apiary_lint: library-level checks against in-memory sources,
// plus end-to-end runs of the binary against the testdata/ fixture trees
// (exit codes and which check fired).
#include "tools/apiary_lint/lint.h"

#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace apiary {
namespace lint {
namespace {

std::vector<Finding> LintOne(const std::string& path, const std::string& content) {
  std::vector<SourceFile> files;
  files.push_back(LexSource(path, content));
  return RunAllChecks(files, DefaultConfig());
}

std::vector<Finding> LintMany(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  std::vector<SourceFile> files;
  for (const auto& [path, content] : sources) {
    files.push_back(LexSource(path, content));
  }
  return RunAllChecks(files, DefaultConfig());
}

bool HasCheck(const std::vector<Finding>& findings, const std::string& check) {
  for (const auto& finding : findings) {
    if (finding.check == check) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------------

TEST(Lexer, StripsCommentsAndStrings) {
  const auto findings = LintOne("src/noc/x.cc",
                                "// rand() and time(nullptr) in a comment\n"
                                "/* std::random_device in a block comment */\n"
                                "void f() {\n"
                                "  const char* s = \"srand(1) in a string\";\n"
                                "  char c = '\\'';\n"
                                "}\n");
  EXPECT_TRUE(findings.empty()) << findings.size();
}

TEST(Lexer, BlockCommentSpansLines) {
  const auto findings = LintOne("src/noc/x.cc",
                                "/* begin\n"
                                "   rand();\n"
                                "   end */\n"
                                "void f() {\n"
                                "  int x = 0;\n"
                                "  (void)x;\n"
                                "}\n");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// apiary-determinism.
// ---------------------------------------------------------------------------

TEST(Determinism, FlagsAmbientRandomnessAndWallClock) {
  const auto findings = LintOne("src/noc/x.cc",
                                "void f() {\n"
                                "  std::random_device rd;\n"
                                "  srand(42);\n"
                                "  int r = rand();\n"
                                "  auto t = std::chrono::steady_clock::now();\n"
                                "  long w = time(nullptr);\n"
                                "}\n");
  ASSERT_EQ(findings.size(), 5u);
  for (const auto& finding : findings) {
    EXPECT_EQ(finding.check, "apiary-determinism");
  }
  EXPECT_EQ(findings[0].line, 2);
}

TEST(Determinism, DoesNotFlagLookalikeIdentifiers) {
  const auto findings = LintOne("src/noc/x.cc",
                                "int hold_time(int x);\n"
                                "int operand(int x);\n"
                                "void f() {\n"
                                "  int y = hold_time(3);\n"
                                "  int z = rng.rand();\n"   // member access: not ::rand
                                "  int w = sim.time();\n"   // simulator time accessor
                                "  (void)y; (void)z; (void)w;\n"
                                "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(Determinism, FlagsHashContainersOnlyInSrc) {
  EXPECT_TRUE(HasCheck(LintOne("src/core/x.h", "std::unordered_map<int, int> m_;\n"),
                       "apiary-determinism"));
  EXPECT_TRUE(LintOne("tests/x.cc", "std::unordered_map<int, int> m;\n").empty());
  EXPECT_TRUE(LintOne("bench/x.cc", "std::unordered_set<int> s;\n").empty());
}

TEST(Determinism, ExemptsStatsAndTheRngItself) {
  EXPECT_FALSE(HasCheck(LintOne("src/stats/x.cc", "std::unordered_map<int, int> m;\n"),
                        "apiary-determinism"));
  EXPECT_FALSE(HasCheck(
      LintOne("src/sim/random.cc", "uint64_t seed = 1; // rand() replacement\n"),
      "apiary-determinism"));
}

TEST(Determinism, NolintSuppressions) {
  // Matching check name on the line.
  EXPECT_FALSE(HasCheck(
      LintOne("src/core/x.cc",
              "std::unordered_map<int, int> m_;  // NOLINT(apiary-determinism)\n"),
      "apiary-determinism"));
  // Bare NOLINT suppresses everything on the line.
  EXPECT_FALSE(HasCheck(
      LintOne("src/core/x.cc", "std::unordered_map<int, int> m_;  // NOLINT\n"),
      "apiary-determinism"));
  // NOLINTNEXTLINE applies to the following line.
  EXPECT_FALSE(HasCheck(LintOne("src/core/x.cc",
                                "// NOLINTNEXTLINE(apiary-determinism)\n"
                                "std::unordered_map<int, int> m_;\n"),
                        "apiary-determinism"));
  // A different check's NOLINT does not suppress.
  EXPECT_TRUE(HasCheck(
      LintOne("src/core/x.cc",
              "std::unordered_map<int, int> m_;  // NOLINT(apiary-layering)\n"),
      "apiary-determinism"));
}

// ---------------------------------------------------------------------------
// apiary-layering.
// ---------------------------------------------------------------------------

TEST(Layering, AllowsDeclaredEdges) {
  EXPECT_TRUE(LintOne("src/mem/x.cc",
                      "#include \"src/mem/dram.h\"\n"
                      "#include \"src/sim/types.h\"\n"
                      "#include \"src/stats/summary.h\"\n")
                  .empty());
}

TEST(Layering, BlocksAccelFromMemAndNoc) {
  const auto findings = LintOne("src/accel/x.cc",
                                "#include \"src/mem/dram.h\"\n"
                                "#include \"src/noc/packet.h\"\n"
                                "#include \"src/core/accelerator.h\"\n");
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_TRUE(HasCheck(findings, "apiary-layering"));
}

TEST(Layering, OpcodeAbiHeaderIsExemptEverywhere) {
  EXPECT_TRUE(LintOne("src/accel/x.cc", "#include \"src/services/opcodes.h\"\n").empty());
}

TEST(Layering, BlocksBaselineFromServices) {
  EXPECT_TRUE(HasCheck(LintOne("src/baseline/x.cc",
                               "#include \"src/services/transport.h\"\n"),
                       "apiary-layering"));
}

TEST(Layering, OrchSeesServicesAndCore) {
  EXPECT_TRUE(LintOne("src/orch/x.cc",
                      "#include \"src/core/kernel.h\"\n"
                      "#include \"src/fpga/board.h\"\n"
                      "#include \"src/orch/placer.h\"\n"
                      "#include \"src/services/supervisor.h\"\n"
                      "#include \"src/sim/clocked.h\"\n"
                      "#include \"src/stats/summary.h\"\n")
                  .empty());
}

TEST(Layering, BlocksAccelAndBaselineFromOrch) {
  EXPECT_TRUE(HasCheck(LintOne("src/accel/x.cc",
                               "#include \"src/orch/autoscaler.h\"\n"),
                       "apiary-layering"));
  EXPECT_TRUE(HasCheck(LintOne("src/baseline/x.cc",
                               "#include \"src/orch/placer.h\"\n"),
                       "apiary-layering"));
}

TEST(Layering, TenantSeesOrchServicesAndNoc) {
  EXPECT_TRUE(LintOne("src/tenant/x.cc",
                      "#include \"src/core/kernel.h\"\n"
                      "#include \"src/noc/rate_limiter.h\"\n"
                      "#include \"src/orch/reconfig_scheduler.h\"\n"
                      "#include \"src/services/memory_service.h\"\n"
                      "#include \"src/tenant/tenant.h\"\n")
                  .empty());
}

TEST(Layering, BlocksTenantAndAccelFromEachOther) {
  EXPECT_TRUE(HasCheck(LintOne("src/tenant/x.cc",
                               "#include \"src/accel/echo.h\"\n"),
                       "apiary-layering"));
  EXPECT_TRUE(HasCheck(LintOne("src/accel/x.cc",
                               "#include \"src/tenant/tenant.h\"\n"),
                       "apiary-layering"));
}

TEST(Layering, BlocksOrchFromNocAndMem) {
  const auto findings = LintOne("src/orch/x.cc",
                                "#include \"src/mem/dram.h\"\n"
                                "#include \"src/noc/packet.h\"\n");
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_TRUE(HasCheck(findings, "apiary-layering"));
}

TEST(Layering, SimIsTheRoot) {
  EXPECT_TRUE(HasCheck(LintOne("src/sim/x.cc", "#include \"src/core/tile.h\"\n"),
                       "apiary-layering"));
}

TEST(Layering, UndeclaredLayerIsFlagged) {
  EXPECT_TRUE(HasCheck(LintOne("src/newdir/x.cc", "#include \"src/sim/types.h\"\n"),
                       "apiary-layering"));
}

TEST(Layering, TestsAndBenchAreUnrestricted) {
  EXPECT_TRUE(LintOne("tests/x.cc", "#include \"src/noc/packet.h\"\n").empty());
  EXPECT_TRUE(LintOne("bench/x.cc", "#include \"src/mem/dram.h\"\n").empty());
}

// ---------------------------------------------------------------------------
// apiary-include-guard.
// ---------------------------------------------------------------------------

TEST(IncludeGuard, AcceptsConventionalGuard) {
  EXPECT_TRUE(LintOne("src/sim/x.h",
                      "#ifndef SRC_SIM_X_H_\n"
                      "#define SRC_SIM_X_H_\n"
                      "#endif  // SRC_SIM_X_H_\n")
                  .empty());
}

TEST(IncludeGuard, FlagsWrongAndMissingGuards) {
  EXPECT_TRUE(HasCheck(LintOne("src/sim/x.h",
                               "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n"),
                       "apiary-include-guard"));
  EXPECT_TRUE(HasCheck(LintOne("src/sim/x.h", "int x;\n"), "apiary-include-guard"));
  EXPECT_TRUE(HasCheck(LintOne("src/sim/x.h", "#pragma once\nint x;\n"),
                       "apiary-include-guard"));
}

TEST(IncludeGuard, IgnoresNonHeaders) {
  EXPECT_FALSE(HasCheck(LintOne("src/sim/x.cc", "int x;\n"), "apiary-include-guard"));
}

// ---------------------------------------------------------------------------
// apiary-debug-name.
// ---------------------------------------------------------------------------

TEST(DebugName, RequiresOverrideInClockedSubclass) {
  const std::string good =
      "class Ticker : public Clocked {\n"
      " public:\n"
      "  void Tick(Cycle now) override;\n"
      "  std::string DebugName() const override { return \"ticker\"; }\n"
      "};\n";
  const std::string bad =
      "class Ticker : public Clocked {\n"
      " public:\n"
      "  void Tick(Cycle now) override;\n"
      "};\n";
  EXPECT_TRUE(LintOne("src/sim/t.cc", good).empty());
  const auto findings = LintOne("src/sim/t.cc", bad);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "apiary-debug-name");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(DebugName, IgnoresOtherBasesAndForwardDecls) {
  EXPECT_TRUE(LintOne("src/sim/t.cc",
                      "class Clocked;\n"
                      "class Foo : public Bar {\n"
                      "};\n")
                  .empty());
}

TEST(DebugName, HandlesMultipleClassesPerFile) {
  const auto findings = LintOne("src/sim/t.cc",
                                "class A : public Clocked {\n"
                                "  std::string DebugName() const override;\n"
                                "};\n"
                                "class B : public Clocked {\n"
                                "};\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
}

// ---------------------------------------------------------------------------
// apiary-nodiscard.
// ---------------------------------------------------------------------------

TEST(Nodiscard, RequiresMarkerOnMintingApis) {
  EXPECT_TRUE(HasCheck(LintOne("src/core/capability.h", "CapRef Install(int cap);\n"),
                       "apiary-nodiscard"));
  EXPECT_FALSE(HasCheck(LintOne("src/core/capability.h",
                                "[[nodiscard]] CapRef Install(int cap);\n"),
                        "apiary-nodiscard"));
  EXPECT_FALSE(HasCheck(LintOne("src/core/capability.h",
                                "[[nodiscard]]\n"
                                "CapRef Install(int cap);\n"),
                        "apiary-nodiscard"));
}

TEST(Nodiscard, CoversOptionalReturnTypes) {
  EXPECT_TRUE(HasCheck(LintOne("src/core/kernel.h",
                               "std::optional<CapRef> GrantMemory(int tile);\n"),
                       "apiary-nodiscard"));
  EXPECT_TRUE(HasCheck(LintOne("src/mem/segment_allocator.h",
                               "std::optional<Segment> Allocate(int bytes);\n"),
                       "apiary-nodiscard"));
}

TEST(Nodiscard, CoversQuiescenceHooks) {
  // A Cycle-returning hook in the Clocked interface without [[nodiscard]]
  // means a computed wake-up cycle can be silently dropped.
  EXPECT_TRUE(HasCheck(LintOne("src/sim/clocked.h",
                               "virtual Cycle NextActivity(Cycle now) const;\n"),
                       "apiary-nodiscard"));
  EXPECT_FALSE(HasCheck(
      LintOne("src/sim/clocked.h",
              "[[nodiscard]] virtual Cycle NextActivity(Cycle now) const;\n"),
      "apiary-nodiscard"));
  // Cycle as a parameter (Tick, OnFastForward) is not a minting declaration.
  EXPECT_FALSE(HasCheck(LintOne("src/sim/clocked.h",
                                "virtual void OnFastForward(Cycle resume_cycle);\n"),
                        "apiary-nodiscard"));
}

TEST(Nodiscard, IgnoresParametersAndOtherFiles) {
  // CapRef as a parameter type is not a minting declaration.
  EXPECT_FALSE(HasCheck(LintOne("src/core/capability.h", "bool Revoke(CapRef ref);\n"),
                        "apiary-nodiscard"));
  // The policy only covers the declared minting headers.
  EXPECT_FALSE(HasCheck(LintOne("src/core/monitor.h", "CapRef Install(int cap);\n"),
                        "apiary-nodiscard"));
}

// ---------------------------------------------------------------------------
// apiary-hot-path.
// ---------------------------------------------------------------------------

TEST(HotPath, FlagsPacketAllocationAndPayloadVectors) {
  const auto findings = LintOne("src/noc/x.cc",
                                "void f() {\n"
                                "  auto p = std::make_shared<NocPacket>();\n"
                                "  NocPacket* q = new NocPacket();\n"
                                "  std::vector<uint8_t> copy(p->payload);\n"
                                "}\n");
  ASSERT_EQ(findings.size(), 3u);
  for (const auto& finding : findings) {
    EXPECT_EQ(finding.check, "apiary-hot-path");
  }
  EXPECT_NE(findings[0].message.find("PacketPool::Acquire"), std::string::npos);
}

TEST(HotPath, DoesNotFlagPooledOrPayloadBufCode) {
  EXPECT_TRUE(LintOne("src/noc/x.cc",
                      "void f(NetworkInterface* ni) {\n"
                      "  PacketRef p = ni->pool()->Acquire();\n"
                      "  PayloadBuf staging;\n"
                      "  std::vector<uint8_t> unrelated;\n"
                      "  NocPacket& packet = *p;\n"
                      "}\n")
                  .empty());
}

TEST(HotPath, ExemptsPoolAndSerializationLayer) {
  EXPECT_TRUE(LintOne("src/noc/packet_pool.cc",
                      "void f() {\n"
                      "  NocPacket* p = new NocPacket();\n"
                      "  (void)p;\n"
                      "}\n")
                  .empty());
  EXPECT_TRUE(LintOne("src/core/message.cc",
                      "void g(const Message& msg) {\n"
                      "  std::vector<uint8_t> wire(msg.payload.size());\n"
                      "}\n")
                  .empty());
}

TEST(HotPath, TestsAndBenchAreUnrestricted) {
  EXPECT_TRUE(LintOne("tests/x.cc", "PacketRef p(new NocPacket());\n").empty());
  EXPECT_TRUE(LintOne("bench/x.cc", "auto p = std::make_shared<NocPacket>();\n").empty());
}

TEST(HotPath, NolintSuppresses) {
  EXPECT_FALSE(HasCheck(
      LintOne("src/noc/x.cc",
              "NocPacket* p = new NocPacket();  // NOLINT(apiary-hot-path)\n"),
      "apiary-hot-path"));
}

TEST(HotPath, ExpressFilesBanAllocationOutsideConfigure) {
  const auto findings = LintOne("src/noc/express.cc",
                                "bool ExpressLane::TryLaunch(uint32_t tile) {\n"
                                "  path_owner_.resize(tile + 1);\n"
                                "  auto spare = std::make_unique<Corridor>();\n"
                                "  Corridor* raw = new Corridor();\n"
                                "  return true;\n"
                                "}\n");
  ASSERT_EQ(findings.size(), 3u);
  for (const auto& finding : findings) {
    EXPECT_EQ(finding.check, "apiary-hot-path");
    EXPECT_NE(finding.message.find("outside Configure()"), std::string::npos);
  }
}

TEST(HotPath, ExpressConfigureIsTheSanctionedSizingPoint) {
  EXPECT_TRUE(LintOne("src/noc/express.cc",
                      "void ExpressLane::Configure(uint32_t num_tiles) {\n"
                      "  path_owner_.assign(num_tiles, 0);\n"
                      "  zone_count_.assign(num_tiles, 0);\n"
                      "}\n"
                      "bool ExpressLane::TryLaunch(uint32_t tile) {\n"
                      "  path_owner_[tile] = 1;\n"
                      "  return true;\n"
                      "}\n")
                  .empty());
}

TEST(HotPath, ExpressDisciplineLimitedToExpressFiles) {
  // The same assign in mesh.cc is partition setup, not corridor state.
  EXPECT_TRUE(LintOne("src/noc/mesh.cc",
                      "void Mesh::EnablePartition(uint32_t n) {\n"
                      "  shard_express_.assign(n, ExpressLane{});\n"
                      "}\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// apiary-global-state.
// ---------------------------------------------------------------------------

TEST(GlobalState, FlagsNamespaceScopeGlobals) {
  const auto findings = LintOne("src/sim/x.cc",
                                "namespace apiary {\n"
                                "int g_counter = 0;\n"
                                "}  // namespace apiary\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "apiary-global-state");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("g_counter"), std::string::npos);
}

TEST(GlobalState, FlagsFunctionLocalStaticsAndMeyersSingletons) {
  const auto findings = LintOne("src/sim/x.cc",
                                "Widget& W() {\n"
                                "  static Widget w;\n"
                                "  return w;\n"
                                "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "apiary-global-state");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(GlobalState, AllowsConstConstexprAndLocals) {
  EXPECT_TRUE(LintOne("src/sim/x.cc",
                      "constexpr int kTableSize = 64;\n"
                      "const char* const kName = \"apiary\";\n"
                      "static const int kStaticConst = 3;\n"
                      "void F() {\n"
                      "  int local = kTableSize;\n"
                      "  (void)local;\n"
                      "}\n")
                  .empty());
}

TEST(GlobalState, AllowsClassMembersAndFunctionDecls) {
  EXPECT_TRUE(LintOne("src/sim/x.cc",
                      "class Widget {\n"
                      " public:\n"
                      "  int Count() const;\n"
                      " private:\n"
                      "  int count_ = 0;\n"
                      "};\n"
                      "int Total(int base);\n")
                  .empty());
}

TEST(GlobalState, FlagsClassLevelStatics) {
  const auto findings = LintOne("src/sim/x.cc",
                                "class Widget {\n"
                                "  static int live_count_;\n"
                                "};\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "apiary-global-state");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(GlobalState, EvaluatesStaticsBehindAccessLabels) {
  // ` public: static ...` on one statement still evaluates (the label is
  // stripped), anchored at the statement head.
  EXPECT_TRUE(HasCheck(LintOne("src/sim/x.cc",
                               "class Widget {\n"
                               " public:\n"
                               "  static int live_count_;\n"
                               "};\n"),
                       "apiary-global-state"));
}

TEST(GlobalState, ApiarySharedAnnotationBlesses) {
  // Same line.
  EXPECT_TRUE(LintOne("src/sim/x.cc",
                      "int g_x = 0;  // APIARY-SHARED(process): legacy counter\n")
                  .empty());
  // Line directly above.
  EXPECT_TRUE(LintOne("src/sim/x.cc",
                      "// APIARY-SHARED(process): legacy counter\n"
                      "int g_x = 0;\n")
                  .empty());
}

TEST(GlobalState, MalformedAnnotationIsItsOwnFinding) {
  const auto findings = LintOne("src/sim/x.cc",
                                "// APIARY-SHARED(process)\n"
                                "int g_x = 0;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "apiary-global-state");
  EXPECT_NE(findings[0].message.find("malformed"), std::string::npos);
}

TEST(GlobalState, OnlyAppliesUnderSrc) {
  EXPECT_TRUE(LintOne("tests/x.cc", "int g_counter = 0;\n").empty());
  EXPECT_TRUE(LintOne("bench/x.cc", "static int g_runs = 0;\n").empty());
}

TEST(GlobalState, NolintSuppresses) {
  EXPECT_FALSE(HasCheck(
      LintOne("src/sim/x.cc",
              "int g_x = 0;  // NOLINT(apiary-global-state): pending migration\n"),
      "apiary-global-state"));
}

// ---------------------------------------------------------------------------
// apiary-domain-confinement.
// ---------------------------------------------------------------------------

TEST(DomainConfinement, FlagsCrossLayerRawPointerMember) {
  const auto findings = LintMany({
      {"src/noc/router.cc", "class Router {\n};\n"},
      {"src/core/monitor.cc", "class Monitor {\n  Router* router_ = nullptr;\n};\n"},
  });
  ASSERT_TRUE(HasCheck(findings, "apiary-domain-confinement"));
  for (const auto& finding : findings) {
    if (finding.check == "apiary-domain-confinement") {
      EXPECT_EQ(finding.file, "src/core/monitor.cc");
      EXPECT_EQ(finding.line, 2);
      EXPECT_NE(finding.message.find("router_"), std::string::npos);
    }
  }
}

TEST(DomainConfinement, FlagsCrossLayerReferenceMember) {
  EXPECT_TRUE(HasCheck(
      LintMany({
          {"src/sim/clock.cc", "class ClockTree {\n};\n"},
          {"src/noc/mesh.cc", "class Mesh {\n  ClockTree& clock_;\n};\n"},
      }),
      "apiary-domain-confinement"));
}

TEST(DomainConfinement, AllowsSameLayerAndChannelTypes) {
  EXPECT_FALSE(HasCheck(
      LintMany({
          {"src/noc/router.cc", "class Router {\n};\n"},
          {"src/noc/mesh.cc", "class Mesh {\n  Router* router_ = nullptr;\n};\n"},
          // PacketPool is a registered channel type: core may hold a handle.
          {"src/core/monitor.cc",
           "class Monitor {\n  PacketPool* pool_ = nullptr;\n};\n"},
      }),
      "apiary-domain-confinement"));
}

TEST(DomainConfinement, IgnoresValueMembersLocalsAndForwardDecls) {
  EXPECT_FALSE(HasCheck(
      LintMany({
          {"src/noc/router.cc", "class Router {\n};\n"},
          {"src/core/monitor.cc",
           "class Router;\n"              // Forward decl is not a definition.
           "class Monitor {\n"
           "  Router by_value_;\n"        // Value member: no raw aliasing.
           "};\n"
           "void F(Router* scratch) {\n"  // Parameter, not a member.
           "  (void)scratch;\n"
           "}\n"},
      }),
      "apiary-domain-confinement"));
}

TEST(DomainConfinement, AmbiguousTypeNamesAreDropped) {
  EXPECT_FALSE(HasCheck(
      LintMany({
          {"src/noc/stats.cc", "struct Ledger {\n};\n"},
          {"src/sim/stats.cc", "struct Ledger {\n};\n"},
          {"src/core/monitor.cc", "class Monitor {\n  Ledger* ledger_ = nullptr;\n};\n"},
      }),
      "apiary-domain-confinement"));
}

// ---------------------------------------------------------------------------
// apiary-sync-discipline.
// ---------------------------------------------------------------------------

TEST(SyncDiscipline, FlagsAdHocPrimitivesUnderSrc) {
  const auto findings = LintOne("src/core/x.cc",
                                "class Q {\n"
                                "  std::mutex mu_;\n"
                                "  std::atomic<int> depth_{0};\n"
                                "};\n"
                                "void F() {\n"
                                "  thread_local int depth = 0;\n"
                                "  (void)depth;\n"
                                "}\n");
  int sync_findings = 0;
  for (const auto& finding : findings) {
    if (finding.check == "apiary-sync-discipline") {
      ++sync_findings;
    }
  }
  EXPECT_EQ(sync_findings, 3);
}

TEST(SyncDiscipline, AllowsTheParallelHome) {
  EXPECT_FALSE(HasCheck(
      LintOne("src/sim/parallel/work_queue.cc",
              "class WorkQueue {\n  std::mutex mu_;\n};\n"),
      "apiary-sync-discipline"));
}

TEST(SyncDiscipline, AllowsTheSpscRingIdiomInTheParallelHome) {
  // The shipping boundary-handoff ring: atomic indices published with
  // acquire/release plus a thread-id ownership assert. All of it is the
  // reviewed-parallel-home's business, none of it may leak elsewhere.
  const std::string ring =
      "class SpscRing {\n"
      "  std::atomic<uint32_t> head_{0};\n"
      "  std::atomic<uint32_t> tail_{0};\n"
      "  std::thread::id producer_{};\n"
      "};\n";
  EXPECT_FALSE(
      HasCheck(LintOne("src/sim/parallel/spsc_ring.h", ring), "apiary-sync-discipline"));
  EXPECT_TRUE(HasCheck(LintOne("src/noc/spsc_ring.h", ring), "apiary-sync-discipline"));
}

TEST(SyncDiscipline, TestsAndBenchAreUnrestricted) {
  EXPECT_TRUE(LintOne("tests/x.cc", "std::mutex m;\n").empty());
  EXPECT_TRUE(LintOne("bench/x.cc", "std::atomic<int> a{0};\n").empty());
}

TEST(SyncDiscipline, DoesNotFlagLookalikes) {
  EXPECT_FALSE(HasCheck(
      LintOne("src/core/x.cc",
              "int thread_local_count();\n"
              "class Threads {\n};\n"),
      "apiary-sync-discipline"));
}

// ---------------------------------------------------------------------------
// apiary-wake-path.
// ---------------------------------------------------------------------------

namespace {

// A Clocked subclass whose NextActivity can go fully idle, with no wake
// call anywhere in the file.
const char kParkedQueue[] =
    "class RxQueue : public Clocked {\n"
    " public:\n"
    "  void Deliver(int item) { pending_.push_back(item); }\n"
    "  void Tick(Cycle now) override { Drain(now); }\n"
    "  Cycle NextActivity(Cycle now) const override {\n"
    "    return pending_.empty() ? kNoActivity : now;\n"
    "  }\n"
    "  std::string DebugName() const override { return \"rx\"; }\n"
    " private:\n"
    "  void Drain(Cycle now);\n"
    "  std::vector<int> pending_;\n"
    "};\n";

}  // namespace

TEST(WakePath, FlagsNoActivityWithoutVisibleWake) {
  EXPECT_TRUE(HasCheck(LintOne("src/noc/rx.h", kParkedQueue), "apiary-wake-path"));
}

TEST(WakePath, WakeCallInFileClears) {
  std::string src = kParkedQueue;
  src.insert(src.find("void Tick"), "void Poke() { RequestWake(); }\n  ");
  EXPECT_FALSE(HasCheck(LintOne("src/noc/rx.h", src), "apiary-wake-path"));
}

TEST(WakePath, EvidenceAnywhereInThePairClears) {
  // Declaration parks in the header; the wake fires in the .cc.
  EXPECT_FALSE(HasCheck(
      LintMany({{"src/noc/rx.h", kParkedQueue},
                {"src/noc/rx.cc", "void RxQueue::Drain(Cycle now) {\n"
                                  "  (void)now;\n"
                                  "  hint_.Wake();\n"
                                  "}\n"}}),
      "apiary-wake-path"));
}

TEST(WakePath, SchedulingPolicyOptOutClears) {
  std::string src = kParkedQueue;
  src.insert(src.find("void Tick"),
             "SchedPolicy SchedulingPolicy() const override {\n"
             "    return SchedPolicy::kBoundaryPoll;\n"
             "  }\n  ");
  EXPECT_FALSE(HasCheck(LintOne("src/noc/rx.h", src), "apiary-wake-path"));
}

TEST(WakePath, AnnotationNamingTheWakerBlesses) {
  std::string src = kParkedQueue;
  src.insert(src.find("  Cycle NextActivity"),
             "  // APIARY-WAKE(tile): the owning Tile wakes on NI delivery.\n");
  EXPECT_FALSE(HasCheck(LintOne("src/noc/rx.h", src), "apiary-wake-path"));
}

TEST(WakePath, MalformedAnnotationFires) {
  std::string src = kParkedQueue;
  src.insert(src.find("  Cycle NextActivity"), "  // APIARY-WAKE: missing source\n");
  const auto findings = LintOne("src/noc/rx.h", src);
  EXPECT_TRUE(HasCheck(findings, "apiary-wake-path"));
  bool saw_grammar = false;
  for (const auto& finding : findings) {
    if (finding.message.find("malformed APIARY-WAKE") != std::string::npos) {
      saw_grammar = true;
    }
  }
  EXPECT_TRUE(saw_grammar);
}

TEST(WakePath, BoundedDeclarationsAndCallSitesAreIgnored) {
  // Never returns kNoActivity: parking is always deadline-bounded.
  EXPECT_FALSE(HasCheck(
      LintOne("src/noc/timer.h",
              "class Timer : public Clocked {\n"
              " public:\n"
              "  void Tick(Cycle now) override { last_ = now; }\n"
              "  Cycle NextActivity(Cycle now) const override {\n"
              "    const Cycle at = last_ + 4;\n"
              "    return at > now ? at : now;\n"
              "  }\n"
              "  std::string DebugName() const override { return \"t\"; }\n"
              " private:\n"
              "  Cycle last_ = 0;\n"
              "};\n"),
      "apiary-wake-path"));
  // A *call* in an expression (even one mentioning kNoActivity nearby) is
  // not a definition.
  EXPECT_FALSE(HasCheck(
      LintOne("src/noc/sweep.cc",
              "Cycle Earliest(Clocked* b, Cycle now) {\n"
              "  if (b->NextActivity(now) <= now) {\n"
              "    return now;\n"
              "  }\n"
              "  return kNoActivity;\n"
              "}\n"),
      "apiary-wake-path"));
}

TEST(WakePath, TestsAndBenchAreUnrestricted) {
  EXPECT_FALSE(HasCheck(LintOne("tests/x.cc", kParkedQueue), "apiary-wake-path"));
  EXPECT_FALSE(HasCheck(LintOne("bench/x.cc", kParkedQueue), "apiary-wake-path"));
}

// ---------------------------------------------------------------------------
// apiary-nolint-reason.
// ---------------------------------------------------------------------------

TEST(NolintReason, FlagsReasonlessApiaryWaivers) {
  EXPECT_TRUE(HasCheck(
      LintOne("src/core/x.cc",
              "std::unordered_map<int, int> m_;  // NOLINT(apiary-determinism)\n"),
      "apiary-nolint-reason"));
  EXPECT_TRUE(HasCheck(LintOne("src/core/x.cc",
                               "// NOLINTNEXTLINE(apiary-determinism)\n"
                               "std::unordered_map<int, int> m_;\n"),
                       "apiary-nolint-reason"));
}

TEST(NolintReason, AcceptsReasonedWaivers) {
  EXPECT_FALSE(HasCheck(
      LintOne("src/core/x.cc",
              "std::unordered_map<int, int> m_;  "
              "// NOLINT(apiary-determinism): lookups only, never iterated\n"),
      "apiary-nolint-reason"));
}

TEST(NolintReason, BareNolintAndOtherToolsAreExempt) {
  // A bare NOLINT (no check list) is the escape hatch for other tools.
  EXPECT_FALSE(HasCheck(LintOne("src/core/x.cc", "int x = 0;  // NOLINT\n"),
                        "apiary-nolint-reason"));
  // Non-apiary check lists (clang-tidy's) are none of our business.
  EXPECT_FALSE(HasCheck(
      LintOne("src/core/x.cc",
              "int y = 0;  // NOLINT(readability-magic-numbers) "
              "APIARY-SHARED(process): fixture\n"),
      "apiary-nolint-reason"));
}

// ---------------------------------------------------------------------------
// apiary-opcode-coverage.
// ---------------------------------------------------------------------------

std::vector<SourceFile> OpcodeCorpus(bool with_handler, bool with_test) {
  std::vector<SourceFile> files;
  files.push_back(LexSource("src/services/opcodes.h",
                            "inline constexpr uint16_t kOpPing = 0x0601;\n"
                            "inline constexpr uint16_t kOpAppBase = 0x1000;\n"));
  if (with_handler) {
    files.push_back(LexSource("src/services/ping.cc", "case kOpPing: break;\n"));
  }
  files.push_back(LexSource("tests/ping_test.cc",
                            with_test ? "int x = kOpPing;\n" : "int x = 0;\n"));
  return files;
}

std::vector<Finding> OpcodeFindings(const std::vector<SourceFile>& files) {
  std::vector<Finding> out;
  for (auto& finding : RunAllChecks(files, DefaultConfig())) {
    if (finding.check == "apiary-opcode-coverage") {
      out.push_back(finding);
    }
  }
  return out;
}

TEST(OpcodeCoverage, CleanWhenHandledAndTested) {
  EXPECT_TRUE(OpcodeFindings(OpcodeCorpus(true, true)).empty());
}

TEST(OpcodeCoverage, FlagsMissingHandler) {
  const auto findings = OpcodeFindings(OpcodeCorpus(false, true));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "apiary-opcode-coverage");
  EXPECT_NE(findings[0].message.find("no dispatching handler"), std::string::npos);
  EXPECT_EQ(findings[0].file, "src/services/opcodes.h");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(OpcodeCoverage, FlagsMissingTest) {
  const auto findings = OpcodeFindings(OpcodeCorpus(true, false));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("tests/"), std::string::npos);
}

TEST(OpcodeCoverage, TestRequirementOnlyWhenCorpusHasTests) {
  std::vector<SourceFile> files;
  files.push_back(LexSource("src/services/opcodes.h",
                            "inline constexpr uint16_t kOpPing = 0x0601;\n"));
  files.push_back(LexSource("src/services/ping.cc", "case kOpPing: break;\n"));
  EXPECT_TRUE(OpcodeFindings(files).empty());
}

TEST(OpcodeCoverage, NolintOnDefinitionSuppresses) {
  std::vector<SourceFile> files;
  files.push_back(LexSource(
      "src/services/opcodes.h",
      "inline constexpr uint16_t kOpFuture = 0x07ff;  // NOLINT(apiary-opcode-coverage)\n"));
  files.push_back(LexSource("tests/t.cc", "int x = 0;\n"));
  EXPECT_TRUE(OpcodeFindings(files).empty());
}

// ---------------------------------------------------------------------------
// End-to-end fixture runs of the binary.
// ---------------------------------------------------------------------------

int RunLintBinary(const std::string& fixture, const std::vector<std::string>& paths,
                  std::string* output) {
  std::string cmd = std::string(APIARY_LINT_BIN) + " --repo-root " +
                    std::string(APIARY_LINT_TESTDATA) + "/" + fixture;
  for (const auto& path : paths) {
    cmd += " " + path;
  }
  cmd += " 2>&1";
  output->clear();
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return -1;
  }
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    *output += buffer;
  }
  const int status = pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

struct FixtureCase {
  std::string fixture;
  std::vector<std::string> paths;
  int expected_exit;
  std::string expected_check;  // Must appear in output when exit != 0.
};

TEST(Fixtures, GoodTreesAreCleanBadTreesFail) {
  const std::vector<FixtureCase> cases = {
      {"determinism/good", {"src"}, 0, ""},
      {"determinism/bad", {"src"}, 1, "apiary-determinism"},
      {"determinism/suppressed", {"src"}, 0, ""},
      {"layering/good", {"src"}, 0, ""},
      {"layering/bad", {"src"}, 1, "apiary-layering"},
      {"opcode/good", {"src", "tests"}, 0, ""},
      {"opcode/bad", {"src", "tests"}, 1, "apiary-opcode-coverage"},
      {"guard/good", {"src"}, 0, ""},
      {"guard/bad", {"src"}, 1, "apiary-include-guard"},
      {"debugname/good", {"src"}, 0, ""},
      {"debugname/bad", {"src"}, 1, "apiary-debug-name"},
      {"nodiscard/good", {"src"}, 0, ""},
      {"nodiscard/bad", {"src"}, 1, "apiary-nodiscard"},
      {"hotpath/good", {"src"}, 0, ""},
      {"hotpath/bad", {"src"}, 1, "apiary-hot-path"},
      {"hotpath/suppressed", {"src"}, 0, ""},
      {"expresspath/good", {"src"}, 0, ""},
      {"expresspath/bad", {"src"}, 1, "apiary-hot-path"},
      {"expresspath/suppressed", {"src"}, 0, ""},
      {"globalstate/good", {"src"}, 0, ""},
      {"globalstate/bad", {"src"}, 1, "apiary-global-state"},
      {"globalstate/suppressed", {"src"}, 0, ""},
      {"confinement/good", {"src"}, 0, ""},
      {"confinement/bad", {"src"}, 1, "apiary-domain-confinement"},
      {"confinement/suppressed", {"src"}, 0, ""},
      {"syncdiscipline/good", {"src"}, 0, ""},
      {"syncdiscipline/bad", {"src"}, 1, "apiary-sync-discipline"},
      {"syncdiscipline/suppressed", {"src"}, 0, ""},
      {"wakepath/good", {"src"}, 0, ""},
      {"wakepath/bad", {"src"}, 1, "apiary-wake-path"},
      {"wakepath/suppressed", {"src"}, 0, ""},
      {"nolintreason/bad", {"src"}, 1, "apiary-nolint-reason"},
  };
  for (const auto& c : cases) {
    std::string output;
    const int exit_code = RunLintBinary(c.fixture, c.paths, &output);
    EXPECT_EQ(exit_code, c.expected_exit) << c.fixture << "\n" << output;
    if (!c.expected_check.empty()) {
      EXPECT_NE(output.find(c.expected_check), std::string::npos)
          << c.fixture << "\n" << output;
    }
  }
}

TEST(Fixtures, OpcodeBadNamesBothGaps) {
  std::string output;
  const int exit_code = RunLintBinary("opcode/bad", {"src", "tests"}, &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_NE(output.find("kOpOrphan has no dispatching handler"), std::string::npos)
      << output;
  EXPECT_NE(output.find("kOpOrphan is never referenced under tests/"), std::string::npos)
      << output;
}

TEST(Fixtures, MissingPathIsAUsageError) {
  std::string output;
  EXPECT_EQ(RunLintBinary("determinism/good", {"no_such_dir"}, &output), 2) << output;
}

// Golden-file test: the CLI's stdout is byte-for-byte stable — findings
// sorted by (file, line, check), fixed ToString format, trailing summary.
// Regenerate by redirecting `apiary_lint --repo-root tools/apiary_lint/
// testdata/cli src` into tools/apiary_lint/testdata/cli/expected_output.txt.
TEST(Fixtures, CliOutputMatchesGoldenFile) {
  std::string output;
  const int exit_code = RunLintBinary("cli", {"src"}, &output);
  EXPECT_EQ(exit_code, 1) << output;
  std::ifstream golden(std::string(APIARY_LINT_TESTDATA) + "/cli/expected_output.txt",
                       std::ios::binary);
  ASSERT_TRUE(golden.good()) << "missing golden file";
  std::ostringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(output, expected.str());
}

TEST(Fixtures, JsonOutputListsFindings) {
  const std::string json_path = "lint_test_cli_out.json";  // Test CWD (build dir).
  std::string output;
  const int exit_code = RunLintBinary("cli", {"--json=" + json_path, "src"}, &output);
  EXPECT_EQ(exit_code, 1) << output;
  std::ifstream in(json_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream json;
  json << in.rdbuf();
  std::remove(json_path.c_str());
  EXPECT_NE(json.str().find("\"files_scanned\": 2"), std::string::npos) << json.str();
  EXPECT_NE(json.str().find("\"check\": \"apiary-global-state\""), std::string::npos)
      << json.str();
  EXPECT_NE(json.str().find("\"file\": \"src/noc/b.cc\""), std::string::npos)
      << json.str();
}

TEST(Fixtures, CleanTreeWritesEmptyJsonAndExitsZero) {
  const std::string json_path = "lint_test_clean_out.json";  // Test CWD (build dir).
  std::string output;
  const int exit_code =
      RunLintBinary("determinism/good", {"--json=" + json_path, "src"}, &output);
  EXPECT_EQ(exit_code, 0) << output;
  std::ifstream in(json_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream json;
  json << in.rdbuf();
  std::remove(json_path.c_str());
  EXPECT_NE(json.str().find("\"findings\": []"), std::string::npos) << json.str();
}

}  // namespace
}  // namespace lint
}  // namespace apiary
