// Bad: ad-hoc synchronization outside src/sim/parallel/.
#include <atomic>
#include <mutex>

namespace apiary {

class Queue {
 public:
  void Push(int v);

 private:
  std::mutex mu_;
  std::atomic<int> depth_{0};
};

void Spin() {
  thread_local int depth = 0;
  (void)depth;
}

}  // namespace apiary
