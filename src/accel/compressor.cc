#include "src/accel/compressor.h"

#include <span>

#include <algorithm>
#include <cstring>

#include "src/core/message.h"

namespace apiary {
namespace {

// Token stream format:
//   0x00 len  <len literal bytes>           (len in [1,255])
//   0x01 len  dist_lo dist_hi               (match of len in [4,255] at dist)
constexpr uint8_t kTokLiteral = 0x00;
constexpr uint8_t kTokMatch = 0x01;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 255;
constexpr size_t kMaxDistance = 0xffff;
constexpr int kHashBits = 15;
constexpr int kMaxChain = 32;

uint32_t HashAt(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::vector<uint8_t> LzCompress(const uint8_t* input_data, size_t input_size) {
  const std::span<const uint8_t> input(input_data, input_size);
  std::vector<uint8_t> out;
  out.reserve(input.size() / 2 + 16);
  // Header: u32 uncompressed size.
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(input.size() >> (8 * i)));
  }

  std::vector<int32_t> head(1u << kHashBits, -1);
  std::vector<int32_t> chain(input.size(), -1);

  size_t literal_start = 0;
  auto flush_literals = [&](size_t end) {
    size_t pos = literal_start;
    while (pos < end) {
      const size_t len = std::min<size_t>(255, end - pos);
      out.push_back(kTokLiteral);
      out.push_back(static_cast<uint8_t>(len));
      out.insert(out.end(), input.begin() + static_cast<ptrdiff_t>(pos),
                 input.begin() + static_cast<ptrdiff_t>(pos + len));
      pos += len;
    }
    literal_start = end;
  };

  size_t i = 0;
  while (i + kMinMatch <= input.size()) {
    const uint32_t h = HashAt(&input[i]);
    // Walk the hash chain looking for the longest usable match.
    size_t best_len = 0;
    size_t best_dist = 0;
    int32_t cand = head[h];
    for (int steps = 0; cand >= 0 && steps < kMaxChain; ++steps) {
      const size_t dist = i - static_cast<size_t>(cand);
      if (dist > kMaxDistance) {
        break;
      }
      size_t len = 0;
      const size_t max_len = std::min(kMaxMatch, input.size() - i);
      while (len < max_len && input[static_cast<size_t>(cand) + len] == input[i + len]) {
        ++len;
      }
      if (len > best_len) {
        best_len = len;
        best_dist = dist;
      }
      cand = chain[static_cast<size_t>(cand)];
    }
    chain[i] = head[h];
    head[h] = static_cast<int32_t>(i);
    if (best_len >= kMinMatch) {
      flush_literals(i);
      out.push_back(kTokMatch);
      out.push_back(static_cast<uint8_t>(best_len));
      out.push_back(static_cast<uint8_t>(best_dist));
      out.push_back(static_cast<uint8_t>(best_dist >> 8));
      // Insert hash entries inside the match so later data can reference it.
      const size_t match_end = i + best_len;
      for (size_t j = i + 1; j + kMinMatch <= input.size() && j < match_end; ++j) {
        const uint32_t hj = HashAt(&input[j]);
        chain[j] = head[hj];
        head[hj] = static_cast<int32_t>(j);
      }
      i = match_end;
      literal_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(input.size());
  return out;
}

std::vector<uint8_t> LzDecompress(const uint8_t* compressed_data, size_t compressed_size) {
  const std::span<const uint8_t> compressed(compressed_data, compressed_size);
  if (compressed.size() < 4) {
    return {};
  }
  size_t expected = 0;
  for (int i = 0; i < 4; ++i) {
    expected |= static_cast<size_t>(compressed[i]) << (8 * i);
  }
  std::vector<uint8_t> out;
  out.reserve(expected);
  size_t i = 4;
  while (i < compressed.size()) {
    const uint8_t tok = compressed[i++];
    if (tok == kTokLiteral) {
      if (i >= compressed.size()) {
        return {};
      }
      const size_t len = compressed[i++];
      if (i + len > compressed.size()) {
        return {};
      }
      out.insert(out.end(), compressed.begin() + static_cast<ptrdiff_t>(i),
                 compressed.begin() + static_cast<ptrdiff_t>(i + len));
      i += len;
    } else if (tok == kTokMatch) {
      if (i + 3 > compressed.size()) {
        return {};
      }
      const size_t len = compressed[i];
      const size_t dist = static_cast<size_t>(compressed[i + 1]) |
                          (static_cast<size_t>(compressed[i + 2]) << 8);
      i += 3;
      if (dist == 0 || dist > out.size()) {
        return {};
      }
      // Byte-at-a-time copy handles overlapping matches (RLE-style).
      for (size_t k = 0; k < len; ++k) {
        out.push_back(out[out.size() - dist]);
      }
    } else {
      return {};
    }
  }
  return out.size() == expected ? out : std::vector<uint8_t>{};
}

void CompressorAccelerator::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind != MsgKind::kRequest) {
    return;
  }
  if (msg.opcode != kOpCompress && msg.opcode != kOpDecompress) {
    Message err;
    err.opcode = msg.opcode;
    err.status = MsgStatus::kBadRequest;
    api.Reply(msg, std::move(err));
    return;
  }
  Job job;
  job.request = msg;
  job.decompress = msg.opcode == kOpDecompress;
  job.output = job.decompress ? LzDecompress(msg.payload) : LzCompress(msg.payload);
  bytes_in_ += msg.payload.size();
  bytes_out_ += job.output.size();
  const Cycle compute =
      std::max<Cycle>(1, msg.payload.size() / std::max<uint32_t>(1, bytes_per_cycle_));
  const Cycle start = std::max(engine_free_at_, api.now());
  engine_free_at_ = start + compute;
  job.done_at = engine_free_at_;
  jobs_.push_back(std::move(job));
  counters_.Add("compressor.chunks_in");
}

void CompressorAccelerator::Tick(TileApi& api) {
  while (!jobs_.empty() && jobs_.front().done_at <= api.now()) {
    Job& job = jobs_.front();
    SendResult result;
    if (next_stage_ != kInvalidCapRef && !job.decompress) {
      Message fwd;
      fwd.opcode = next_opcode_;
      fwd.payload = job.output;
      result = api.Send(std::move(fwd), next_stage_);
    } else {
      Message reply;
      reply.opcode = job.request.opcode;
      reply.payload = job.output;
      result = api.Reply(job.request, std::move(reply));
    }
    if (result.status == MsgStatus::kBackpressure ||
        result.status == MsgStatus::kRateLimited) {
      break;
    }
    if (!result.ok()) {
      counters_.Add("compressor.output_failures");
    }
    ++chunks_compressed_;
    counters_.Add("compressor.chunks_out");
    jobs_.pop_front();
  }
}

}  // namespace apiary
