// apiary_lint: a repo-native static analyzer for the Apiary codebase.
//
// The simulator's core guarantees — byte-identical replay from a seed,
// Monitor-interposed accelerator isolation, and a fully-handled stable
// service ABI — are invariants the C++ compiler cannot see. This analyzer
// enforces them mechanically:
//
//   apiary-determinism     no ambient randomness / wall-clock / hash-order
//                          dependence in simulation state
//   apiary-layering        the allowed include DAG between src/ subsystems
//   apiary-opcode-coverage every kOp* constant has a handler and a test
//   apiary-include-guard   SRC_PATH_H_ include-guard convention
//   apiary-debug-name      Clocked subclasses override DebugName()
//   apiary-nodiscard       capability/segment-minting APIs are [[nodiscard]]
//   apiary-hot-path        packets come from PacketPool, payloads ride in
//                          PayloadBuf (no per-message heap allocation); the
//                          express corridor planner/reservation files never
//                          allocate outside one-time Configure()
//   apiary-global-state    no unannotated process-global mutable state under
//                          src/ (survivors carry APIARY-SHARED(<domain>))
//   apiary-domain-confinement
//                          raw pointer/reference members may not cross the
//                          sim/noc/core domain boundary except through
//                          registered channel types
//   apiary-sync-discipline ad-hoc std::mutex/std::atomic/thread_local are
//                          banned under src/ outside src/sim/parallel/
//   apiary-wake-path       a NextActivity() that can declare kNoActivity
//                          ("idle until external input") must show its wake
//                          path or name its waker with APIARY-WAKE
//   apiary-nolint-reason   every NOLINT(apiary-*) carries a ": <reason>"
//
// Any finding is suppressible in-line with clang-tidy style markers:
//   // NOLINT(apiary-<check>): <reason>          suppress on this line
//   // NOLINTNEXTLINE(apiary-<check>): <reason>  suppress on the next line
// A bare NOLINT (no parenthesized list) suppresses every apiary check on
// the line. Suppressions naming an apiary check must carry a ": <reason>"
// suffix (enforced by apiary-nolint-reason).
//
// A block that declares kNoActivity parks until someone wakes it; state
// mutated behind a parked block's back is exactly the bug class the
// active-set scheduler turns from "perf loss" into "missed work". When the
// wake path is not visible in the block's own .h/.cc pair, the waker is
// named on or directly above the NextActivity definition:
//   // APIARY-WAKE(<source>): <reason>
// where <source> names who ends the quiescence (e.g. "tile", "owner",
// "self") and <reason> says how the input reaches a Tick.
//
// Global mutable state that is *deliberately* shared (a process-wide
// observability sink, an ablation toggle) is kept alive with the sanctioned
// annotation on or directly above the declaration:
//   // APIARY-SHARED(<domain>): <reason>
// where <domain> names the sharing scope (e.g. "process") and <reason> says
// why the state cannot be domain-local. The annotation is the audit trail
// that makes ROADMAP item 1's domain decomposition mechanical.
//
// Implementation: a hand-rolled lexer strips comments and string/char
// literals (so commented-out code never fires) and records NOLINT markers,
// then per-file line scans plus one corpus-wide include-graph/opcode pass
// produce findings. No libclang dependency.
#ifndef TOOLS_APIARY_LINT_LINT_H_
#define TOOLS_APIARY_LINT_LINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace apiary {
namespace lint {

struct Finding {
  std::string file;   // Repo-relative path, '/'-separated.
  int line = 0;       // 1-based; 0 for whole-file findings.
  std::string check;  // e.g. "apiary-determinism".
  std::string message;

  std::string ToString() const;
};

// One APIARY-SHARED annotation parsed from a comment.
enum class SharedAnnotation : uint8_t {
  kNone = 0,       // No annotation on this line.
  kOk = 1,         // APIARY-SHARED(<domain>): <reason> — well-formed.
  kMalformed = 2,  // Marker present but domain or reason missing.
};

// A lexed source file: raw lines (for include parsing and NOLINT markers)
// plus "code" lines with comments and string/char literals blanked out.
struct SourceFile {
  std::string path;  // Repo-relative, '/'-separated.
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
  // Per-line suppression lists; "*" suppresses every apiary check.
  std::vector<std::vector<std::string>> nolint;
  // Per-line APIARY-SHARED(<domain>): <reason> annotations. An annotation
  // blesses the global declared on its own line or the line below it.
  std::vector<SharedAnnotation> shared;

  bool IsSuppressed(int line, const std::string& check) const;
  // True when `line` (1-based) carries or sits under a well-formed
  // APIARY-SHARED annotation.
  bool IsSharedAnnotated(int line) const;
};

// Lexes `content` as C++ source: strips // and /* */ comments and string
// and character literals from the code view, records NOLINT markers.
SourceFile LexSource(std::string path, const std::string& content);

// Reads and lexes a file from disk. Returns false on I/O failure.
bool LoadSource(const std::string& absolute_path, const std::string& repo_relative_path,
                SourceFile* out);

struct LintConfig {
  // --- apiary-determinism ---
  // Fully-qualified identifiers banned outright (leading+trailing
  // identifier boundary).
  std::vector<std::string> banned_identifiers;
  // Function names banned when called: identifier boundary before, '(' after.
  std::vector<std::string> banned_calls;
  // Banned substrings (trailing boundary only), e.g. "_clock::now" which
  // catches every std::chrono clock.
  std::vector<std::string> banned_suffixes;
  // Hash-ordered containers banned in simulation state (src/ only).
  std::vector<std::string> banned_containers;
  // Path prefixes exempt from the determinism check (the seeded RNG itself,
  // and stats/ which only aggregates).
  std::vector<std::string> determinism_exempt_prefixes;
  // Where randomness is supposed to come from (for the finding message).
  std::string randomness_home;

  // --- apiary-layering ---
  // Allowed include edges: src/<dir>/ may include src/<d>/ for each d in
  // layering[dir]. A src/ subdirectory absent from the map is itself a
  // violation (every layer must be declared).
  std::map<std::string, std::vector<std::string>> layering;
  // Exact include targets allowed from anywhere (the stable wire-ABI
  // headers; analogous to a syscall-number header visible to userland).
  std::vector<std::string> layering_exempt_includes;

  // --- apiary-hot-path ---
  // Path prefixes where the hot-path memory discipline does not apply: the
  // pool/serialization layer itself, which is the one place allowed to
  // allocate packets and touch raw wire vectors.
  std::vector<std::string> hot_path_exempt_prefixes;
  // Path prefixes holding the express corridor planner and reservation
  // structures. Corridor launch, conflict scanning, and materialization all
  // run on the executed-cycle path, so these files may not allocate at all
  // outside the one-time Configure() sizing: no new/make_unique/make_shared
  // and no container assign/resize/reserve. Reservation state is sized once
  // and recycled in place.
  std::vector<std::string> express_hot_path_prefixes;

  // --- apiary-opcode-coverage ---
  // Path suffixes of the headers that define the opcode ABI.
  std::vector<std::string> opcode_def_files;

  // --- apiary-nodiscard ---
  // Path suffixes of headers whose minting APIs must be [[nodiscard]].
  std::vector<std::string> nodiscard_files;
  // Return types that mint capabilities/segments.
  std::vector<std::string> nodiscard_types;

  // --- apiary-global-state ---
  // Path prefixes exempt from the global-state check (none by default: the
  // APIARY-SHARED annotation is the only sanctioned escape).
  std::vector<std::string> global_state_exempt_prefixes;

  // --- apiary-domain-confinement ---
  // The layers whose types form sharding domains: a raw pointer/reference
  // member to one of these types from a *different* layer is a cross-domain
  // edge that threads would race on.
  std::vector<std::string> confined_layers;
  // Registered channel/handle types that are the sanctioned way to cross a
  // domain boundary (the NI injection surface, the simulator substrate, the
  // per-domain context, intrusive packet refs).
  std::vector<std::string> confinement_channel_types;

  // --- apiary-sync-discipline ---
  // Synchronization identifiers banned under src/.
  std::vector<std::string> banned_sync_identifiers;
  // The one reviewed home where synchronization may live.
  std::vector<std::string> sync_allowed_prefixes;

  // --- apiary-wake-path ---
  // Substrings that count as a visible wake integration in a block's
  // .h/.cc pair: firing or handing out a wake, or opting out of parking
  // via a SchedulingPolicy override.
  std::vector<std::string> wake_evidence;
};

// The Apiary repo policy (see tools/apiary_lint/README.md for rationale).
LintConfig DefaultConfig();

// Per-file checks. Findings are appended unfiltered; RunAllChecks applies
// NOLINT suppression.
void CheckDeterminism(const SourceFile& file, const LintConfig& config,
                      std::vector<Finding>* findings);
void CheckLayering(const SourceFile& file, const LintConfig& config,
                   std::vector<Finding>* findings);
void CheckIncludeGuard(const SourceFile& file, const LintConfig& config,
                       std::vector<Finding>* findings);
void CheckDebugName(const SourceFile& file, const LintConfig& config,
                    std::vector<Finding>* findings);
void CheckNodiscard(const SourceFile& file, const LintConfig& config,
                    std::vector<Finding>* findings);
// Hot-path memory discipline (DESIGN.md): under src/, NocPackets must come
// from PacketPool::Acquire() — never std::make_shared<NocPacket> or a bare
// new NocPacket — and message payloads ride in PayloadBuf, so a
// std::vector<uint8_t> touching a payload reintroduces per-message heap
// allocation. The pool/serialization layer itself is exempt.
void CheckHotPath(const SourceFile& file, const LintConfig& config,
                  std::vector<Finding>* findings);
// Shared-state analysis (DESIGN.md "Domain confinement"): under src/, any
// non-const namespace-scope global, function-local static mutable (Meyers
// singleton included), or mutable static data member is process-shared
// state that a sharded simulation would race on. Survivors must carry an
// // APIARY-SHARED(<domain>): <reason> annotation on or above the line.
void CheckGlobalState(const SourceFile& file, const LintConfig& config,
                      std::vector<Finding>* findings);
// Synchronization discipline: ad-hoc std::mutex/std::atomic/thread_local
// under src/ is banned outside the allow-listed src/sim/parallel/ home, so
// every synchronization primitive in the tree is in one reviewed place.
void CheckSyncDiscipline(const SourceFile& file, const LintConfig& config,
                         std::vector<Finding>* findings);
// Suppression hygiene: a NOLINT/NOLINTNEXTLINE list naming an apiary-*
// check must carry a ": <reason>" suffix — the reason is the audit trail.
void CheckNolintReason(const SourceFile& file, const LintConfig& config,
                       std::vector<Finding>* findings);

// Corpus-wide: every kOp* constant in an opcode-ABI header must be
// referenced by a handler under src/ and by at least one file under tests/.
// The tests/ requirement is enforced only when the corpus includes tests/
// (so `apiary_lint src` alone stays meaningful).
void CheckOpcodeCoverage(const std::vector<SourceFile>& files, const LintConfig& config,
                         std::vector<Finding>* findings);

// Corpus-wide (the declaration and its wake often live in different files
// of a .h/.cc pair): under src/, a NextActivity() definition whose body can
// return kNoActivity declares "idle until external input" — the active-set
// scheduler will park the block on it. The pair must then show a wake
// integration (RequestWake/RequestPolicyRefresh/WakeHint, or a
// SchedulingPolicy opt-out), or the definition must carry an
// // APIARY-WAKE(<source>): <reason> annotation naming who wakes it. A
// parked block whose input arrives with no wake is missed work, not a
// perf loss (DESIGN.md §"Simulation substrate").
void CheckWakePath(const std::vector<SourceFile>& files, const LintConfig& config,
                   std::vector<Finding>* findings);

// Corpus-wide, symbol-table-aware: builds a class/struct -> src layer table
// from definitions, then flags raw pointer/reference *members* whose pointee
// type lives in a different confined layer (sim/noc/core) than the declaring
// file. Cross-domain state must ride PacketRef, capability handles, or a
// registered channel type — that discipline is what makes the mesh
// decomposable into per-thread domains (ROADMAP item 1).
void CheckDomainConfinement(const std::vector<SourceFile>& files, const LintConfig& config,
                            std::vector<Finding>* findings);

// Runs every check over the corpus, drops NOLINT-suppressed findings, and
// returns the rest sorted by (file, line, check).
std::vector<Finding> RunAllChecks(const std::vector<SourceFile>& files,
                                  const LintConfig& config);

}  // namespace lint
}  // namespace apiary

#endif  // TOOLS_APIARY_LINT_LINT_H_
