// A11: adversarial multi-tenancy — a seeded abuse campaign (flit floods,
// reconfig thrash, capability-probe sweeps, SEU wedge loops) attacks a
// victim KV-store tenant on a shared board, with tenant quota enforcement
// switched off and on.
//
// Reported per attack: victim goodput and p99 (timeouts count as 10k-cycle
// samples so outages surface in the tail), attacker throughput, how often
// enforcement refused the attacker, and whether the repeat offender was
// escalated to quarantine. Acceptance: with enforcement ON the victim's p99
// stays within 2x of its solo baseline for every attack; the probe sweep
// leaks nothing in either mode; and the tenant billing records are
// byte-identical across a rerun and across a skip-disabled rerun.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/accel/faulty.h"
#include "src/accel/kv_store.h"
#include "src/core/kernel.h"
#include "src/core/service_ids.h"
#include "src/fault/fault_injector.h"
#include "src/fpga/board.h"
#include "src/orch/reconfig_scheduler.h"
#include "src/services/memory_service.h"
#include "src/services/mgmt_service.h"
#include "src/services/supervisor.h"
#include "src/sim/simulator.h"
#include "src/stats/table.h"
#include "src/tenant/abuse.h"
#include "src/tenant/tenant.h"
#include "src/tenant/tenant_service.h"
#include "src/workload/kv_workload.h"

using namespace apiary;

namespace {

constexpr Cycle kReconfigCycles = 50'000;
constexpr Cycle kTimeoutCycles = 10'000;
constexpr uint64_t kNeverWedge = ~0ull;
constexpr uint64_t kSeed = 42;

// Tile map (4x4): 0 memory service, 1 mgmt, 2 tenant-stats service,
// 5 victim kv store, 6 victim client, 9 attacker, 10 thrash target.
constexpr TileId kVictimTile = 5;
constexpr TileId kClientTile = 6;
constexpr TileId kAttackerTile = 9;
constexpr TileId kThrashTile = 10;

struct RunConfig {
  Cycle run_cycles = 2'000'000;
  Cycle attack_at = 300'000;
  Cycle attack_duration = 1'400'000;
  Cycle victim_crash_at = 1'000'000;  // Mid-attack: recovery contends too.
  Cycle wedge_period = 60'000;
  Cycle meter_period = 100'000;
};

enum class Mode { kSolo, kOff, kOn };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kSolo:
      return "solo";
    case Mode::kOff:
      return "enforce off";
    case Mode::kOn:
      return "enforce on";
  }
  return "?";
}

// Closed-loop KV client: alternating PUT/GET over a small keyspace, one
// request in flight. A timeout is recorded as a full-timeout latency sample
// so victim outages move the tail instead of vanishing from it; an error
// bounce (fail-stopped victim) backs off briefly before retrying.
class KvClient : public Accelerator {
 public:
  explicit KvClient(ServiceId svc) : svc_(svc) {}

  void Tick(TileApi& api) override {
    if (in_flight_) {
      if (api.now() < timeout_at_) {
        return;
      }
      ++timeouts;
      latency.Record(kTimeoutCycles);
      in_flight_ = false;
    }
    if (api.now() < next_send_) {
      return;
    }
    const uint64_t key_index = (ops_started_ / 2) % 16;  // PUT k, then GET k.
    Message msg;
    if (ops_started_ % 2 == 0) {
      msg.opcode = kOpKvPut;
      msg.payload = MakeKvPutPayload(KvKeyForIndex(key_index),
                                     KvValueForIndex(key_index, 64));
    } else {
      msg.opcode = kOpKvGet;
      msg.payload = MakeKvGetPayload(KvKeyForIndex(key_index));
    }
    if (api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
      ++ops_started_;
      in_flight_ = true;
      sent_at_ = api.now();
      timeout_at_ = api.now() + kTimeoutCycles;
    } else {
      next_send_ = api.now() + 500;  // Local refusal: back off, retry.
    }
  }

  void OnMessage(const Message& msg, TileApi& api) override {
    if (msg.kind != MsgKind::kResponse || !in_flight_) {
      return;
    }
    in_flight_ = false;
    if (msg.status == MsgStatus::kOk) {
      ++ok;
      latency.Record(api.now() - sent_at_);
    } else {
      ++errors;  // Fail-stop bounce or kv-side refusal: fast failure.
      next_send_ = api.now() + 500;
    }
  }

  std::string name() const override { return "kv_client"; }
  uint32_t LogicCellCost() const override { return 1000; }

  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t timeouts = 0;
  Histogram latency;

 private:
  ServiceId svc_;
  uint64_t ops_started_ = 0;
  bool in_flight_ = false;
  Cycle sent_at_ = 0;
  Cycle timeout_at_ = 0;
  Cycle next_send_ = 0;
};

struct ScenarioResult {
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t timeouts = 0;
  uint64_t p99 = 0;
  uint64_t attacker_metric = 0;   // flood: msgs sent; probe: attempts;
                                  // thrash: loads; wedge: wedges injected.
  uint64_t attacker_denied = 0;   // Monitor refusals of attacker traffic.
  uint64_t probe_leaked = 0;
  bool attacker_escalated = false;
  uint64_t quota_stall_cycles = 0;
  uint64_t icap_wait_cycles = 0;
  std::string victim_records;
  std::string attacker_records;
  uint32_t victim_digest = 0;
  uint32_t attacker_digest = 0;
};

ScenarioResult RunScenario(AttackKind attack, Mode mode, uint64_t seed,
                           const RunConfig& rc, bool skip_enabled) {
  Simulator sim(250.0);
  sim.SetSkipEnabled(skip_enabled);
  ExternalNetwork net(25);
  sim.Register(&net);
  BoardConfig cfg;
  cfg.part_number = "VU9P";
  cfg.mesh = MeshConfig{4, 4, 8, 512};
  cfg.dram.capacity_bytes = 64ull << 20;
  cfg.mac_kind = MacKind::k100G;
  cfg.partial_reconfig_cycles = kReconfigCycles;
  Board board(cfg, sim, &net);
  ApiaryOs os(board);

  auto* memsvc = new MemoryService(&os, &board.memory());
  os.DeployService(kMemoryService, std::unique_ptr<Accelerator>(memsvc));
  auto* mgmt = new MgmtService(&os);
  os.DeployService(kMgmtService, std::unique_ptr<Accelerator>(mgmt));

  TenantManager tmgr(&os, rc.meter_period);
  tmgr.SetMemoryService(memsvc);
  os.DeployService(kTenantService,
                   std::make_unique<TenantStatsService>(&tmgr));

  SupervisorConfig sup_cfg;
  sup_cfg.backoff_base_cycles = 20'000;
  // The crash-loop policy is part of enforcement: lenient when off.
  sup_cfg.quarantine_after = mode == Mode::kOn ? 3 : 100;
  sup_cfg.crash_loop_window = rc.run_cycles;
  Supervisor supervisor(&os, sup_cfg);
  mgmt->SetSupervisor(&supervisor);
  tmgr.SetSupervisor(&supervisor);

  // Victim tenant: a KV store and its client. With enforcement on its
  // traffic rides a heavyweight arbitration class.
  TenantQuota victim_quota;
  if (mode == Mode::kOn) {
    victim_quota.max_tiles = 4;
    victim_quota.arb_class = 1;
    victim_quota.arb_weight = 8;
  }
  const TenantId victim = tmgr.CreateTenant("victim", victim_quota);
  const AppId victim_app = tmgr.CreateApp(victim, "kv");
  auto kv_factory = [] { return std::make_unique<KvStoreAccelerator>(1 << 20, 1 << 16); };
  ServiceId kv_svc = 0;
  DeployOptions at_kv;
  at_kv.tile = kVictimTile;
  tmgr.Deploy(victim, victim_app, kv_factory(), &kv_svc, at_kv);
  (void)tmgr.GrantSendToService(victim, kVictimTile, kMemoryService);
  auto* client = new KvClient(kv_svc);
  DeployOptions at_client;
  at_client.tile = kClientTile;
  tmgr.Deploy(victim, victim_app, std::unique_ptr<Accelerator>(client), nullptr,
              at_client);
  (void)tmgr.GrantSendToService(victim, kClientTile, kv_svc);
  supervisor.Manage(kVictimTile, kv_factory);

  // Attacker tenant (absent in the solo baseline).
  TenantId attacker = kInvalidTenant;
  std::unique_ptr<AbuseDriver> driver;
  std::unique_ptr<ReconfigScheduler> scheduler;
  FloodAttacker* flooder = nullptr;
  ProbeAttacker* prober = nullptr;
  if (mode != Mode::kSolo) {
    TenantQuota aq;
    if (mode == Mode::kOn) {
      aq.max_tiles = 4;
      aq.noc_flits_per_1k = 100;
      aq.noc_burst_flits = 200;
      aq.arb_class = 2;
      aq.arb_weight = 1;
      aq.reconfig_loads_per_window = 2;
      aq.reconfig_window_cycles = rc.run_cycles / 2;
      aq.offense_threshold = 500;
      aq.quarantine_strikes = 3;
    }
    attacker = tmgr.CreateTenant("attacker", aq);
    const AppId attacker_app = tmgr.CreateApp(attacker, "attacker");

    AbuseCampaign campaign(seed);
    switch (attack) {
      case AttackKind::kFlitFlood:
        campaign.FlitFlood(rc.attack_at, rc.attack_duration);
        break;
      case AttackKind::kReconfigThrash:
        campaign.ReconfigThrash(rc.attack_at, rc.attack_duration, 0);
        break;
      case AttackKind::kCapProbe:
        campaign.CapProbe(rc.attack_at, rc.attack_duration);
        break;
      case AttackKind::kWedgeLoop:
        campaign.WedgeLoop(rc.attack_at, rc.attack_duration, rc.wedge_period);
        break;
    }
    driver = std::make_unique<AbuseDriver>(&os, campaign);

    auto pawn_factory = [] {
      return std::make_unique<WedgeAccelerator>(kNeverWedge, kInvalidCapRef, 500);
    };
    DeployOptions at_attacker;
    at_attacker.tile = kAttackerTile;
    switch (attack) {
      case AttackKind::kFlitFlood: {
        auto fl = std::make_unique<FloodAttacker>(
            driver->ActiveFlag(AttackKind::kFlitFlood), 256);
        flooder = fl.get();
        tmgr.Deploy(attacker, attacker_app, std::move(fl), nullptr, at_attacker);
        // The flood's target: the victim's KV service, which (like any
        // public service) legitimately granted the attacker a client
        // capability — one that escalation's subtree revocation takes back.
        flooder->SetVictim(tmgr.GrantSendToService(attacker, kAttackerTile, kv_svc));
        break;
      }
      case AttackKind::kCapProbe: {
        auto pr = std::make_unique<ProbeAttacker>(
            driver->ActiveFlag(AttackKind::kCapProbe), 16, 8);
        prober = pr.get();
        tmgr.Deploy(attacker, attacker_app, std::move(pr), nullptr, at_attacker);
        break;
      }
      case AttackKind::kReconfigThrash: {
        scheduler = std::make_unique<ReconfigScheduler>(&os, attacker_app);
        tmgr.AttachScheduler(attacker, scheduler.get());
        driver->ConfigureThrash(scheduler.get(), kThrashTile, pawn_factory);
        break;
      }
      case AttackKind::kWedgeLoop: {
        tmgr.Deploy(attacker, attacker_app, pawn_factory(), nullptr, at_attacker);
        (void)tmgr.GrantSendToService(attacker, kAttackerTile, kMgmtService);
        supervisor.Manage(kAttackerTile, pawn_factory);
        driver->ConfigureWedge(kAttackerTile);
        break;
      }
    }
  }

  // Every scenario (solo included) takes the same mid-run victim crash, so
  // recovery cost is part of the baseline and ICAP contention is measured
  // against it rather than against an idle port.
  FaultPlan plan;
  plan.seed = seed;
  plan.AccelCrash(rc.victim_crash_at, kVictimTile);
  FaultHooks hooks;
  hooks.os = &os;
  hooks.mesh = &board.mesh();
  hooks.memory = &board.memory();
  hooks.network = &net;
  FaultInjector injector(std::move(plan), hooks);

  sim.Run(rc.run_cycles);

  ScenarioResult r;
  r.ok = client->ok;
  r.errors = client->errors;
  r.timeouts = client->timeouts;
  r.p99 = client->latency.P99();
  if (flooder != nullptr) {
    r.attacker_metric = flooder->sent();
    r.attacker_denied = flooder->rate_limited();
  } else if (prober != nullptr) {
    r.attacker_metric = prober->attempts();
    r.attacker_denied = prober->denied();
    r.probe_leaked = prober->leaked();
  } else if (driver != nullptr) {
    r.attacker_metric =
        driver->counters().Get(attack == AttackKind::kReconfigThrash
                                   ? "abuse.thrash_loads"
                                   : "abuse.wedges_injected");
  }
  if (scheduler != nullptr) {
    r.quota_stall_cycles = scheduler->counters().Get("orch.quota_stall_cycles");
  }
  r.icap_wait_cycles = supervisor.counters().Get("supervisor.icap_wait_cycles");
  r.attacker_escalated = attacker != kInvalidTenant && tmgr.Escalated(attacker);
  r.victim_records = tmgr.BillingRecords(victim);
  r.victim_digest = tmgr.BillingDigest(victim);
  if (attacker != kInvalidTenant) {
    r.attacker_records = tmgr.BillingRecords(attacker);
    r.attacker_digest = tmgr.BillingDigest(attacker);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "--smoke");
  RunConfig rc;
  if (smoke) {
    rc.run_cycles = 600'000;
    rc.attack_at = 120'000;
    rc.attack_duration = 360'000;
    rc.victim_crash_at = 250'000;
    rc.meter_period = 50'000;
  }

  std::printf("A11: adversarial multi-tenancy (%llu cycles, 4x4 mesh, victim KV\n",
              static_cast<unsigned long long>(rc.run_cycles));
  std::printf("tenant vs one attack at a time, enforcement off vs on)\n\n");

  const ScenarioResult solo =
      RunScenario(AttackKind::kFlitFlood, Mode::kSolo, kSeed, rc, true);

  const AttackKind kAttacks[] = {AttackKind::kFlitFlood, AttackKind::kReconfigThrash,
                                 AttackKind::kCapProbe, AttackKind::kWedgeLoop};
  struct AttackRow {
    AttackKind kind;
    ScenarioResult off;
    ScenarioResult on;
    bool deterministic = false;
  };
  std::vector<AttackRow> rows;
  bool all_deterministic = true;
  for (const AttackKind kind : kAttacks) {
    AttackRow row;
    row.kind = kind;
    row.off = RunScenario(kind, Mode::kOff, kSeed, rc, true);
    row.on = RunScenario(kind, Mode::kOn, kSeed, rc, true);
    // Billing determinism: same seed again, then same seed with cycle
    // skipping disabled. Records must be byte-identical both times.
    const ScenarioResult rerun = RunScenario(kind, Mode::kOn, kSeed, rc, true);
    const ScenarioResult noskip = RunScenario(kind, Mode::kOn, kSeed, rc, false);
    row.deterministic = rerun.victim_records == row.on.victim_records &&
                        rerun.attacker_records == row.on.attacker_records &&
                        noskip.victim_records == row.on.victim_records &&
                        noskip.attacker_records == row.on.attacker_records;
    all_deterministic = all_deterministic && row.deterministic;
    rows.push_back(std::move(row));
  }

  Table table("A11: victim SLO and attacker throughput per attack");
  table.SetHeader({"attack", "mode", "victim ok", "err", "timeouts", "p99",
                   "attacker", "denied", "escalated"});
  table.AddRow({"(none)", ModeName(Mode::kSolo), Table::Int(solo.ok),
                Table::Int(solo.errors), Table::Int(solo.timeouts),
                Table::Int(solo.p99), "-", "-", "-"});
  for (const AttackRow& row : rows) {
    for (const Mode mode : {Mode::kOff, Mode::kOn}) {
      const ScenarioResult& r = mode == Mode::kOff ? row.off : row.on;
      table.AddRow({AttackKindName(row.kind), ModeName(mode), Table::Int(r.ok),
                    Table::Int(r.errors), Table::Int(r.timeouts), Table::Int(r.p99),
                    Table::Int(r.attacker_metric), Table::Int(r.attacker_denied),
                    r.attacker_escalated ? "yes" : "no"});
    }
  }
  table.Print();

  std::printf("\nvictim billing records (enforcement on, %s, first periods):\n",
              AttackKindName(AttackKind::kFlitFlood));
  const std::string& sample = rows[0].on.victim_records;
  size_t shown = 0;
  for (size_t pos = 0; pos < sample.size() && shown < 3; ++shown) {
    const size_t eol = sample.find('\n', pos);
    std::printf("  %s\n", sample.substr(pos, eol - pos).c_str());
    pos = eol + 1;
  }
  std::printf("attacker record digest (on, flood): %08x over %zu bytes\n",
              rows[0].on.attacker_digest, rows[0].on.attacker_records.size());

  // Acceptance checks.
  bool all_contained = true;
  const uint64_t solo_floor = solo.p99 == 0 ? 1 : solo.p99;
  for (const AttackRow& row : rows) {
    const bool contained = row.on.p99 <= 2 * solo_floor;
    all_contained = all_contained && contained;
    std::printf("[%s] %s: enforced victim p99 within 2x solo (%llu vs %llu)\n",
                contained ? "PASS" : "FAIL", AttackKindName(row.kind),
                static_cast<unsigned long long>(row.on.p99),
                static_cast<unsigned long long>(solo.p99));
  }
  const AttackRow* probe_row = nullptr;
  for (const AttackRow& row : rows) {
    if (row.kind == AttackKind::kCapProbe) {
      probe_row = &row;
    }
  }
  const bool no_leaks =
      probe_row->off.probe_leaked == 0 && probe_row->on.probe_leaked == 0;
  std::printf("[%s] capability probes leaked nothing in either mode\n",
              no_leaks ? "PASS" : "FAIL");
  std::printf("[%s] billing records byte-identical across rerun and no-skip rerun\n",
              all_deterministic ? "PASS" : "FAIL");

  const std::string json_path = JsonPathArg(argc, argv);
  if (!json_path.empty()) {
    BenchJson json("a11_adversarial");
    json.Param("run_cycles", static_cast<uint64_t>(rc.run_cycles));
    json.Param("seed", kSeed);
    json.Param("smoke", smoke ? "yes" : "no");
    json.BeginRow();
    json.Metric("attack", "none");
    json.Metric("mode", "solo");
    json.Metric("victim_ok", solo.ok);
    json.Metric("victim_errors", solo.errors);
    json.Metric("victim_timeouts", solo.timeouts);
    json.Metric("victim_p99_cycles", solo.p99);
    for (const AttackRow& row : rows) {
      for (const Mode mode : {Mode::kOff, Mode::kOn}) {
        const ScenarioResult& r = mode == Mode::kOff ? row.off : row.on;
        json.BeginRow();
        json.Metric("attack", AttackKindName(row.kind));
        json.Metric("mode", mode == Mode::kOff ? "off" : "on");
        json.Metric("victim_ok", r.ok);
        json.Metric("victim_errors", r.errors);
        json.Metric("victim_timeouts", r.timeouts);
        json.Metric("victim_p99_cycles", r.p99);
        json.Metric("attacker_metric", r.attacker_metric);
        json.Metric("attacker_denied", r.attacker_denied);
        json.Metric("attacker_escalated", r.attacker_escalated ? 1 : 0);
        json.Metric("quota_stall_cycles", r.quota_stall_cycles);
        json.Metric("icap_wait_cycles", r.icap_wait_cycles);
        json.Metric("billing_digest_victim", static_cast<uint64_t>(r.victim_digest));
        json.Metric("deterministic", row.deterministic ? 1 : 0);
      }
    }
    json.WriteFile(json_path);
  }
  return (all_contained && no_leaks && all_deterministic) ? 0 : 1;
}
