// FPGA logic-resource accounting.
//
// "It is important for scalability that this monitor's resource utilization
// remain low since the amount of FPGA logic resources devoted to Apiary
// grows with the number of tiles." (Section 6, open question 1.)
//
// Every instantiated block reports a logic-cell cost from a calibrated cost
// table; the ResourceBudget refuses configurations that exceed the part.
// Costs are calibrated against published numbers for comparable open-source
// blocks (CONNECT/Hoplite-class routers, Coyote/AmorphOS shells, Corundum
// MACs); they are estimates, not synthesis results, and the experiments only
// rely on their relative magnitudes.
#ifndef SRC_FPGA_RESOURCE_MODEL_H_
#define SRC_FPGA_RESOURCE_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/fpga/part_catalog.h"

namespace apiary {

// Logic-cell cost table for the static (trusted) Apiary blocks and common
// I/O infrastructure.
struct ResourceCosts {
  uint32_t monitor = 3500;            // Per-tile monitor (cap table + checks).
  uint32_t monitor_per_cap = 12;      // Each capability-table entry (CAM-ish).
  uint32_t router_base = 4500;        // 5-port 2-VC router, zero buffering.
  uint32_t router_per_buffer_flit = 150;
  uint32_t network_interface = 2000;
  uint32_t eth_mac_10g = 9000;        // 10G MAC + PHY glue.
  uint32_t eth_mac_100g = 55000;      // 100G CMAC-class core.
  uint32_t pcie_gen3 = 70000;         // PCIe endpoint + DMA bridge.
  uint32_t memory_controller = 25000; // DDR4-class controller.
  uint32_t hbm_controller = 12000;    // Per-pseudo-channel HBM glue.
};

// Tracks allocation of one part's logic cells between the static Apiary
// framework and the dynamically reconfigurable tile regions.
class ResourceBudget {
 public:
  explicit ResourceBudget(FpgaPart part, ResourceCosts costs = ResourceCosts{});

  // Records `cells` of static-region use under `label`. Returns false (and
  // records nothing) if the part would be oversubscribed.
  bool ChargeStatic(const std::string& label, uint64_t cells);

  // Reserves a dynamic tile region of `cells`. Returns false if it no longer
  // fits.
  bool ReserveTileRegion(uint64_t cells);

  uint64_t total_cells() const { return part_.logic_cells; }
  uint64_t static_cells() const { return static_cells_; }
  uint64_t tile_region_cells() const { return tile_region_cells_; }
  uint64_t free_cells() const {
    return part_.logic_cells - static_cells_ - tile_region_cells_;
  }
  double StaticFraction() const {
    return static_cast<double>(static_cells_) / static_cast<double>(part_.logic_cells);
  }

  const FpgaPart& part() const { return part_; }
  const ResourceCosts& costs() const { return costs_; }
  const std::map<std::string, uint64_t>& static_breakdown() const { return breakdown_; }

 private:
  FpgaPart part_;
  ResourceCosts costs_;
  uint64_t static_cells_ = 0;
  uint64_t tile_region_cells_ = 0;
  std::map<std::string, uint64_t> breakdown_;
};

// Cost of one Apiary monitor supporting `cap_entries` capability slots.
uint64_t MonitorCellCost(const ResourceCosts& costs, uint32_t cap_entries);

}  // namespace apiary

#endif  // SRC_FPGA_RESOURCE_MODEL_H_
