file(REMOVE_RECURSE
  "CMakeFiles/accel_test.dir/accel_test.cc.o"
  "CMakeFiles/accel_test.dir/accel_test.cc.o.d"
  "accel_test"
  "accel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
