// Express corridors: timing-equivalent packet fast-forwarding through idle
// routers (ISSUE 10, B5).
//
// When a whole packet sits alone in an NI injection queue and every remaining
// hop of its XY route is verifiably non-interfering — each path router idle
// and free on the needed (output port, VC), no open fault window, and (when
// partitioned) the path plus its 1-hop neighborhood entirely inside one shard
// — the traversal is a closed-form pipeline: flit i is staged into path
// router R_k at cycle D+i+k, forwarded at D+i+k+1, and ejected at D+i+H+1.
// The lane records that schedule instead of ticking the routers, and replays
// its externally visible effects (per-router flit counts, arbitration
// pointers, NI ejection counters/latency/delivery) at the precise cycles the
// cycle-accurate engine would have produced them.
//
// Non-interference precondition (checked at launch, re-checked every executed
// cycle by the mesh's conflict scan):
//   * every path router has no buffered flits and a free wormhole owner on
//     (out_k, vc);
//   * no router in the corridor ZONE (path tiles plus their 4-neighbors) is
//     busy — any foreign flit must cross the zone boundary one cycle before
//     it can reach a path router, so scanning the mesh's live sets at the top
//     of each executed cycle always materializes the corridor first;
//   * the fault model reports NocQuiet (no open drop/corrupt/stall window:
//     closed windows draw no RNG and charge no counters, so skipping the
//     per-link hook calls is byte-exact);
//   * corridors of one lane keep their paths out of each other's zones (and
//     zones off each other's paths), so materializing one never invalidates
//     another.
//
// Materialization invariant: at any boundary cycle E >= D (E is always the
// lane's state_time: the last cycle whose mesh phases have run), the corridor
// can be converted back into ordinary buffered flits — flit i is staged into
// R_(E-D-i) exactly where the real run would have left it, routers that
// forwarded n flits get their counters/round-robin/deficit/owner state
// caught up, ejected flits replay their NI counters, and unlaunched flits
// requeue into the (empty) source injection queue. Cycle-accurate routing
// resumes from that state bit-for-bit.
//
// Scheduling contract: while any corridor is active the mesh declares
// NextActivity == now, so it ticks on every executed cycle — the same cycles
// the real run would execute with flits in flight. Skip/executed-cycle
// counters therefore stay byte-identical; the win is that each such tick
// costs O(active corridors), not O(busy routers x flits).
//
// Allocation discipline: launch and materialize run on the per-cycle hot
// path. All lane storage (corridor slots, per-tile zone/path maps) is sized
// once in Configure; TryLaunch/Materialize/RunCompletions never touch the
// heap (enforced by the apiary-hot-path lint).
#ifndef SRC_NOC_EXPRESS_H_
#define SRC_NOC_EXPRESS_H_

#include <cstdint>
#include <vector>

#include "src/noc/packet.h"
#include "src/sim/types.h"

namespace apiary {

class Mesh;
class NetworkInterface;
enum RouterPort : int;

// Aggregated lane statistics (reported in BENCH_b1/b3/b4/b5 JSON).
struct ExpressStats {
  uint64_t launches = 0;          // Corridors installed.
  uint64_t delivered = 0;         // Corridors that completed analytically.
  uint64_t materializations = 0;  // Corridors converted back to real flits.
  uint64_t hops_sum = 0;          // Sum of H over delivered corridors.
  uint64_t flits_delivered = 0;   // Flits delivered via completed corridors.

  void Fold(const ExpressStats& other) {
    launches += other.launches;
    delivered += other.delivered;
    materializations += other.materializations;
    hops_sum += other.hops_sum;
    flits_delivered += other.flits_delivered;
  }
};

// One express lane per sweep domain (the whole mesh when serial, one shard
// when partitioned). Thread-confined exactly like the domain's LiveSet: only
// the owning worker touches it during shard phases, only the coordinator
// between cycles.
class ExpressLane {
 public:
  // Sized-once wiring (cold path; the only place this class allocates).
  // `shard_of_tile`/`shard` restrict corridors to one shard's interior when
  // partitioned (null/0 for the serial lane: the whole mesh qualifies).
  void Configure(Mesh* mesh, uint32_t num_tiles, const uint32_t* shard_of_tile,
                 uint32_t shard);
  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Called by the source NI at the top of InjectCycle. Returns true when a
  // corridor was installed (the queue was drained into it; the NI must not
  // also inject this cycle — the corridor's schedule already covers it).
  bool TryLaunch(NetworkInterface& ni, Cycle now);

  // Completion sweep: corridors due this cycle either deliver (full path) or
  // self-materialize (shard-cut truncation). Runs at the top of the mesh
  // tick/commit phase, before the conflict scan and the live-set merge.
  void RunCompletions(Cycle now);

  // Conflict scan entry points: a busy router anywhere in a corridor's zone,
  // or a busy NI on a corridor's path, materializes that corridor at the
  // current state boundary.
  void MaterializeTouchingRouter(TileId tile);
  void MaterializeTouchingNi(TileId tile);

  // External interference hooks.
  void MaterializeAll();                // Weight/fault/partition reconfig.
  void MaterializeSource(TileId tile);  // New Inject on a corridor's source.

  // Virtual injection-queue occupancy of the corridor sourced at `tile` on
  // `vc_index`, as of state_time: what the real run's (draining) queue would
  // still hold. Keeps the monitor's CanInject pre-check byte-exact.
  uint32_t VirtualPending(TileId tile, int vc_index) const;

  [[nodiscard]] bool AnyActive() const { return active_count_ != 0; }
  // Advance the state boundary: every mesh phase of `now` has run (or been
  // analytically covered), so observers until the next tick see end-of-`now`
  // state.
  void SetStateTime(Cycle now) { state_time_ = now; }

  const ExpressStats& stats() const { return stats_; }

 private:
  struct Corridor {
    PacketRef packet;
    Cycle launch = 0;      // D: cycle the first flit was (virtually) injected.
    Cycle due = 0;         // Completion cycle (delivery or self-materialize).
    uint32_t flits = 0;    // F (cached packet->flit_count).
    uint32_t hops = 0;     // H: full XY path is R_0..R_H.
    uint32_t covered = 0;  // Last covered router index (== hops unless cut).
    int vc = 0;
    bool truncated = false;  // Completion materializes at the shard cut.
    bool active = false;
    // Path geometry (X-run then Y-run); tiles derived, never stored.
    int32_t sx = 0, sy = 0, dx = 0, dy = 0;
  };

  TileId PathTile(const Corridor& c, uint32_t k) const;
  RouterPort PathOut(const Corridor& c, uint32_t k) const;
  RouterPort PathIn(const Corridor& c, uint32_t k) const;
  bool ZoneContains(const Corridor& c, TileId tile) const;
  // Adds/removes corridor `index`'s tiles from the per-tile occupancy maps.
  void InstallMaps(uint32_t index, int delta);
  void Materialize(uint32_t index);
  void Deliver(uint32_t index);
  void Remove(uint32_t index);

  Mesh* mesh_ = nullptr;
  const uint32_t* shard_of_tile_ = nullptr;
  uint32_t shard_ = 0;
  uint32_t num_tiles_ = 0;
  bool enabled_ = false;
  // State boundary: mesh phases through this cycle are reflected (really or
  // analytically) in observable NoC state. Always the materialization E.
  Cycle state_time_ = 0;
  uint32_t active_count_ = 0;

  static constexpr uint32_t kMaxCorridors = 16;
  std::vector<Corridor> corridors_;  // Sized once; slots recycled in place.
  // Per-tile occupancy maps, sized once. Paths are mutually disjoint, so one
  // owner id suffices; zones may overlap, so those are counted.
  std::vector<uint16_t> path_owner_;  // Corridor index + 1; 0 = free.
  std::vector<uint8_t> zone_count_;
  // Source-tile index: corridor launched from tile t (one per NI at most).
  std::vector<uint16_t> source_owner_;  // Corridor index + 1; 0 = none.

  ExpressStats stats_;
};

}  // namespace apiary

#endif  // SRC_NOC_EXPRESS_H_
