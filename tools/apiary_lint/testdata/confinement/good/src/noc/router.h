// A noc-owned type other layers may only reach through channels.
#ifndef SRC_NOC_ROUTER_H_
#define SRC_NOC_ROUTER_H_

namespace apiary {

class Router {
 public:
  int Route(int flit);
};

}  // namespace apiary

#endif  // SRC_NOC_ROUTER_H_
