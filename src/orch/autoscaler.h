// Metrics-driven autoscaler: grows and shrinks a replica set behind a
// LoadBalancer based on observed queue depth or tail latency.
//
// The control loop closes the elastic-orchestration story: the load
// balancer measures (queue-depth integral, per-window latency histogram),
// the autoscaler decides (target-utilization or SLO-latency policy, with
// hysteresis bands and a cooldown so reconfiguration latency does not cause
// oscillation), the placer chooses a region (near the balancer, apart from
// the other replicas), and the reconfiguration scheduler executes through
// the serialized ICAP. Capability wiring goes through the kernel: each new
// replica is granted to the balancer via GrantSendToService, and teardown
// revokes through Undeploy.
#ifndef SRC_ORCH_AUTOSCALER_H_
#define SRC_ORCH_AUTOSCALER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/kernel.h"
#include "src/orch/placer.h"
#include "src/orch/reconfig_scheduler.h"
#include "src/services/load_balancer.h"
#include "src/sim/clocked.h"
#include "src/stats/summary.h"

namespace apiary {

enum class ScalePolicy : uint8_t {
  // Track average queue depth per replica between hysteresis bands.
  kTargetUtilization = 0,
  // Scale up when windowed p99 latency exceeds the SLO; scale down when it
  // falls well under (slo_down_fraction of the SLO).
  kSloLatency = 1,
};

struct AutoscalerConfig {
  ScalePolicy policy = ScalePolicy::kTargetUtilization;
  uint32_t min_replicas = 1;
  uint32_t max_replicas = 8;
  // Control-loop period; metrics are windowed over it.
  Cycle poll_period = 10'000;
  // kTargetUtilization bands: average in-flight requests per live replica.
  double up_queue_per_replica = 3.0;
  double down_queue_per_replica = 0.5;
  // kSloLatency: the p99 target, and the fraction of it under which a
  // replica is considered latency-surplus.
  Cycle slo_p99_cycles = 0;
  double slo_down_fraction = 0.4;
  // kSloLatency headroom signals: scale up when average in-flight per live
  // replica (utilization proxy) exceeds up_utilization even if latency
  // still looks fine; only scale down when the set would stay under
  // down_utilization per replica after losing one.
  double up_utilization = 0.7;
  double down_utilization = 0.5;
  // Scale-down hysteresis: the shrink condition must hold this many
  // consecutive polls, and cooldown_cycles must have passed since the last
  // scaling action. Scale-up has no cooldown — it is paced naturally by the
  // serialized ICAP (one reconfiguration in flight at a time), and demand
  // spikes should not wait out a timer.
  uint32_t down_stable_polls = 3;
  Cycle cooldown_cycles = 150'000;
  // Logic-cell footprint of one replica (placement admission).
  uint32_t replica_logic_cells = 20'000;
};

class Autoscaler : public Clocked {
 public:
  using ReplicaFactory = std::function<std::unique_ptr<Accelerator>()>;

  // The balancer lives on `lb_tile`; new replicas deploy under `app` and are
  // granted to the balancer through the kernel. `placer` and `scheduler`
  // are shared orchestration infrastructure (not owned).
  Autoscaler(ApiaryOs* os, LoadBalancer* lb, TileId lb_tile, AppId app,
             ReplicaFactory factory, Placer* placer, ReconfigScheduler* scheduler,
             AutoscalerConfig config = AutoscalerConfig{});

  // Registers an already-deployed replica (initial wiring at time zero; the
  // caller has AddBackend'ed its endpoint on the balancer).
  void AdoptReplica(ServiceId service, TileId tile, CapRef endpoint);

  // Runtime bound adjustment (kOpOrchScale); out-of-bounds live counts are
  // corrected on the next poll, bypassing cooldown.
  void SetBounds(uint32_t min_replicas, uint32_t max_replicas);

  // Admission control for scale-ups: when set, a scale-up proceeds only if
  // the predicate returns true (the tenant manager wires its tile-quota
  // check here). A denied attempt counts "orch.scale_up_quota_denied" and
  // retries on a later poll.
  void SetAdmission(std::function<bool()> admit) { admit_ = std::move(admit); }

  void Tick(Cycle now) override;
  // The control loop only acts at poll multiples; the region-cycle integral
  // (the other per-tick effect) is reconstructed exactly on fast-forward
  // because replica membership can only change on executed cycles.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    if (config_.poll_period == 0) {
      return kNoActivity;
    }
    const Cycle rem = now % config_.poll_period;
    return rem == 0 ? now : now + (config_.poll_period - rem);
  }
  void OnFastForward(Cycle resume_cycle) override {
    tile_cycles_ += (resume_cycle - 1 - now_) * replicas_.size();
    now_ = resume_cycle - 1;
  }
  std::string DebugName() const override { return "autoscaler"; }
  // The region-cycle integral accrues on every executed cycle (OnFastForward
  // compensates only skipped windows), so the block is pinned: parking it
  // between poll multiples would silently stop the meter.
  [[nodiscard]] SchedPolicy SchedulingPolicy() const override {
    return SchedPolicy::kEveryCycle;
  }

  uint32_t live_replicas() const;
  uint32_t target_replicas() const { return target_; }
  uint64_t scale_ups() const { return scale_ups_; }
  uint64_t scale_downs() const { return scale_downs_; }
  // Tile-cycles consumed by the replica set (live + loading + draining
  // regions each cost one region-cycle per cycle): the provisioning-cost
  // metric the A10 experiment compares against static deployments.
  uint64_t replica_tile_cycles() const { return tile_cycles_; }
  const CounterSet& counters() const { return counters_; }
  const AutoscalerConfig& config() const { return config_; }

 private:
  enum class ReplicaState : uint8_t { kLoading, kLive, kDraining };
  struct Replica {
    ServiceId service = kInvalidService;
    TileId tile = kInvalidTile;
    CapRef endpoint = kInvalidCapRef;
    ReplicaState state = ReplicaState::kLoading;
  };

  void Poll();
  void ScaleUp();
  void ScaleDown();
  // Pushes the current live-endpoint set to the balancer.
  void PushMembership();

  ApiaryOs* os_;
  LoadBalancer* lb_;
  TileId lb_tile_;
  AppId app_;
  ReplicaFactory factory_;
  Placer* placer_;
  ReconfigScheduler* scheduler_;
  AutoscalerConfig config_;
  std::function<bool()> admit_;

  std::vector<Replica> replicas_;
  uint32_t target_ = 0;
  bool op_pending_ = false;   // One scaling operation in flight at a time.
  uint32_t down_streak_ = 0;  // Consecutive polls that wanted to shrink.
  Cycle last_scale_at_ = 0;
  uint64_t last_queue_sum_ = 0;
  uint64_t scale_ups_ = 0;
  uint64_t scale_downs_ = 0;
  uint64_t tile_cycles_ = 0;
  Cycle now_ = 0;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_ORCH_AUTOSCALER_H_
