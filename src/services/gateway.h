// NetGateway: a reusable front-end tile that exposes one backend accelerator
// to external clients through the network service.
//
// External request frame (after the network service strips its routing
// word): u64 client_id, u16 opcode, request bytes.
// External response frame: u64 client_id, u8 status, response bytes.
//
// This is the "service within a microservice application" shape from the
// paper's Section 1: network-facing, stateful, part of a call chain.
#ifndef SRC_SERVICES_GATEWAY_H_
#define SRC_SERVICES_GATEWAY_H_

#include <map>

#include "src/core/accelerator.h"
#include "src/services/opcodes.h"
#include "src/stats/summary.h"

namespace apiary {

class NetGateway : public Accelerator {
 public:
  // The kernel wires the backend endpoint capability after deployment.
  void SetBackend(CapRef endpoint) { backend_ = endpoint; }

  void OnBoot(TileApi& api) override;
  void OnMessage(const Message& msg, TileApi& api) override;

  std::string name() const override { return "net_gateway"; }
  uint32_t LogicCellCost() const override { return 7000; }

  const CounterSet& counters() const { return counters_; }

 private:
  struct InFlight {
    uint32_t client_endpoint;
    uint64_t client_id;
  };

  void HandleInbound(const Message& msg, TileApi& api);
  void HandleBackendResponse(const Message& msg, TileApi& api);
  void SendToClient(uint32_t endpoint, uint64_t client_id, MsgStatus status,
                    const PayloadBuf& data, TileApi& api);

  CapRef netsvc_ = kInvalidCapRef;
  CapRef backend_ = kInvalidCapRef;
  bool registered_ = false;
  uint64_t next_forward_id_ = 1;
  std::map<uint64_t, InFlight> in_flight_;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_SERVICES_GATEWAY_H_
