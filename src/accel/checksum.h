// CRC32 checksum accelerator (and the pure function behind it). A small,
// common utility block — the kind of third-party tile the paper's
// composition story wants to make cheap to reuse.
#ifndef SRC_ACCEL_CHECKSUM_H_
#define SRC_ACCEL_CHECKSUM_H_

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "src/accel/accel_opcodes.h"
#include "src/core/accelerator.h"

namespace apiary {

// CRC-32 (IEEE 802.3, reflected, init/xorout 0xffffffff).
uint32_t Crc32(std::span<const uint8_t> data);

class ChecksumAccelerator : public Accelerator {
 public:
  explicit ChecksumAccelerator(uint32_t bytes_per_cycle = 8)
      : bytes_per_cycle_(bytes_per_cycle) {}

  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override;

  std::string name() const override { return "checksum"; }
  uint32_t LogicCellCost() const override { return 4000; }
  uint64_t served() const { return served_; }

 private:
  struct Job {
    Message request;
    uint32_t crc;
    Cycle done_at;
  };

  uint32_t bytes_per_cycle_;
  std::deque<Job> jobs_;
  Cycle engine_free_at_ = 0;
  uint64_t served_ = 0;
};

}  // namespace apiary

#endif  // SRC_ACCEL_CHECKSUM_H_
