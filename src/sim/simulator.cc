#include "src/sim/simulator.h"

#include <algorithm>

#include "src/sim/parallel/thread_domain.h"

namespace apiary {

void Simulator::Register(Clocked* block) {
  blocks_.push_back(block);
  // The schedule is kept bound even in tick-everything mode: slot ids give
  // the hot-block cache a stable identity, wake calls stay counted, and
  // re-enabling active sets mid-run only needs a conservative rebuild.
  const uint32_t slot = sched_.Add(block, now_, defer_new_blocks_);
  slot_refs_.push_back(SlotRef{&sched_, slot});
}

void Simulator::Unregister(Clocked* block) { pending_removals_.push_back(block); }

void Simulator::ApplyPendingRemovals() {
  if (pending_removals_.empty()) {
    return;
  }
  // Single-pass lockstep compaction of blocks_ and slot_refs_: sort the
  // removal set once and binary-search it per block. Sorting also makes
  // double-unregister of the same block harmless (each surviving element is
  // visited once). The hot-block cache needs no remapping — it holds a
  // (schedule, slot, generation) identity, and removal bumps the slot's
  // generation, so a stale cache simply fails its lookup and the skip poll
  // falls through to the full sweep.
  std::sort(pending_removals_.begin(), pending_removals_.end());
  size_t kept = 0;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (std::binary_search(pending_removals_.begin(), pending_removals_.end(), blocks_[i])) {
      slot_refs_[i].sched->Remove(slot_refs_[i].slot);
    } else {
      blocks_[kept] = blocks_[i];
      slot_refs_[kept] = slot_refs_[i];
      ++kept;
    }
  }
  blocks_.resize(kept);
  slot_refs_.resize(kept);
  pending_removals_.clear();
}

void Simulator::SetActiveSetEnabled(bool enabled) {
  if (enabled && !active_set_enabled_) {
    // Wheel and parked state went stale while the tick-everything path ran;
    // conservatively re-activate everything (spurious ticks are no-ops) and
    // let the next boundary re-park the quiescent.
    sched_.RebuildAllActive();
  }
  active_set_enabled_ = enabled;
}

void Simulator::SetSkipEnabled(bool enabled) {
  if (enabled && !skip_enabled_ && active_set_enabled_) {
    // Active-set state sat idle while the no-skip legacy loop ran; same
    // conservative re-activation as re-enabling active sets.
    sched_.RebuildAllActive();
  }
  skip_enabled_ = enabled;
}

void Simulator::Step() {
  const size_t events_run = events_.RunUntil(now_);
  if (ActiveSetLive()) {
    if (events_run > 0) {
      // Event callbacks are opaque: they may have delivered input to any
      // parked block. Re-activating everything is byte-safe; events are rare
      // (setup, arrivals, reconfiguration completions).
      sched_.RebuildAllActive();
    }
    sched_.ExecuteTicks(now_);
  } else {
    // Index-based loop with a count snapshot: callbacks and ticks may
    // register new blocks, which then start ticking on the next cycle.
    const size_t count = blocks_.size();
    for (size_t i = 0; i < count; ++i) {
      blocks_[i]->Tick(now_);
    }
    legacy_ticked_blocks_ += count;
  }
  ApplyPendingRemovals();
  ++now_;
  ++executed_cycles_;
  if (ActiveSetLive()) {
    sched_.AdvanceBoundary(now_);
  }
}

void Simulator::SkipAhead(Cycle limit) {
  if (!skip_enabled_ || now_ >= limit) {
    return;
  }
  if (ActiveSetLive()) {
    // O(1) when any kActiveSet block is busy; otherwise the earliest pinned /
    // boundary-poll declaration or live wheel deadline. This is exactly the
    // minimum the tick-everything sweep below would compute (declarations are
    // pure), so skip counts and targets are byte-identical across modes.
    Cycle target = sched_.EarliestWork(now_);
    if (target <= now_) {
      return;
    }
    if (!events_.empty()) {
      const Cycle due = events_.NextEventCycle();
      if (due <= now_) {
        return;  // An event is due immediately: nothing to skip.
      }
      target = std::min(target, due);
    }
    target = std::min(target, limit);
    if (target <= now_) {
      return;
    }
    JumpTo(target);
    return;
  }
  // Saturated-path fast exit: the block that most recently proved activity is
  // overwhelmingly likely to still be active, so poll it before scanning. A
  // failed skip attempt then costs one virtual call instead of O(blocks).
  // NextActivity is a pure query, so the extra poll has no observable effect.
  Clocked* hot =
      hot_ref_.sched != nullptr ? hot_ref_.sched->BlockAt(hot_ref_.slot, hot_gen_) : nullptr;
  if (hot != nullptr && hot->NextActivity(now_) <= now_) {
    return;
  }
  // The jump target is the earliest cycle anyone needs: the next pending
  // event, or any block's declared next activity. A single active block
  // (NextActivity <= now_) pins the target at now_ and we execute normally.
  Cycle target = limit;
  if (!events_.empty()) {
    const Cycle due = events_.NextEventCycle();
    if (due <= now_) {
      return;  // An event is due immediately: nothing to skip.
    }
    target = std::min(target, due);
  }
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const Cycle next = blocks_[i]->NextActivity(now_);
    if (next <= now_) {
      // Remember the busy block for the fast exit above, by stable identity.
      // Under the parallel engine the fabric block has no schedule (its ref
      // is null): it stays out of the cache rather than crashing GenOf.
      hot_ref_ = slot_refs_[i];
      hot_gen_ = hot_ref_.sched != nullptr ? hot_ref_.sched->GenOf(hot_ref_.slot) : 0;
      return;  // Someone is active next cycle: bail before polling the rest.
    }
    target = std::min(target, next);
  }
  if (target <= now_) {
    return;
  }
  JumpTo(target);
}

void Simulator::JumpTo(Cycle target) {
  skipped_cycles_ += target - now_;
  ++skips_;
  // Every block observes the jump, so cached clocks and per-cycle
  // accumulators stay exactly as a cycle-by-cycle run would leave them.
  for (Clocked* block : blocks_) {
    block->OnFastForward(target);
  }
  now_ = target;
  if (ActiveSetLive()) {
    // Deadlines landing exactly on the jump target are due now.
    sched_.AdvanceBoundary(now_);
  }
}

void Simulator::Run(Cycle cycles) {
  // Everything this run allocates or logs belongs to this simulator's
  // domain (nested installs of the same context are harmless no-ops).
  ThreadDomain::ScopedInstall install(&context_);
  const Cycle end = now_ + cycles;
  while (now_ < end) {
    Step();
    SkipAhead(end);
  }
}

bool Simulator::RunUntil(const std::function<bool()>& pred, Cycle max_cycles) {
  ThreadDomain::ScopedInstall install(&context_);
  const Cycle end = now_ + max_cycles;
  while (now_ < end) {
    if (pred()) {
      return true;
    }
    Step();
    // Re-check at the fresh boundary BEFORE skipping: if the executed cycle
    // satisfied the predicate, now_ must stay here (the cycle count callers
    // observe), not at the far side of a jump.
    if (pred()) {
      return true;
    }
    SkipAhead(end);
  }
  return pred();
}

}  // namespace apiary
