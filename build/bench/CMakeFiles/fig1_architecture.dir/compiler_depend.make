# Empty compiler generated dependencies file for fig1_architecture.
# This may be replaced when dependencies are built.
