// Segment-based memory allocation — Apiary's memory isolation substrate.
//
// Section 4.6: "For simplicity and flexibility, we choose to do memory
// isolation via segments with capabilities... Segments allow more flexibility
// in the size of an memory allocation, reducing resource stranding."
//
// The allocator hands out variable-size, contiguous segments from a physical
// address range using a sorted free list with first-fit or best-fit policy
// and eager coalescing on free. It tracks the stranding statistics that
// experiment E5 compares against the paged baseline.
#ifndef SRC_MEM_SEGMENT_ALLOCATOR_H_
#define SRC_MEM_SEGMENT_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/stats/summary.h"

namespace apiary {

struct Segment {
  uint64_t base = 0;
  uint64_t length = 0;

  uint64_t end() const { return base + length; }
  bool Contains(uint64_t addr, uint64_t bytes) const {
    return addr >= base && bytes <= length && addr - base <= length - bytes;
  }
};

enum class FitPolicy {
  kFirstFit,
  kBestFit,
};

class SegmentAllocator {
 public:
  SegmentAllocator(uint64_t base, uint64_t capacity, FitPolicy policy = FitPolicy::kBestFit);

  // Allocates `bytes` aligned to `alignment` (a power of two). Returns
  // nullopt when no free range fits. Dropping the result strands the range
  // until the allocator is destroyed.
  [[nodiscard]] std::optional<Segment> Allocate(uint64_t bytes, uint64_t alignment = 64);

  // Frees a previously allocated segment. Returns false (and changes
  // nothing) for a segment that was not allocated by this allocator.
  bool Free(const Segment& segment);

  uint64_t capacity() const { return capacity_; }
  uint64_t bytes_allocated() const { return bytes_allocated_; }
  uint64_t bytes_free() const { return capacity_ - bytes_allocated_; }
  size_t free_chunks() const { return free_by_base_.size(); }
  size_t live_segments() const { return allocated_.size(); }

  // Largest single allocation that could currently succeed.
  uint64_t LargestFreeChunk() const;

  // External fragmentation: 1 - largest_free/total_free (0 when unfragmented
  // or when nothing is free).
  double ExternalFragmentation() const;

  const CounterSet& counters() const { return counters_; }

  // Debug rendering of the free list: "[base,+len) [base,+len) ...".
  std::string DumpFreeList() const;

 private:
  std::map<uint64_t, uint64_t>::iterator PickFreeChunk(uint64_t bytes, uint64_t alignment);

  uint64_t base_;
  uint64_t capacity_;
  FitPolicy policy_;
  // base -> length of each free chunk, address-ordered for O(log n) coalesce.
  std::map<uint64_t, uint64_t> free_by_base_;
  // base -> length of live allocations (for Free validation).
  std::map<uint64_t, uint64_t> allocated_;
  uint64_t bytes_allocated_ = 0;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_MEM_SEGMENT_ALLOCATOR_H_
