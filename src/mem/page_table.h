// Multi-level page table walk + TLB cost model, the translation-side
// baseline for experiment E5 (segments translate with a single bounds check;
// pages pay a TLB lookup and, on miss, a multi-level walk).
#ifndef SRC_MEM_PAGE_TABLE_H_
#define SRC_MEM_PAGE_TABLE_H_

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <vector>

#include "src/sim/types.h"
#include "src/stats/summary.h"

namespace apiary {

struct PageTableConfig {
  uint64_t page_bytes = 4096;
  uint32_t levels = 4;             // x86-64-style radix depth.
  Cycle cycles_per_level = 20;     // Memory access per level of the walk.
  uint32_t tlb_entries = 64;
  Cycle tlb_hit_cycles = 1;
};

// Per-address-space translation structure mapping virtual page numbers to
// physical frame numbers, with an LRU TLB in front.
class PageTable {
 public:
  explicit PageTable(PageTableConfig config);

  void Map(uint64_t vpn, uint64_t pfn);
  void Unmap(uint64_t vpn);

  struct Translation {
    uint64_t physical_addr;
    Cycle latency;  // TLB hit cost, or full walk cost on a miss.
    bool tlb_hit;
  };

  // Translates a virtual address; nullopt on an unmapped page (a fault).
  std::optional<Translation> Translate(uint64_t vaddr);

  uint64_t page_bytes() const { return config_.page_bytes; }
  const CounterSet& counters() const { return counters_; }

 private:
  void TouchTlb(uint64_t vpn);
  bool TlbLookup(uint64_t vpn);

  PageTableConfig config_;
  // Ordered maps so translation state never depends on hash iteration order
  // (the radix walk they model is order-deterministic anyway).
  std::map<uint64_t, uint64_t> mappings_;
  // LRU TLB: front = most recent.
  std::list<uint64_t> tlb_lru_;
  std::map<uint64_t, std::list<uint64_t>::iterator> tlb_index_;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_MEM_PAGE_TABLE_H_
