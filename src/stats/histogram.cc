#include "src/stats/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace apiary {

Histogram::Histogram() : buckets_(static_cast<size_t>(kMajorBuckets) * kSubBuckets, 0) {}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<size_t>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const int major = msb - kSubBucketBits + 1;
  const uint64_t sub = (value >> (msb - kSubBucketBits)) - kSubBuckets;
  return static_cast<size_t>(major) * kSubBuckets + static_cast<size_t>(sub) + kSubBuckets;
}

uint64_t Histogram::BucketValue(size_t index) {
  if (index < kSubBuckets) {
    return index;
  }
  index -= kSubBuckets;
  const size_t major = index / kSubBuckets;
  const size_t sub = index % kSubBuckets;
  // A bucket with msb m = major + kSubBucketBits - 1 covers values in
  // [(kSubBuckets + sub) << (major - 1), ((kSubBuckets + sub + 1) << (major - 1)) - 1].
  const int shift = static_cast<int>(major) - 1;
  return ((static_cast<uint64_t>(kSubBuckets) + sub + 1) << shift) - 1;
}

void Histogram::Record(uint64_t value) { RecordN(value, 1); }

void Histogram::RecordN(uint64_t value, uint64_t count) {
  if (count == 0) {
    return;
  }
  const size_t idx = BucketIndex(value);
  if (idx < buckets_.size()) {
    buckets_[idx] += count;
  } else {
    buckets_.back() += count;
  }
  count_ += count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  const double v = static_cast<double>(value);
  sum_ += v * static_cast<double>(count);
  sum_sq_ += v * v * static_cast<double>(count);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size() && i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = ~0ull;
  max_ = 0;
  sum_ = 0;
  sum_sq_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::StdDev() const {
  if (count_ == 0) {
    return 0.0;
  }
  const double mean = Mean();
  const double var = sum_sq_ / static_cast<double>(count_) - mean * mean;
  return var <= 0 ? 0.0 : std::sqrt(var);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::min(BucketValue(i), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50=%llu p99=%llu p99.9=%llu max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(P50()),
                static_cast<unsigned long long>(P99()),
                static_cast<unsigned long long>(P999()),
                static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace apiary
