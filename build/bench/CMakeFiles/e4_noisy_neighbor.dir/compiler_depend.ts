# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for e4_noisy_neighbor.
