// Shared helpers for board-level tests: a pre-wired simulator/board/kernel
// bundle and a scriptable probe accelerator.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <memory>

#include "src/accel/probe.h"
#include "src/core/kernel.h"
#include "src/fpga/board.h"
#include "src/sim/simulator.h"

namespace apiary {

struct TestBoardOptions {
  uint32_t width = 4;
  uint32_t height = 4;
  std::string part = "VU9P";
  MacKind mac = MacKind::k100G;
  bool with_pcie = false;
  // 0 keeps the BoardConfig default; orchestration tests shorten it so
  // reconfiguration-heavy scenarios fit test budgets.
  Cycle reconfig_cycles = 0;
  // 0 keeps the BoardConfig default (100k cells). Large meshes (8x8 and up)
  // must shrink the per-tile region to fit the part's logic-cell budget.
  uint64_t tile_region_cells = 0;
};

// Simulator + external network + board + kernel, wired in the right order.
struct TestBoard {
  explicit TestBoard(TestBoardOptions options = TestBoardOptions{})
      : net(25), board(MakeConfig(options), sim, &net), os(board) {
    sim.Register(&net);
  }

  static BoardConfig MakeConfig(const TestBoardOptions& options) {
    BoardConfig cfg;
    cfg.part_number = options.part;
    cfg.mesh = MeshConfig{options.width, options.height, 8, 512};
    cfg.dram.capacity_bytes = 64ull << 20;  // Keep test memory small.
    cfg.mac_kind = options.mac;
    cfg.with_pcie = options.with_pcie;
    if (options.reconfig_cycles != 0) {
      cfg.partial_reconfig_cycles = options.reconfig_cycles;
    }
    if (options.tile_region_cells != 0) {
      cfg.tile_region_cells = options.tile_region_cells;
    }
    return cfg;
  }

  Simulator sim{250.0};
  ExternalNetwork net;
  Board board;
  ApiaryOs os;
};

}  // namespace apiary

#endif  // TESTS_TEST_UTIL_H_
