file(REMOVE_RECURSE
  "CMakeFiles/e5_segments_vs_pages.dir/e5_segments_vs_pages.cc.o"
  "CMakeFiles/e5_segments_vs_pages.dir/e5_segments_vs_pages.cc.o.d"
  "e5_segments_vs_pages"
  "e5_segments_vs_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_segments_vs_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
