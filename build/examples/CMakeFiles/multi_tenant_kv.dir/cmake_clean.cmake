file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_kv.dir/multi_tenant_kv.cpp.o"
  "CMakeFiles/multi_tenant_kv.dir/multi_tenant_kv.cpp.o.d"
  "multi_tenant_kv"
  "multi_tenant_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
