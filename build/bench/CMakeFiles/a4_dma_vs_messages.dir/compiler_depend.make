# Empty compiler generated dependencies file for a4_dma_vs_messages.
# This may be replaced when dependencies are built.
