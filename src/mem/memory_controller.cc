#include "src/mem/memory_controller.h"

#include <algorithm>
#include <cstring>

namespace apiary {

MemoryController::MemoryController(DramConfig config)
    : dram_(config), store_(config.capacity_bytes, 0) {}

bool MemoryController::SubmitRead(uint64_t addr, std::span<uint8_t> out,
                                  std::function<void(Cycle)> done) {
  if (!InBounds(addr, out.size())) {
    return false;
  }
  // Copy at completion time so a racing write that lands before the DRAM
  // latency elapses is observed, matching a real controller's ordering point.
  auto copy_then_done = [this, addr, out, done = std::move(done)](Cycle now) {
    std::memcpy(out.data(), store_.data() + addr, out.size());
    if (done) {
      done(now);
    }
  };
  return dram_.Enqueue(addr, static_cast<uint32_t>(out.size()), /*is_write=*/false,
                       std::move(copy_then_done));
}

bool MemoryController::SubmitWrite(uint64_t addr, std::span<const uint8_t> data,
                                   std::function<void(Cycle)> done) {
  if (!InBounds(addr, data.size())) {
    return false;
  }
  std::memcpy(store_.data() + addr, data.data(), data.size());
  return dram_.Enqueue(addr, static_cast<uint32_t>(data.size()), /*is_write=*/true,
                       std::move(done));
}

void MemoryController::DebugWrite(uint64_t addr, std::span<const uint8_t> data) {
  if (InBounds(addr, data.size())) {
    std::memcpy(store_.data() + addr, data.data(), data.size());
  }
}

BitFlipResult MemoryController::InjectBitFlip(uint64_t addr, uint32_t bit) {
  if (addr >= store_.size()) {
    return BitFlipResult::kOutOfRange;
  }
  if (ecc_enabled_) {
    // SECDED corrects isolated single-bit flips before they reach the bus.
    return BitFlipResult::kCorrectedByEcc;
  }
  store_[addr] ^= static_cast<uint8_t>(1u << (bit & 7));
  return BitFlipResult::kCorrupted;
}

std::vector<uint8_t> MemoryController::DebugRead(uint64_t addr, uint64_t len) const {
  std::vector<uint8_t> out;
  if (InBounds(addr, len)) {
    out.assign(store_.begin() + static_cast<ptrdiff_t>(addr),
               store_.begin() + static_cast<ptrdiff_t>(addr + len));
  }
  return out;
}

}  // namespace apiary
