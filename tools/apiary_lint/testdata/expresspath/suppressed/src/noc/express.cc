// Suppressed: a deliberately allocating cold path (debug dump) with the
// in-line marker the check honors.
#include <cstdint>
#include <vector>

namespace apiary {

class ExpressLane {
 public:
  void Configure(uint32_t num_tiles);
  void DumpForDebug();

 private:
  std::vector<uint16_t> path_owner_;
};

void ExpressLane::Configure(uint32_t num_tiles) {
  path_owner_.assign(num_tiles, 0);
}

void ExpressLane::DumpForDebug() {
  std::vector<uint16_t> snapshot;
  snapshot.reserve(path_owner_.size());  // NOLINT(apiary-hot-path): debug-only dump, never on the executed-cycle path
  // NOLINTNEXTLINE(apiary-hot-path): debug-only dump, never on the executed-cycle path
  snapshot.assign(path_owner_.begin(), path_owner_.end());
}

}  // namespace apiary
