// Minimal leveled logging for the simulator. Logging is off by default so
// tests and benchmarks stay quiet; examples turn it on for narration.
#ifndef SRC_SIM_LOGGING_H_
#define SRC_SIM_LOGGING_H_

#include <sstream>
#include <string>

namespace apiary {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

// Global log threshold. Messages below this level are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Redirects enabled log lines into `sink` instead of stderr (nullptr
// restores stderr). Used by the determinism regression to capture and diff
// the full trace of two seeded runs.
using LogSink = void (*)(LogLevel level, const std::string& line, void* user);
void SetLogSink(LogSink sink, void* user);

// Emits one log line (with level prefix) to the sink or stderr if enabled.
void LogMessage(LogLevel level, const std::string& msg);

// Stream-style helper: APIARY_LOG(kInfo) << "tile " << id << " booted";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= GetLogLevel()) {
      stream_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace apiary

#define APIARY_LOG(level) ::apiary::LogLine(::apiary::LogLevel::level)

#endif  // SRC_SIM_LOGGING_H_
