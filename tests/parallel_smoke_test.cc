// Two-thread confinement smoke test: two independent Simulators, each built
// and run on its own thread inside its own SimContext domain, must produce
// traces byte-identical to the same scenarios run solo on the main thread.
//
// This is the proof obligation behind the domain-confinement discipline
// (apiary-global-state / apiary-domain-confinement in tools/apiary_lint):
// with packet pools, payload arenas and log sinks hanging off SimContext
// instead of process globals, two domains share no mutable simulation
// state — so running them concurrently changes nothing. Under
// APIARY_SANITIZE=thread this doubles as the TSan harness CI runs: any
// leftover cross-domain write is a reported race, not a silent flake.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>

#include "src/accel/echo.h"
#include "src/accel/probe.h"
#include "src/core/service_ids.h"
#include "src/sim/logging.h"
#include "src/sim/parallel/thread_domain.h"
#include "src/sim/sim_context.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

void CaptureSink(LogLevel level, const std::string& line, void* user) {
  auto* out = static_cast<std::string*>(user);
  *out += std::to_string(static_cast<int>(level));
  *out += ' ';
  *out += line;
  *out += '\n';
}

// Builds a board and drives a seeded echo workload entirely inside this
// thread's domain. The context sink captures every log line the domain
// emits — construction included, since the ScopedInstall wraps the build.
std::string RunWorkload(uint64_t seed) {
  std::string trace;
  Simulator sim{250.0};
  sim.context().SetLogSink(&CaptureSink, &trace);
  ThreadDomain::ScopedInstall install(&sim.context());

  ExternalNetwork net(25);
  Board board(TestBoard::MakeConfig(TestBoardOptions{}), sim, &net);
  ApiaryOs os(board);
  sim.Register(&net);

  AppId app = os.CreateApp("smoke");
  ServiceId svc = 0;
  os.Deploy(app, std::make_unique<EchoAccelerator>(/*service_cycles=*/0), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId ct = os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = os.GrantSendToService(ct, svc);

  for (int burst = 0; burst < 8; ++burst) {
    for (int i = 0; i < 4; ++i) {
      Message msg;
      msg.opcode = kOpEcho;
      msg.payload.assign(48 + (seed + burst + i) % 64,
                         static_cast<uint8_t>(seed ^ (burst * 4 + i)));
      probe->EnqueueSend(std::move(msg), cap);
    }
    sim.Run(2'000);
    // Routed through the domain sink — under TSan this is the line that
    // would race if two domains ever shared a trace buffer.
    APIARY_LOG(kDebug) << "burst " << burst << " t=" << sim.now()
                       << " recv=" << probe->received.size();
  }
  sim.Run(50'000);  // Drain.
  EXPECT_FALSE(probe->received.empty());
  for (const Message& m : probe->received) {
    uint32_t sum = 0;
    for (uint8_t b : m.payload) sum = sum * 31 + b;
    trace += "recv len=" + std::to_string(m.payload.size()) +
             " sum=" + std::to_string(sum) + '\n';
  }
  return trace;
}

TEST(ParallelSmokeTest, TwoThreadedDomainsMatchSoloRunsByteForByte) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);

  // Solo reference runs, sequential on this thread.
  const std::string solo_a = RunWorkload(7);
  const std::string solo_b = RunWorkload(21);
  ASSERT_FALSE(solo_a.empty());
  // The seed must actually steer the run, or an always-empty/seed-blind
  // trace would fake the comparison out.
  ASSERT_NE(solo_a, solo_b);

  // The same two scenarios, concurrently, one domain per thread.
  std::string threaded_a;
  std::string threaded_b;
  std::thread ta([&] { threaded_a = RunWorkload(7); });
  std::thread tb([&] { threaded_b = RunWorkload(21); });
  ta.join();
  tb.join();
  SetLogLevel(prev);

  EXPECT_EQ(threaded_a, solo_a);
  EXPECT_EQ(threaded_b, solo_b);
}

TEST(ParallelSmokeTest, RepeatedConcurrentRunsStayIdentical) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  std::string first_a;
  std::string first_b;
  for (int round = 0; round < 2; ++round) {
    std::string a;
    std::string b;
    std::thread ta([&] { a = RunWorkload(3); });
    std::thread tb([&] { b = RunWorkload(5); });
    ta.join();
    tb.join();
    if (round == 0) {
      first_a = a;
      first_b = b;
    } else {
      EXPECT_EQ(a, first_a);
      EXPECT_EQ(b, first_b);
    }
  }
  SetLogLevel(prev);
}

}  // namespace
}  // namespace apiary
