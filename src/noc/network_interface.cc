#include "src/noc/network_interface.h"

#include "src/noc/express.h"

namespace apiary {

NetworkInterface::NetworkInterface(TileId tile, Router* router, uint32_t inject_queue_flits,
                                   bool force_single_vc, PacketPool* pool)
    : tile_(tile),
      router_(router),
      inject_queue_flits_(inject_queue_flits),
      force_single_vc_(force_single_vc),
      pool_(pool) {
  for (auto& queue : inject_queues_) {
    queue.Init(inject_queue_flits_);
  }
}

uint32_t NetworkInterface::LogicCellCost() {
  // Packetization, reassembly and queue logic; roughly half a router.
  return 2000;
}

bool NetworkInterface::CanInject(uint32_t flits, Vc vc) const {
  uint32_t pending = static_cast<uint32_t>(inject_queues_[static_cast<int>(vc)].size());
  if (express_ != nullptr) {
    // A corridor sourced here drained this queue at launch; count what the
    // real run's queue would still hold so backpressure decisions (and their
    // counters) stay byte-identical.
    pending += express_->VirtualPending(tile_, static_cast<int>(vc));
  }
  return pending + flits <= inject_queue_flits_;
}

bool NetworkInterface::Inject(PacketRef packet, Cycle now) {
  if (express_ != nullptr) {
    // New traffic from this tile ends any corridor launched here: its
    // unlaunched flits must requeue ahead of this packet, in order.
    express_->MaterializeSource(tile_);
  }
  if (force_single_vc_) {
    packet->vc = Vc::kRequest;  // Single-VC ablation: everything shares VC0.
  }
  // Flit count is computed once here and cached; every subsequent
  // is_tail() on the wire is a compare, not a division.
  const uint32_t flits = ComputeFlitCount(*packet);
  packet->flit_count = flits;
  if (!CanInject(flits, packet->vc)) {
    counters_.Add("ni.inject_backpressure");
    return false;
  }
  packet->inject_cycle = now;
  if (packet->checksum == 0) {
    // Hand-built packet (no serializer stamp): checksum the wire image now.
    packet->checksum = PacketWireChecksum(*packet);
  }
  auto& queue = inject_queues_[static_cast<int>(packet->vc)];
  for (uint32_t i = 0; i + 1 < flits; ++i) {
    queue.push_back(Flit{packet, i});
  }
  queue.push_back(Flit{std::move(packet), flits - 1});
  counters_.Add("ni.packets_injected");
  counters_.Add("ni.flits_injected", flits);
  // Idle-to-busy transition: publish this NI into the mesh's live set.
  if (!live_marked_ && live_out_ != nullptr) {
    live_out_->push_back(tile_);
    live_marked_ = true;
  }
  return true;
}

void NetworkInterface::InjectCycle(Cycle now) {
  if (express_ != nullptr && express_->TryLaunch(*this, now)) {
    // The corridor's closed-form schedule covers this cycle's injection (and
    // every later one) — the queue has been drained into it.
    return;
  }
  // One flit per cycle onto the local port, round-robin across VCs.
  for (int i = 0; i < kNumVcs; ++i) {
    auto& queue = inject_queues_[(inject_rr_ + i) % kNumVcs];
    if (queue.empty()) {
      continue;
    }
    if (router_->AcceptFlit(kPortLocal, queue.front())) {
      queue.pop_front();
      inject_rr_ = (inject_rr_ + i + 1) % kNumVcs;
      return;
    }
  }
}

void NetworkInterface::EjectFlit(const Flit& flit, Cycle now) {
  counters_.Add("ni.flits_ejected");
  if (!flit.is_tail()) {
    return;
  }
  // The cached flit count must still describe the wire image; a mismatch
  // means something resized the payload mid-flight.
  assert(flit.packet->flit_count == ComputeFlitCount(*flit.packet));
  if (flit.packet->dropped) {
    // A link fault swallowed part of this packet in flight.
    counters_.Add("ni.packets_dropped_fault");
    return;
  }
  if (flit.packet->checksum != 0 &&
      flit.packet->checksum != PacketWireChecksum(*flit.packet)) {
    // Corruption is detected here, never silently consumed: the packet is
    // discarded and the loss surfaces as a counter (and, one layer up, as a
    // request timeout rather than a garbled message).
    counters_.Add("ni.checksum_drops");
    return;
  }
  latency_.Record(now - flit.packet->inject_cycle);
  counters_.Add("ni.packets_delivered");
  delivered_.push_back(flit.packet);
  // New deliverable input for the tile above: end its parked quiescence.
  sink_wake_.Wake();
}

PacketRef NetworkInterface::Retrieve() {
  if (delivered_.empty()) {
    return PacketRef();
  }
  PacketRef packet = std::move(delivered_.front());
  delivered_.pop_front();
  return packet;
}

}  // namespace apiary
