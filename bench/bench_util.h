// Shared setup helpers for the benchmark harnesses.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/kernel.h"
#include "src/core/service_ids.h"
#include "src/fpga/board.h"
#include "src/services/memory_service.h"
#include "src/services/network_service.h"
#include "src/sim/simulator.h"
#include "src/stats/table.h"

namespace apiary {

struct BenchBoardOptions {
  uint32_t width = 4;
  uint32_t height = 4;
  std::string part = "VU9P";
  MacKind mac = MacKind::k100G;
  uint64_t dram_bytes = 256ull << 20;
  double clock_mhz = 250.0;
  Cycle fabric_latency_cycles = 25;  // ~100ns one-way datacenter hop.
  // 0 keeps the BoardConfig default (100k cells). Large meshes (8x8 and up)
  // must shrink the per-tile region to fit the part's logic-cell budget.
  uint64_t tile_region_cells = 0;
};

// Simulator + external network + board + kernel, with the standard OS
// services (memory + network) deployed on the first tiles.
struct BenchBoard {
  explicit BenchBoard(BenchBoardOptions options = BenchBoardOptions{},
                      bool deploy_services = true)
      : sim(options.clock_mhz),
        net(options.fabric_latency_cycles),
        board(MakeConfig(options), sim, &net),
        os(board) {
    sim.Register(&net);
    if (deploy_services) {
      os.DeployService(kMemoryService, std::make_unique<MemoryService>(&os, &board.memory()));
      if (options.mac == MacKind::k100G) {
        os.DeployService(kNetworkService,
                         std::make_unique<NetworkService>(
                             &os, std::make_unique<Mac100GAdapter>(board.mac100g())));
      } else if (options.mac == MacKind::k10G) {
        os.DeployService(kNetworkService,
                         std::make_unique<NetworkService>(
                             &os, std::make_unique<Mac10GAdapter>(board.mac10g())));
      }
    }
  }

  static BoardConfig MakeConfig(const BenchBoardOptions& options) {
    BoardConfig cfg;
    cfg.part_number = options.part;
    cfg.mesh = MeshConfig{options.width, options.height, 8, 512};
    cfg.dram.capacity_bytes = options.dram_bytes;
    cfg.mac_kind = options.mac;
    if (options.tile_region_cells != 0) {
      cfg.tile_region_cells = options.tile_region_cells;
    }
    return cfg;
  }

  Simulator sim;
  ExternalNetwork net;
  Board board;
  ApiaryOs os;
};

// Machine-readable result emitter: the human-facing tables stay on stdout,
// and the same numbers land in a JSON file CI archives as an artifact.
// Shape: {"name": ..., "params": {...}, "rows": [{...}, ...]}.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Param(const std::string& key, const std::string& value) {
    params_.emplace_back(key, Quote(value));
  }
  void Param(const std::string& key, const char* value) {
    Param(key, std::string(value));
  }
  void Param(const std::string& key, double value) {
    params_.emplace_back(key, Number(value));
  }
  void Param(const std::string& key, uint64_t value) {
    params_.emplace_back(key, std::to_string(value));
  }
  void Param(const std::string& key, int value) {
    params_.emplace_back(key, std::to_string(value));
  }

  void BeginRow() { rows_.emplace_back(); }
  void Metric(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, Quote(value));
  }
  void Metric(const std::string& key, const char* value) {
    Metric(key, std::string(value));
  }
  void Metric(const std::string& key, double value) {
    rows_.back().emplace_back(key, Number(value));
  }
  void Metric(const std::string& key, uint64_t value) {
    rows_.back().emplace_back(key, std::to_string(value));
  }
  void Metric(const std::string& key, int value) {
    rows_.back().emplace_back(key, std::to_string(value));
  }

  std::string ToJson() const {
    std::ostringstream out;
    out << "{\n  \"name\": " << Quote(name_) << ",\n  \"params\": {";
    for (size_t i = 0; i < params_.size(); ++i) {
      out << (i == 0 ? "" : ", ") << Quote(params_[i].first) << ": "
          << params_[i].second;
    }
    out << "},\n  \"rows\": [\n";
    for (size_t r = 0; r < rows_.size(); ++r) {
      out << "    {";
      for (size_t i = 0; i < rows_[r].size(); ++i) {
        out << (i == 0 ? "" : ", ") << Quote(rows_[r][i].first) << ": "
            << rows_[r][i].second;
      }
      out << "}" << (r + 1 == rows_.size() ? "" : ",") << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
  }

  // Returns false (and prints to stderr) when the file cannot be written.
  bool WriteFile(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    out << ToJson();
    return true;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
      }
      out += c;
    }
    out += '"';
    return out;
  }
  static std::string Number(double value) {
    std::ostringstream out;
    out << value;
    return out.str();
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

// `--json <path>` argument, or "" when absent.
inline std::string JsonPathArg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      return argv[i + 1];
    }
  }
  return "";
}

inline bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) {
      return true;
    }
  }
  return false;
}

// `--flag N` / `--flag=N` integer argument, or `def` when absent.
inline uint64_t IntArg(int argc, char** argv, const std::string& flag, uint64_t def) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == flag && i + 1 < argc) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtoull(arg.c_str() + prefix.size(), nullptr, 10);
    }
  }
  return def;
}

}  // namespace apiary

#endif  // BENCH_BENCH_UTIL_H_
