#include "src/mem/segment_allocator.h"

#include <algorithm>
#include <sstream>

namespace apiary {
namespace {

uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

}  // namespace

SegmentAllocator::SegmentAllocator(uint64_t base, uint64_t capacity, FitPolicy policy)
    : base_(base), capacity_(capacity), policy_(policy) {
  free_by_base_[base_] = capacity_;
}

std::map<uint64_t, uint64_t>::iterator SegmentAllocator::PickFreeChunk(uint64_t bytes,
                                                                       uint64_t alignment) {
  auto best = free_by_base_.end();
  uint64_t best_len = ~0ull;
  for (auto it = free_by_base_.begin(); it != free_by_base_.end(); ++it) {
    const uint64_t aligned = AlignUp(it->first, alignment);
    const uint64_t padding = aligned - it->first;
    if (it->second < padding || it->second - padding < bytes) {
      continue;
    }
    if (policy_ == FitPolicy::kFirstFit) {
      return it;
    }
    if (it->second < best_len) {
      best = it;
      best_len = it->second;
    }
  }
  return best;
}

std::optional<Segment> SegmentAllocator::Allocate(uint64_t bytes, uint64_t alignment) {
  if (bytes == 0 || (alignment & (alignment - 1)) != 0) {
    counters_.Add("segalloc.bad_request");
    return std::nullopt;
  }
  auto it = PickFreeChunk(bytes, alignment);
  if (it == free_by_base_.end()) {
    counters_.Add("segalloc.failures");
    return std::nullopt;
  }
  const uint64_t chunk_base = it->first;
  const uint64_t chunk_len = it->second;
  const uint64_t aligned = AlignUp(chunk_base, alignment);
  const uint64_t pre_pad = aligned - chunk_base;
  const uint64_t post = chunk_len - pre_pad - bytes;
  free_by_base_.erase(it);
  if (pre_pad > 0) {
    free_by_base_[chunk_base] = pre_pad;
  }
  if (post > 0) {
    free_by_base_[aligned + bytes] = post;
  }
  allocated_[aligned] = bytes;
  bytes_allocated_ += bytes;
  counters_.Add("segalloc.allocs");
  counters_.Add("segalloc.bytes_served", bytes);
  return Segment{aligned, bytes};
}

bool SegmentAllocator::Free(const Segment& segment) {
  auto it = allocated_.find(segment.base);
  if (it == allocated_.end() || it->second != segment.length) {
    counters_.Add("segalloc.bad_free");
    return false;
  }
  allocated_.erase(it);
  bytes_allocated_ -= segment.length;
  counters_.Add("segalloc.frees");

  // Insert into the free list and coalesce with address-adjacent neighbours.
  auto [pos, inserted] = free_by_base_.emplace(segment.base, segment.length);
  (void)inserted;
  // Coalesce with the previous chunk.
  if (pos != free_by_base_.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      prev->second += pos->second;
      free_by_base_.erase(pos);
      pos = prev;
    }
  }
  // Coalesce with the next chunk.
  auto next = std::next(pos);
  if (next != free_by_base_.end() && pos->first + pos->second == next->first) {
    pos->second += next->second;
    free_by_base_.erase(next);
  }
  return true;
}

uint64_t SegmentAllocator::LargestFreeChunk() const {
  uint64_t largest = 0;
  for (const auto& [base, len] : free_by_base_) {
    largest = std::max(largest, len);
  }
  return largest;
}

double SegmentAllocator::ExternalFragmentation() const {
  const uint64_t total_free = bytes_free();
  if (total_free == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(LargestFreeChunk()) / static_cast<double>(total_free);
}

std::string SegmentAllocator::DumpFreeList() const {
  std::ostringstream out;
  for (const auto& [base, len] : free_by_base_) {
    out << '[' << base << ",+" << len << ") ";
  }
  return out.str();
}

}  // namespace apiary
