// B4: active-set scheduler benefit as a function of active fraction.
//
// PR 4's quiescence skipping only pays off when the whole board is idle; the
// active-set scheduler attacks the partial-load regime where an executed
// cycle used to pay a virtual Tick on every registered block. This harness
// measures that directly, in two legs:
//
//   * Duty-cycle sweep: N synthetic blocks on a bare Simulator, each busy
//     for a staggered window covering `f` percent of a fixed period and
//     parked on the timer wheel in between. Sweeping f from 5% to 100%
//     plots executed-cycle wall throughput with the active set on vs off
//     (the `--no-active-set` tick-everything baseline). The acceptance bar
//     is >= 1.3x at 30-50% activity.
//   * Saturated-board guardrail: the B2 shape (closed-loop echo pairs on a
//     4x4 board, every cycle executed, every block busy) where the active
//     set cannot win and must not lose: the bar is >= 0.97x of the
//     tick-everything baseline.
//
// Both legs re-run the identical seeded scenario in both modes and compare
// every simulation-visible count (per-block tick counts and digests in the
// sweep; traffic counts in the board leg). Any divergence is a correctness
// bug, not noise, and fails the run.
//
// `--smoke` shrinks the run for CI; `--json <path>` emits the numbers CI
// archives, including express corridor counters from the board leg (the
// saturated shape leaves inject queues multi-packet, so hits are expected
// near zero — reported for CI visibility, not as a win); `--no-active-set`
// runs only the tick-everything baseline; `--no-express` disables the
// corridor fast path on the board leg; `--no-active-sweep` additionally
// disables the mesh's internal live-list sweep on the board leg (ablation
// of the mesh-level half of the optimization, independent of the
// scheduler-level half).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/core/kernel.h"
#include "src/core/message.h"
#include "src/noc/express.h"
#include "src/sim/clocked.h"
#include "src/sim/simulator.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

constexpr uint32_t kSweepBlocks = 256;  // Blocks in the synthetic sweep.
constexpr Cycle kDutyPeriod = 1'000;    // One duty cycle, per block.

// A block that is busy for `busy_len` cycles out of every kDutyPeriod,
// phase-staggered by index so the board's aggregate activity stays flat at
// busy_len/kDutyPeriod. While parked it sits on the timer wheel until its
// next window opens — no external wakes involved, so the sweep isolates the
// scheduler's executed-cycle cost, not wake-path cost.
//
// The tick body models a router: every tick — busy or idle — sweeps the
// occupancy of 5 ports x 8 VCs worth of queue heads before deciding whether
// there is work. That idle-sweep cost is the whole point of the active set:
// the tick-everything baseline pays it on every registered block every
// executed cycle, the active set only on blocks whose declaration says they
// have work. (A cheap early-return idle tick would understate the win; real
// routers, NIs, and memory channels do not get to early-return before
// scanning their queues.)
class DutyBlock : public Clocked {
 public:
  DutyBlock(uint32_t index, Cycle busy_len)
      : offset_(static_cast<Cycle>(index) * 797 % kDutyPeriod), busy_len_(busy_len) {
    for (uint32_t i = 0; i < kQueueHeads; ++i) {
      occupancy_[i] = index + i;
    }
  }

  void Tick(Cycle now) override {
    // Fixed maintenance sweep, paid whether or not this turns out to be a
    // busy cycle — the router analogue of scanning every VC's head.
    uint64_t scan = 0;
    for (uint32_t i = 0; i < kQueueHeads; ++i) {
      scan += occupancy_[i];
    }
    asm volatile("" : "+r"(scan));  // The sweep is the measured work; keep it.
    // The baseline calls this on idle cycles too; the busy path must gate on
    // the same window the declaration announces or the two modes would
    // legitimately diverge.
    if (!Busy(now)) {
      return;
    }
    ++ticks_;
    digest_ = digest_ * 1099511628211ull + now + scan;
  }

  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    if (busy_len_ == 0) {
      return kNoActivity;
    }
    // Single phase computation: this is the boundary re-poll's hot path.
    const Cycle phase = Phase(now);
    if (phase < busy_len_) {
      return now;
    }
    // Parked until the next window opens; the wheel wakes us exactly then.
    return now + (kDutyPeriod - phase);
  }

  std::string DebugName() const override { return "duty_block"; }

  uint64_t ticks() const { return ticks_; }
  uint64_t digest() const { return digest_; }

 private:
  static constexpr uint32_t kQueueHeads = 40;  // 5 ports x 8 VCs.

  Cycle Phase(Cycle now) const { return (now + offset_) % kDutyPeriod; }
  bool Busy(Cycle now) const { return Phase(now) < busy_len_; }

  Cycle offset_;
  Cycle busy_len_;
  uint64_t occupancy_[kQueueHeads];
  uint64_t ticks_ = 0;
  uint64_t digest_ = 14695981039346656037ull;
};

struct SweepResult {
  double wall_seconds = 0;
  double mcycles_per_sec = 0;
  uint64_t total_ticks = 0;
  uint64_t digest = 0;  // XOR of per-block digests: order-insensitive, value-sensitive.
  uint64_t ticked_blocks = 0;
  uint64_t executed_cycles = 0;
  uint64_t wheel_wakes = 0;
  uint64_t wake_calls = 0;
  uint64_t block_count = 0;
  std::vector<uint64_t> per_block_ticks;

  double ActiveFraction() const {
    const double denom =
        static_cast<double>(executed_cycles) * static_cast<double>(block_count);
    return denom > 0 ? static_cast<double>(ticked_blocks) / denom : 0;
  }
};

SweepResult RunSweepPoint(uint32_t active_pct, bool active_set, Cycle run_cycles) {
  Simulator sim;
  sim.SetActiveSetEnabled(active_set);
  const Cycle busy_len = kDutyPeriod * active_pct / 100;
  std::vector<std::unique_ptr<DutyBlock>> blocks;
  blocks.reserve(kSweepBlocks);
  for (uint32_t i = 0; i < kSweepBlocks; ++i) {
    blocks.push_back(std::make_unique<DutyBlock>(i, busy_len));
    sim.Register(blocks.back().get());
  }

  const auto t0 = std::chrono::steady_clock::now();  // NOLINT(apiary-determinism): host wall time is the measurand, never fed back into sim state
  sim.Run(run_cycles);
  const auto t1 = std::chrono::steady_clock::now();  // NOLINT(apiary-determinism): host wall time is the measurand, never fed back into sim state

  SweepResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.mcycles_per_sec =
      r.wall_seconds > 0 ? static_cast<double>(run_cycles) / r.wall_seconds / 1e6 : 0;
  for (const auto& b : blocks) {
    r.total_ticks += b->ticks();
    r.digest ^= b->digest();
    r.per_block_ticks.push_back(b->ticks());
  }
  r.ticked_blocks = sim.ticked_blocks();
  r.executed_cycles = sim.executed_cycles();
  r.wheel_wakes = sim.wheel_wakes();
  r.wake_calls = sim.wake_calls();
  r.block_count = sim.block_count();
  return r;
}

struct BoardResult {
  double wall_seconds = 0;
  double mcycles_per_sec = 0;
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t flits = 0;
  uint64_t ticked_blocks = 0;
  uint64_t executed_cycles = 0;
  uint64_t block_count = 0;
  ExpressStats express;

  double MeanCorridorHops() const {
    return express.delivered > 0
               ? static_cast<double>(express.hops_sum) /
                     static_cast<double>(express.delivered)
               : 0;
  }

  double ActiveFraction() const {
    const double denom =
        static_cast<double>(executed_cycles) * static_cast<double>(block_count);
    return denom > 0 ? static_cast<double>(ticked_blocks) / denom : 0;
  }
};

// Closed-loop echo driver (the B2 shape): keeps a full window outstanding
// forever, so every cycle is executed and the board never goes quiescent.
class SaturatingClient : public Accelerator {
 public:
  explicit SaturatingClient(ServiceId svc) : svc_(svc) {}

  void Tick(TileApi& api) override {
    while (in_flight_ < 16) {
      Message msg;
      msg.opcode = kOpEcho;
      msg.payload.assign(48, static_cast<uint8_t>(in_flight_));
      msg.request_id = ++next_id_;
      if (!api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
        break;
      }
      ++in_flight_;
      ++sent_;
    }
  }
  void OnMessage(const Message& msg, TileApi& api) override {
    (void)api;
    if (msg.kind == MsgKind::kResponse) {
      --in_flight_;
      ++received_;
    }
  }
  std::string name() const override { return "saturating_client"; }
  uint32_t LogicCellCost() const override { return 1000; }

  uint64_t sent() const { return sent_; }
  uint64_t received() const { return received_; }

 private:
  ServiceId svc_;
  uint32_t in_flight_ = 0;
  uint64_t next_id_ = 0;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

BoardResult RunBoard(bool active_set, bool active_sweep, bool express,
                     Cycle run_cycles) {
  BenchBoard bb;
  bb.sim.SetActiveSetEnabled(active_set);
  bb.board.mesh().SetActiveSweepEnabled(active_sweep);
  bb.board.mesh().SetExpressEnabled(express);
  ApiaryOs& os = bb.os;
  const AppId app = os.CreateApp("b4");

  std::vector<SaturatingClient*> clients;
  for (uint32_t i = 0; i < 4; ++i) {
    ServiceId echo_svc = 0;
    os.Deploy(app, std::make_unique<EchoAccelerator>(/*service_cycles=*/0), &echo_svc);
    auto client = std::make_unique<SaturatingClient>(echo_svc);
    clients.push_back(client.get());
    const TileId ct = os.Deploy(app, std::move(client));
    (void)os.GrantSendToService(ct, echo_svc);
  }

  const auto t0 = std::chrono::steady_clock::now();  // NOLINT(apiary-determinism): host wall time is the measurand, never fed back into sim state
  bb.sim.Run(run_cycles);
  const auto t1 = std::chrono::steady_clock::now();  // NOLINT(apiary-determinism): host wall time is the measurand, never fed back into sim state

  BoardResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.mcycles_per_sec =
      r.wall_seconds > 0 ? static_cast<double>(run_cycles) / r.wall_seconds / 1e6 : 0;
  for (const SaturatingClient* c : clients) {
    r.sent += c->sent();
    r.received += c->received();
  }
  r.flits = bb.board.mesh().TotalFlitsRouted();
  r.ticked_blocks = bb.sim.ticked_blocks();
  r.executed_cycles = bb.sim.executed_cycles();
  r.block_count = bb.sim.block_count();
  r.express = bb.board.mesh().AggregateExpressStats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const bool baseline_only = HasFlag(argc, argv, "--no-active-set");
  const bool no_active_sweep = HasFlag(argc, argv, "--no-active-sweep");
  const bool express = !HasFlag(argc, argv, "--no-express");
  const Cycle sweep_cycles = smoke ? 300'000 : 3'000'000;
  const Cycle board_cycles = smoke ? 200'000 : 2'000'000;

  std::printf("B4: active-set scheduler vs tick-everything, by active fraction\n");
  std::printf("(%u duty-cycle blocks, %llu-cycle period, %llu cycles per sweep point)\n\n",
              kSweepBlocks, static_cast<unsigned long long>(kDutyPeriod),
              static_cast<unsigned long long>(sweep_cycles));

  BenchJson json("b4_active_set");
  json.Param("sweep_blocks", static_cast<uint64_t>(kSweepBlocks));
  json.Param("duty_period", static_cast<uint64_t>(kDutyPeriod));
  json.Param("sweep_cycles", static_cast<uint64_t>(sweep_cycles));
  json.Param("board_cycles", static_cast<uint64_t>(board_cycles));
  json.Param("express", express ? 1 : 0);
  json.Param("smoke", smoke ? 1 : 0);

  Table table("B4: simulated Mcycles per wall-second vs active fraction");
  table.SetHeader({"active %", "tick-all Mcyc/s", "active-set Mcyc/s", "speedup",
                   "measured active", "wheel wakes"});

  bool consistent = true;
  for (const uint32_t pct : {5u, 10u, 30u, 50u, 75u, 100u}) {
    const SweepResult off = RunSweepPoint(pct, /*active_set=*/false, sweep_cycles);
    if (baseline_only) {
      table.AddRow({Table::Int(pct), Table::Num(off.mcycles_per_sec, 1), "-", "-",
                    "-", "-"});
      json.BeginRow();
      json.Metric("active_pct", static_cast<uint64_t>(pct));
      json.Metric("tickall_mcycles_per_sec", off.mcycles_per_sec);
      continue;
    }
    const SweepResult on = RunSweepPoint(pct, /*active_set=*/true, sweep_cycles);
    // The scheduler must be invisible to the simulation: identical per-block
    // tick counts and digests, or the active set skipped (or double-ticked)
    // a busy block somewhere.
    if (on.per_block_ticks != off.per_block_ticks || on.digest != off.digest) {
      std::fprintf(stderr,
                   "B4 FAIL: sweep point %u%% diverged (ticks %llu vs %llu, "
                   "digest %llx vs %llx)\n",
                   pct, static_cast<unsigned long long>(on.total_ticks),
                   static_cast<unsigned long long>(off.total_ticks),
                   static_cast<unsigned long long>(on.digest),
                   static_cast<unsigned long long>(off.digest));
      consistent = false;
    }
    const double speedup =
        off.mcycles_per_sec > 0 ? on.mcycles_per_sec / off.mcycles_per_sec : 0;
    table.AddRow({Table::Int(pct), Table::Num(off.mcycles_per_sec, 1),
                  Table::Num(on.mcycles_per_sec, 1), Table::Num(speedup, 2),
                  Table::Num(100.0 * on.ActiveFraction(), 1),
                  Table::Int(on.wheel_wakes)});
    json.BeginRow();
    json.Metric("active_pct", static_cast<uint64_t>(pct));
    json.Metric("tickall_mcycles_per_sec", off.mcycles_per_sec);
    json.Metric("activeset_mcycles_per_sec", on.mcycles_per_sec);
    json.Metric("speedup", speedup);
    json.Metric("ticked_blocks", on.ticked_blocks);
    json.Metric("executed_cycles", on.executed_cycles);
    json.Metric("active_fraction", on.ActiveFraction());
    json.Metric("wheel_wakes", on.wheel_wakes);
    json.Metric("wake_calls", on.wake_calls);
  }
  table.Print();

  // Saturated-board guardrail: the active set cannot win here (everything
  // is busy every cycle) and must not lose.
  const BoardResult boff = RunBoard(/*active_set=*/false,
                                    /*active_sweep=*/!no_active_sweep, express,
                                    board_cycles);
  if (!baseline_only) {
    const BoardResult bon = RunBoard(/*active_set=*/true,
                                     /*active_sweep=*/!no_active_sweep, express,
                                     board_cycles);
    if (bon.sent != boff.sent || bon.received != boff.received ||
        bon.flits != boff.flits) {
      std::fprintf(stderr,
                   "B4 FAIL: board leg diverged (sent %llu vs %llu, recv %llu vs "
                   "%llu, flits %llu vs %llu)\n",
                   static_cast<unsigned long long>(bon.sent),
                   static_cast<unsigned long long>(boff.sent),
                   static_cast<unsigned long long>(bon.received),
                   static_cast<unsigned long long>(boff.received),
                   static_cast<unsigned long long>(bon.flits),
                   static_cast<unsigned long long>(boff.flits));
      consistent = false;
    }
    const double ratio =
        boff.mcycles_per_sec > 0 ? bon.mcycles_per_sec / boff.mcycles_per_sec : 0;
    Table board_table("B4: saturated-board guardrail (target >= 0.97x)");
    board_table.SetHeader({"config", "tick-all Mcyc/s", "active-set Mcyc/s",
                           "ratio", "measured active"});
    board_table.AddRow({no_active_sweep ? "saturated, no mesh sweep" : "saturated",
                        Table::Num(boff.mcycles_per_sec, 1),
                        Table::Num(bon.mcycles_per_sec, 1), Table::Num(ratio, 2),
                        Table::Num(100.0 * bon.ActiveFraction(), 1)});
    board_table.Print();
    json.BeginRow();
    json.Metric("scenario", "saturated-board");
    json.Metric("tickall_mcycles_per_sec", boff.mcycles_per_sec);
    json.Metric("activeset_mcycles_per_sec", bon.mcycles_per_sec);
    json.Metric("speedup", ratio);
    json.Metric("messages", bon.received);
    json.Metric("active_fraction", bon.ActiveFraction());
    json.Metric("mesh_active_sweep", no_active_sweep ? 0 : 1);
    json.Metric("express_hits", bon.express.delivered);
    json.Metric("express_launches", bon.express.launches);
    json.Metric("materializations", bon.express.materializations);
    json.Metric("mean_corridor_hops", bon.MeanCorridorHops());
  }

  const std::string json_path = JsonPathArg(argc, argv);
  if (!json_path.empty() && !json.WriteFile(json_path)) {
    return 1;
  }
  return consistent ? 0 : 1;
}
