// NoC wire format: packets and flits.
//
// The NoC layer is deliberately ignorant of Apiary message semantics: it
// moves opaque bytes between tiles. Service naming, capabilities and
// policy all live one layer up in the monitor (Section 4.3: "the NoC allows
// us to move service naming to an API-layer interface").
//
// Hot-path memory discipline (DESIGN.md): packets are recycled through a
// PacketPool rather than heap-allocated per message, and are shared between
// their in-flight flits via the intrusive, non-atomic PacketRef instead of
// std::shared_ptr — the simulator is single-threaded, so every flit hop
// paying for atomic refcount traffic bought nothing. The wire image is
// split into a fixed head region (the serialized message header, filled in
// place by SerializeMessageInto) and a PayloadBuf payload (moved, never
// copied, from the sending Message); together they are what the flit count
// and the end-to-end checksum cover.
#ifndef SRC_NOC_PACKET_H_
#define SRC_NOC_PACKET_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "src/sim/payload_buf.h"
#include "src/sim/types.h"

namespace apiary {

class PacketPool;

// Virtual channels. Two VCs break message-dependent (request-response)
// deadlock cycles, per the deadlock literature the paper cites in 4.5.
enum class Vc : uint8_t {
  kRequest = 0,
  kResponse = 1,
};
inline constexpr int kNumVcs = 2;

// Width of a flit's data path. One head flit carries routing info; the wire
// image (head region + payload) rides in kFlitBytes-wide body flits.
inline constexpr uint32_t kFlitBytes = 32;

// Fixed head region: three flits' worth, enough for the core message
// header (70 bytes — message.cc static_asserts its layout fits here).
inline constexpr uint32_t kPacketHeadBytes = 3 * kFlitBytes;

// Arbitration classes for weighted bandwidth sharing. Class 0 is the
// default (kernel/services/unassigned traffic); tenants are mapped onto
// classes 1..kNumArbClasses-1 by the tenant manager. Routers with no
// configured weights ignore the field entirely.
inline constexpr int kNumArbClasses = 8;

struct NocPacket {
  TileId src = kInvalidTile;
  TileId dst = kInvalidTile;
  Vc vc = Vc::kRequest;
  // Bandwidth-arbitration class, stamped by the injecting monitor/NI.
  // Pooled packets are recycled without field resets, so every injection
  // site must assign it.
  uint8_t arb_class = 0;
  uint64_t packet_id = 0;
  Cycle inject_cycle = 0;
  // Serialized message header, written in place by SerializeMessageInto;
  // head_len == 0 for hand-built (header-less) packets.
  uint16_t head_len = 0;
  std::array<uint8_t, kPacketHeadBytes> head{};
  PayloadBuf payload;
  // End-to-end wire checksum, stamped at serialization (or by the injecting
  // NI for hand-built packets). The ejecting NI recomputes it so link-level
  // corruption is *detected* (and the packet discarded) instead of a garbled
  // message being silently consumed.
  uint32_t checksum = 0;  // 0 = unstamped (hand-built packets skip the check).
  // Flit count cached at injection so the per-hop is_tail() test is one
  // compare instead of a division through a pointer chase; the ejecting NI
  // asserts it still matches the wire size.
  uint32_t flit_count = 1;
  // Set when a link fault dropped one of this packet's flits in flight. The
  // remaining flits still traverse the wormhole path (preserving router
  // state) but the ejecting NI discards the packet.
  bool dropped = false;

  // Intrusive lifetime state, managed by PacketRef / PacketPool.
  uint32_t refs = 0;
  PacketPool* pool = nullptr;

  // The bytes the flit count and checksum cover: head region + payload.
  size_t wire_bytes() const { return head_len + payload.size(); }
  uint8_t* wire_byte(size_t i) {
    return i < head_len ? &head[i] : payload.data() + (i - head_len);
  }
  const uint8_t* wire_byte(size_t i) const {
    return i < head_len ? &head[i] : payload.data() + (i - head_len);
  }
};

// Defined in packet_pool.cc: returns the packet to its pool, or deletes it
// when it was heap-allocated (pool exhaustion / pooling disabled).
void ReleasePacket(NocPacket* packet);

// Intrusive non-atomic refcounted handle shared by a packet's flits and the
// delivery queue. When the last reference drops, the packet returns to its
// PacketPool (or the heap) — there is no control block to allocate and no
// atomic traffic on the per-hop copies.
class PacketRef {
 public:
  PacketRef() = default;
  // Adopts `packet`, adding one reference.
  explicit PacketRef(NocPacket* packet) : packet_(packet) {
    if (packet_ != nullptr) {
      ++packet_->refs;
    }
  }
  PacketRef(const PacketRef& other) : packet_(other.packet_) {
    if (packet_ != nullptr) {
      ++packet_->refs;
    }
  }
  PacketRef(PacketRef&& other) noexcept : packet_(other.packet_) { other.packet_ = nullptr; }
  PacketRef& operator=(const PacketRef& other) {
    if (this != &other) {
      Reset();
      packet_ = other.packet_;
      if (packet_ != nullptr) {
        ++packet_->refs;
      }
    }
    return *this;
  }
  PacketRef& operator=(PacketRef&& other) noexcept {
    if (this != &other) {
      Reset();
      packet_ = other.packet_;
      other.packet_ = nullptr;
    }
    return *this;
  }
  ~PacketRef() { Reset(); }

  NocPacket* get() const { return packet_; }
  NocPacket& operator*() const { return *packet_; }
  NocPacket* operator->() const { return packet_; }
  explicit operator bool() const { return packet_ != nullptr; }
  friend bool operator==(const PacketRef& a, std::nullptr_t) { return a.packet_ == nullptr; }
  friend bool operator!=(const PacketRef& a, std::nullptr_t) { return a.packet_ != nullptr; }

  void Reset() {
    if (packet_ != nullptr && --packet_->refs == 0) {
      ReleasePacket(packet_);
    }
    packet_ = nullptr;
  }

 private:
  NocPacket* packet_ = nullptr;
};

// FNV-1a running update; cheap stand-in for a per-packet CRC. Exposed so
// the serializer can fold the head region and payload into one logical pass
// without materializing a contiguous wire copy.
inline uint32_t ChecksumUpdate(uint32_t h, const uint8_t* bytes, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    h = (h ^ bytes[i]) * 16777619u;
  }
  return h;
}

inline constexpr uint32_t kChecksumSeed = 2166136261u;

inline uint32_t PacketChecksum(const uint8_t* bytes, size_t len) {
  return ChecksumUpdate(kChecksumSeed, bytes, len);
}

// Thin overload for tests and cold callers that still hold vectors.
// NOLINTNEXTLINE(apiary-hot-path): cold-caller convenience overload, never on the executed-cycle path
inline uint32_t PacketChecksum(const std::vector<uint8_t>& payload) {
  return PacketChecksum(payload.data(), payload.size());
}

// Checksum over a packet's full wire image (head region, then payload —
// byte-identical to hashing the old contiguous serialization).
inline uint32_t PacketWireChecksum(const NocPacket& packet) {
  const uint32_t h = ChecksumUpdate(kChecksumSeed, packet.head.data(), packet.head_len);
  return ChecksumUpdate(h, packet.payload.data(), packet.payload.size());
}

// Number of flits a packet occupies on the wire: one head flit plus the
// wire image in kFlitBytes chunks. Evaluated once at injection (cached in
// NocPacket::flit_count), not per hop.
inline uint32_t ComputeFlitCount(const NocPacket& packet) {
  return 1 + static_cast<uint32_t>((packet.wire_bytes() + kFlitBytes - 1) / kFlitBytes);
}

// A flit in flight: a reference into its parent packet. The packet object is
// shared by all of its flits and handed to the destination NI when the tail
// arrives.
struct Flit {
  PacketRef packet;
  uint32_t index = 0;

  bool is_head() const { return index == 0; }
  bool is_tail() const { return index + 1 == packet->flit_count; }
  TileId dst() const { return packet->dst; }
  Vc vc() const { return packet->vc; }
};

}  // namespace apiary

#endif  // SRC_NOC_PACKET_H_
