// Bad: an untrusted accelerator reaching into the orchestration control
// plane — scaling decisions belong to the kernel side, not tenants.
#ifndef SRC_ACCEL_ELASTIC_H_
#define SRC_ACCEL_ELASTIC_H_

#include "src/orch/autoscaler.h"

#endif  // SRC_ACCEL_ELASTIC_H_
