file(REMOVE_RECURSE
  "CMakeFiles/a3_allocator_policy.dir/a3_allocator_policy.cc.o"
  "CMakeFiles/a3_allocator_policy.dir/a3_allocator_policy.cc.o.d"
  "a3_allocator_policy"
  "a3_allocator_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3_allocator_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
