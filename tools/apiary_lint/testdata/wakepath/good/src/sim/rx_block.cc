// Quiescence-contract fixtures: every "idle until external input"
// declaration either shows its wake path or names its waker.
namespace apiary {

// Evidence in-file: the delivery path fires RequestWake(), so a parked
// block is re-activated the moment input lands.
class RxQueue : public Clocked {
 public:
  void Deliver(int item) {
    pending_.push_back(item);
    RequestWake();
  }
  void Tick(Cycle now) override { Drain(now); }
  Cycle NextActivity(Cycle now) const override {
    return pending_.empty() ? kNoActivity : now;
  }
  std::string DebugName() const override { return "rx_queue"; }

 private:
  void Drain(Cycle now);
  std::vector<int> pending_;
};

// Waker lives elsewhere: the annotation names it, keeping the audit trail
// next to the declaration the scheduler parks on.
class StatsService : public Clocked {
 public:
  void Tick(Cycle now) override { (void)now; }
  // APIARY-WAKE(tile): purely reactive — the owning Tile wakes this block
  // when its network interface delivers a message.
  Cycle NextActivity(Cycle now) const override {
    (void)now;
    return kNoActivity;
  }
  std::string DebugName() const override { return "stats_service"; }
};

// A declaration that never goes fully idle needs neither: parking is
// always bounded by the returned deadline.
class Heartbeat : public Clocked {
 public:
  void Tick(Cycle now) override { last_ = now; }
  Cycle NextActivity(Cycle now) const override {
    const Cycle at = last_ + 100;
    return at > now ? at : now;
  }
  std::string DebugName() const override { return "heartbeat"; }

 private:
  Cycle last_ = 0;
};

}  // namespace apiary
