// Interface for cycle-driven hardware blocks.
#ifndef SRC_SIM_CLOCKED_H_
#define SRC_SIM_CLOCKED_H_

#include <string>

#include "src/sim/types.h"

namespace apiary {

// A Clocked object models a synchronous hardware block: it is ticked once per
// simulated clock cycle. The simulator ticks all registered objects in
// registration order; blocks that need two-phase (compute/commit) semantics
// implement it internally by latching outputs.
class Clocked {
 public:
  virtual ~Clocked() = default;

  // Advance one cycle. `now` is the cycle being executed.
  virtual void Tick(Cycle now) = 0;

  // Quiescence hook (see DESIGN.md §"Simulation substrate"). Returns the
  // earliest future cycle at which this block needs Tick() to run again:
  //   - any value <= now  : "active next cycle" (never skip past me),
  //   - a future cycle T  : quiescent until T; Tick() through T-1 would be a
  //                         no-op given no external input,
  //   - kNoActivity       : idle until external input arrives.
  // The simulator re-polls at every *executed* cycle boundary, so a block
  // that receives a message/flit/request during an executed cycle simply
  // reports `now` on the next poll — that is the entire wake protocol.
  // Declaring a cycle too late breaks simulations (missed work); when in
  // doubt, return `now`. The default keeps unported blocks cycle-accurate.
  [[nodiscard]] virtual Cycle NextActivity(Cycle now) const {
    return now;  // Active every cycle unless the block declares otherwise.
  }

  // Called on *every* registered block when the simulator fast-forwards from
  // the current cycle to `resume_cycle` (the next cycle that will actually
  // execute). Implementations must leave the block in exactly the state that
  // ticking through cycles [now, resume_cycle) would have produced — e.g.
  // advance cached clocks to resume_cycle - 1 (the value a serial pre-tick
  // observer would hold) and delta-add per-cycle accumulators.
  virtual void OnFastForward(Cycle resume_cycle) { (void)resume_cycle; }

  // Spatial-partition home for the sharded parallel engine
  // (src/sim/parallel/parallel_simulator.h): the mesh tile whose shard must
  // tick this block when the board is decomposed into domains. Blocks that
  // are anchored to one tile (tiles themselves, and with them their monitor
  // and accelerator) return that tile id; everything else keeps the default
  // kInvalidTile and is ticked serially in the root phase of every executed
  // cycle, before the shard phases run.
  [[nodiscard]] virtual TileId PartitionHome() const { return kInvalidTile; }

  // Human-readable name for tracing and debug dumps.
  virtual std::string DebugName() const { return "clocked"; }
};

}  // namespace apiary

#endif  // SRC_SIM_CLOCKED_H_
