// Abstract memory backend: what the memory/DMA services program against.
// Implemented by the single-channel MemoryController and by the
// multi-channel InterleavedMemory (HBM-style).
#ifndef SRC_MEM_MEMORY_BACKEND_H_
#define SRC_MEM_MEMORY_BACKEND_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/sim/types.h"

namespace apiary {

// Outcome of an injected single-event upset in a DRAM cell.
enum class BitFlipResult : uint8_t {
  kOutOfRange = 0,      // Address beyond capacity; nothing happened.
  kCorrupted = 1,       // Stored data changed (no ECC).
  kCorrectedByEcc = 2,  // SECDED scrubbed the flip; data intact.
};

class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;

  // Asynchronous accesses; `done` fires when the DRAM timing completes.
  // Return false on backpressure (caller retries next cycle).
  virtual bool SubmitRead(uint64_t addr, std::span<uint8_t> out,
                          std::function<void(Cycle)> done) = 0;
  virtual bool SubmitWrite(uint64_t addr, std::span<const uint8_t> data,
                           std::function<void(Cycle)> done) = 0;

  // Zero-latency debug access for tests and initial state.
  virtual void DebugWrite(uint64_t addr, std::span<const uint8_t> data) = 0;
  virtual std::vector<uint8_t> DebugRead(uint64_t addr, uint64_t len) const = 0;

  virtual uint64_t capacity() const = 0;

  // --- Fault injection (src/fault) ---
  // Flips bit `bit % 8` of the byte at `addr` — the stored-charge upset a
  // cosmic ray would cause. With ECC enabled the flip is corrected (SECDED
  // model: isolated single-bit flips never reach the data bus).
  virtual BitFlipResult InjectBitFlip(uint64_t addr, uint32_t bit) {
    (void)addr;
    (void)bit;
    return BitFlipResult::kOutOfRange;
  }
  virtual void SetEccEnabled(bool enabled) { (void)enabled; }
};

}  // namespace apiary

#endif  // SRC_MEM_MEMORY_BACKEND_H_
