#include "src/fpga/pcie.h"

#include <algorithm>
#include <cmath>

namespace apiary {

bool PcieEndpoint::Submit(uint64_t bytes, Completion done) {
  if (queue_.size() >= config_.queue_depth) {
    counters_.Add("pcie.backpressure");
    return false;
  }
  counters_.Add("pcie.transfers");
  counters_.Add("pcie.bytes", bytes);
  queue_.push_back(Transfer{bytes, std::move(done), false, 0});
  return true;
}

void PcieEndpoint::Tick(Cycle now) {
  // Launch: the link serializes transfers back to back; each transfer also
  // pays the one-way crossing latency.
  for (Transfer& t : queue_) {
    if (t.launched) {
      continue;
    }
    const Cycle serialize = std::max<Cycle>(
        1, static_cast<Cycle>(std::ceil(static_cast<double>(t.bytes) / config_.bytes_per_cycle)));
    const Cycle start = std::max(now, link_free_at_);
    link_free_at_ = start + serialize;
    t.complete_at = start + serialize + config_.one_way_cycles;
    t.launched = true;
  }
  // Complete in FIFO order.
  while (!queue_.empty() && queue_.front().launched && queue_.front().complete_at <= now) {
    Transfer t = std::move(queue_.front());
    queue_.pop_front();
    if (t.done) {
      t.done(now);
    }
  }
}

}  // namespace apiary
