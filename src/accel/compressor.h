// Compression accelerator: the "third-party accelerator" of the paper's
// Section 2 pipeline ("the encoding accelerator could be composed with a
// compression accelerator to produce a compressed, encoded video stream").
//
// Implements a real LZ77-family compressor (hash-chain match finder,
// length/distance tokens, literal runs) with a matching decompressor, plus a
// byte-rate compute model so pipeline experiments see realistic occupancy.
#ifndef SRC_ACCEL_COMPRESSOR_H_
#define SRC_ACCEL_COMPRESSOR_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/accel/accel_opcodes.h"
#include "src/core/accelerator.h"
#include "src/stats/summary.h"

namespace apiary {

// --- Pure codec functions (unit-testable). ---
// Primary flat-buffer forms, plus thin overloads so both vector-holding
// tests and PayloadBuf-carrying message handlers call them directly.
std::vector<uint8_t> LzCompress(const uint8_t* input, size_t size);
std::vector<uint8_t> LzDecompress(const uint8_t* compressed, size_t size);
inline std::vector<uint8_t> LzCompress(const std::vector<uint8_t>& input) {
  return LzCompress(input.data(), input.size());
}
inline std::vector<uint8_t> LzDecompress(const std::vector<uint8_t>& compressed) {
  return LzDecompress(compressed.data(), compressed.size());
}
inline std::vector<uint8_t> LzCompress(const PayloadBuf& input) {
  return LzCompress(input.data(), input.size());
}
inline std::vector<uint8_t> LzDecompress(const PayloadBuf& compressed) {
  return LzDecompress(compressed.data(), compressed.size());
}

class CompressorAccelerator : public Accelerator {
 public:
  // `bytes_per_cycle` models the match-finder throughput (4 B/cycle is a
  // typical FPGA LZ engine datapath).
  explicit CompressorAccelerator(uint32_t bytes_per_cycle = 4)
      : bytes_per_cycle_(bytes_per_cycle) {}

  // Pipeline composition: forward compressed output instead of replying.
  void SetNextStage(CapRef endpoint, uint16_t opcode) {
    next_stage_ = endpoint;
    next_opcode_ = opcode;
  }

  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override;

  std::string name() const override { return "compressor"; }
  uint32_t LogicCellCost() const override { return 30000; }

  uint64_t chunks_compressed() const { return chunks_compressed_; }
  uint64_t bytes_in() const { return bytes_in_; }
  uint64_t bytes_out() const { return bytes_out_; }
  const CounterSet& counters() const { return counters_; }

 private:
  struct Job {
    Message request;
    std::vector<uint8_t> output;
    bool decompress = false;
    Cycle done_at;
  };

  uint32_t bytes_per_cycle_;
  CapRef next_stage_ = kInvalidCapRef;
  uint16_t next_opcode_ = 0;
  std::deque<Job> jobs_;
  Cycle engine_free_at_ = 0;
  uint64_t chunks_compressed_ = 0;
  uint64_t bytes_in_ = 0;
  uint64_t bytes_out_ = 0;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_ACCEL_COMPRESSOR_H_
