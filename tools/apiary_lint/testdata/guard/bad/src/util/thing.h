// Bad: guard does not match the path-derived convention.
#ifndef WRONG_GUARD_H_
#define WRONG_GUARD_H_

namespace apiary {}

#endif  // WRONG_GUARD_H_
