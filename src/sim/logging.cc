#include "src/sim/logging.h"

#include <cstdio>

namespace apiary {
namespace {

LogLevel g_level = LogLevel::kOff;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const std::string& msg) {
  if (level < g_level || level == LogLevel::kOff) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace apiary
