#include "src/fpga/ethernet.h"

#include <algorithm>
#include <cmath>

namespace apiary {

uint32_t ExternalNetwork::RegisterEndpoint(ExternalEndpoint* endpoint) {
  endpoints_.push_back(endpoint);
  return static_cast<uint32_t>(endpoints_.size() - 1);
}

void ExternalNetwork::SetLossRate(double rate, uint64_t seed) {
  loss_rate_ = rate;
  loss_rng_ = std::make_unique<Rng>(seed);
}

void ExternalNetwork::StartLossBurst(Cycle now, Cycle duration, double rate,
                                     uint64_t seed) {
  burst_until_ = now + duration;
  burst_rate_ = rate;
  burst_rng_ = std::make_unique<Rng>(seed);
  counters_.Add("extnet.loss_bursts");
}

void ExternalNetwork::Send(EthFrame frame, Cycle now) {
  if (frame.dst_endpoint >= endpoints_.size()) {
    counters_.Add("extnet.dropped_unknown_dst");
    return;
  }
  if (loss_rate_ > 0.0 && loss_rng_ != nullptr && loss_rng_->NextBool(loss_rate_)) {
    counters_.Add("extnet.dropped_loss");
    return;
  }
  if (now < burst_until_ && burst_rng_ != nullptr &&
      burst_rng_->NextBool(burst_rate_)) {
    counters_.Add("extnet.dropped_burst");
    return;
  }
  counters_.Add("extnet.frames");
  counters_.Add("extnet.bytes", frame.payload.size());
  in_flight_.push_back(InFlight{now + latency_cycles_, std::move(frame)});
  // An idle fabric may be parked past this frame's delivery cycle; the
  // sender (MAC, client, hosted baseline — all root-phase) re-arms it.
  RequestWake();
}

void ExternalNetwork::Tick(Cycle now) {
  // Frames are enqueued in deliver-time order because latency is constant.
  while (!in_flight_.empty() && in_flight_.front().deliver_at <= now) {
    InFlight item = std::move(in_flight_.front());
    in_flight_.pop_front();
    endpoints_[item.frame.dst_endpoint]->OnFrame(std::move(item.frame), now);
  }
}

EthernetMacBase::EthernetMacBase(double link_gbps, double clock_mhz)
    : link_gbps_(link_gbps),
      bytes_per_cycle_(link_gbps * 1000.0 / (8.0 * clock_mhz)) {}

Cycle EthernetMacBase::SerializationCycles(size_t bytes) const {
  return std::max<Cycle>(
      1, static_cast<Cycle>(std::ceil(static_cast<double>(bytes) / bytes_per_cycle_)));
}

void EthernetMacBase::OnFrame(EthFrame frame, Cycle now) {
  (void)now;
  if (!link_up()) {
    counters_.Add("mac.rx_dropped_link_down");
    return;
  }
  counters_.Add("mac.rx_frames");
  counters_.Add("mac.rx_bytes", frame.payload.size());
  rx_queue_.push_back(std::move(frame));
}

bool EthernetMacBase::QueueTx(EthFrame frame) {
  // A bounded TX FIFO models the MAC's buffer memory.
  static constexpr size_t kTxQueueFrames = 64;
  if (tx_queue_.size() >= kTxQueueFrames) {
    counters_.Add("mac.tx_backpressure");
    return false;
  }
  counters_.Add("mac.tx_frames");
  counters_.Add("mac.tx_bytes", frame.payload.size());
  tx_queue_.push_back(std::move(frame));
  return true;
}

EthFrame EthernetMacBase::PopRx() {
  EthFrame frame = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  return frame;
}

void EthernetMacBase::Tick(Cycle now) {
  if (tx_in_flight_) {
    if (now < tx_busy_until_) {
      return;
    }
    tx_in_flight_ = false;
    tx_current_.src_endpoint = address_;
    tx_current_.sent_cycle = now;
    if (network_ != nullptr) {
      network_->Send(std::move(tx_current_), now);
    }
  }
  if (!tx_in_flight_ && !tx_queue_.empty() && link_up()) {
    tx_current_ = std::move(tx_queue_.front());
    tx_queue_.pop_front();
    tx_busy_until_ = now + SerializationCycles(tx_current_.payload.size());
    tx_in_flight_ = true;
  }
}

void EthMac10G::AssertCoreReset() {
  reset_asserted_ = true;
  released_ = false;
  locked_ = false;
}

void EthMac10G::ReleaseCoreReset(Cycle now) {
  if (!reset_asserted_) {
    return;  // Protocol violation: release without assert is ignored.
  }
  released_ = true;
  release_cycle_ = now;
}

bool EthMac10G::RxBlockLock(Cycle now) const {
  if (released_ && !locked_ && now >= release_cycle_ + kLockCycles) {
    locked_ = true;
  }
  return locked_;
}

bool EthMac10G::TxFrame(EthFrame frame, Cycle now) {
  if (!RxBlockLock(now)) {
    counters_.Add("mac.tx_dropped_link_down");
    return false;
  }
  return QueueTx(std::move(frame));
}

void EthMac100G::InitCmac(Cycle now) {
  init_done_ = true;
  init_cycle_ = now;
  aligned_ = false;
}

bool EthMac100G::RxAligned(Cycle now) const {
  if (init_done_ && !aligned_ && now >= init_cycle_ + kAlignCycles) {
    aligned_ = true;
  }
  return aligned_;
}

bool EthMac100G::EnqueueTxSegment(EthFrame frame, Cycle now) {
  if (!RxAligned(now) || !flow_control_enabled_) {
    counters_.Add("mac.tx_dropped_link_down");
    return false;
  }
  return QueueTx(std::move(frame));
}

}  // namespace apiary
