// Memory controller: couples a byte-addressable backing store (so simulated
// accelerators move real data) with the DRAM timing model.
#ifndef SRC_MEM_MEMORY_CONTROLLER_H_
#define SRC_MEM_MEMORY_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/mem/dram.h"
#include "src/mem/memory_backend.h"
#include "src/sim/clocked.h"

namespace apiary {

class MemoryController : public Clocked, public MemoryBackend {
 public:
  explicit MemoryController(DramConfig config);

  // Asynchronous read: `out` must stay alive until `done` runs. Returns
  // false on backpressure (bank queue full); the caller retries next cycle.
  bool SubmitRead(uint64_t addr, std::span<uint8_t> out,
                  std::function<void(Cycle)> done) override;

  // Asynchronous write: data is copied into the store immediately (the model
  // has no reorder window); `done` fires when the DRAM timing completes.
  bool SubmitWrite(uint64_t addr, std::span<const uint8_t> data,
                   std::function<void(Cycle)> done) override;

  // Zero-latency debug access for tests and for constructing initial state.
  void DebugWrite(uint64_t addr, std::span<const uint8_t> data) override;
  std::vector<uint8_t> DebugRead(uint64_t addr, uint64_t len) const override;

  BitFlipResult InjectBitFlip(uint64_t addr, uint32_t bit) override;
  void SetEccEnabled(bool enabled) override { ecc_enabled_ = enabled; }
  bool ecc_enabled() const { return ecc_enabled_; }

  void Tick(Cycle now) override { dram_.Tick(now); }
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    return dram_.NextActivity(now);
  }
  std::string DebugName() const override { return "memctl"; }
  // Requests are enqueued by memory-service ticks (shard phase under the
  // parallel engine) — no schedule-visible wake path, so re-poll at every
  // executed-cycle boundary instead of parking on the wheel.
  [[nodiscard]] SchedPolicy SchedulingPolicy() const override {
    return SchedPolicy::kBoundaryPoll;
  }

  uint64_t capacity() const override { return store_.size(); }
  const CounterSet& counters() const { return dram_.counters(); }
  DramChannel& dram() { return dram_; }

 private:
  bool InBounds(uint64_t addr, uint64_t len) const {
    return addr <= store_.size() && len <= store_.size() - addr;
  }

  DramChannel dram_;
  std::vector<uint8_t> store_;
  bool ecc_enabled_ = false;
};

}  // namespace apiary

#endif  // SRC_MEM_MEMORY_CONTROLLER_H_
