// Good: Cycle-returning quiescence hooks are [[nodiscard]]; Cycle as a
// parameter type is not a minting declaration.
#ifndef SRC_SIM_CLOCKED_H_
#define SRC_SIM_CLOCKED_H_

namespace apiary {

using Cycle = unsigned long long;

class Clocked {
 public:
  virtual void Tick(Cycle now) = 0;
  [[nodiscard]] virtual Cycle NextActivity(Cycle now) const;
  virtual void OnFastForward(Cycle resume_cycle);
};

}  // namespace apiary

#endif  // SRC_SIM_CLOCKED_H_
