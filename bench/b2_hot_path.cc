// B2: hot-path allocation discipline under a saturated mesh.
//
// The executed-cycle message path is supposed to be allocation-free in
// steady state: packets come from the PacketPool freelist, payload bytes
// ride in PayloadBuf (inline up to 64B, pooled arena chunks beyond), and
// serialization moves the payload through the wire stack instead of copying
// it. This harness drives a saturated 4x4 mesh — several closed-loop echo
// client/service pairs, mixed small (inline-tier) and large (arena-tier)
// payloads — and measures:
//   * end-to-end throughput (messages per wall-second, Mcycles/s);
//   * steady-state heap allocations per delivered message, counted from the
//     pool/arena ledgers after a warmup window (target: ~0);
//   * pool reuse ratio after warmup (target: >= 99%).
// The `--no-pool` ablation re-runs the identical seeded scenario with the
// pool and arena disabled and the legacy allocate-and-copy serialization
// shape (SetMessageLegacyAllocMode) — the pre-optimization cost model. The
// two runs must agree on every traffic count (the pooled path is
// byte-identical by construction; tests/determinism_test.cc holds the
// stronger trace-level version of this), so the speedup column compares
// like with like.
//
// `--smoke` shrinks the run for CI; `--json <path>` emits the numbers CI
// archives; `--no-pool` runs only the ablation configuration.
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/core/kernel.h"
#include "src/core/message.h"
#include "src/noc/packet_pool.h"
#include "src/sim/parallel/parallel_simulator.h"
#include "src/sim/payload_buf.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

constexpr uint32_t kPairs = 4;           // Client/echo pairs spread over the mesh.
constexpr uint32_t kWindow = 16;         // Outstanding requests per client.
constexpr uint32_t kSmallPayload = 48;   // Inline tier (<= PayloadBuf::kInlineBytes).
constexpr uint32_t kLargePayload = 240;  // Arena tier.

// Closed-loop echo driver: keeps `window` requests outstanding forever, so
// the mesh never goes quiescent — every cycle is an executed cycle.
class SaturatingClient : public Accelerator {
 public:
  SaturatingClient(ServiceId svc, uint32_t payload_bytes)
      : svc_(svc), payload_bytes_(payload_bytes) {}

  void Tick(TileApi& api) override {
    while (in_flight_ < kWindow) {
      Message msg;
      msg.opcode = kOpEcho;
      msg.payload.assign(payload_bytes_, static_cast<uint8_t>(in_flight_));
      msg.request_id = ++next_id_;
      if (!api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
        break;
      }
      ++in_flight_;
      ++sent_;
    }
  }
  void OnMessage(const Message& msg, TileApi& api) override {
    (void)api;
    if (msg.kind == MsgKind::kResponse) {
      --in_flight_;
      ++received_;
    }
  }
  std::string name() const override { return "saturating_client"; }
  uint32_t LogicCellCost() const override { return 1000; }

  uint64_t sent() const { return sent_; }
  uint64_t received() const { return received_; }

 private:
  ServiceId svc_;
  uint32_t payload_bytes_;
  uint32_t in_flight_ = 0;
  uint64_t next_id_ = 0;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

struct RunResult {
  double wall_seconds = 0;
  uint64_t sent = 0;
  uint64_t received = 0;   // Delivered responses inside the measured window.
  uint64_t flits = 0;      // Flits routed inside the measured window.
  uint64_t acquires = 0;
  uint64_t pool_hits = 0;
  uint64_t heap_allocs = 0;      // Pool misses inside the measured window.
  uint64_t arena_allocs = 0;     // Arena chunk news inside the measured window.
  double reuse_pct = 0;          // pool_hits / acquires.
  double allocs_per_msg = 0;     // (heap_allocs + arena_allocs) / received.
  double msgs_per_wall_sec = 0;
  double mcycles_per_sec = 0;
  uint64_t ticked_blocks = 0;    // Block-ticks issued inside the measured window.
  uint64_t executed_cycles = 0;  // Cycles actually executed inside the window.
  uint64_t wheel_wakes = 0;
  uint64_t wake_calls = 0;
  uint64_t block_count = 0;
  // Block-ticks issued as a fraction of what a tick-everything loop would
  // have issued over the same executed cycles. Saturated traffic should sit
  // near 1.0 — the active set buys nothing here, which is exactly what B2's
  // overhead guardrail wants to measure.
  double ActiveFraction() const {
    const double denom =
        static_cast<double>(executed_cycles) * static_cast<double>(block_count);
    return denom > 0 ? static_cast<double>(ticked_blocks) / denom : 0;
  }
};

RunResult RunConfig(bool pooled, Cycle warmup_cycles, Cycle measure_cycles,
                    uint32_t threads) {
  BenchBoard bb;
  // Pools and arenas are per-simulator domain state: toggle this board's
  // mesh pool and this sim's context arena, not process-wide globals.
  bb.board.mesh().pool().SetEnabled(pooled);
  bb.sim.context().arena().SetEnabled(pooled);
  SetMessageLegacyAllocMode(!pooled);

  ApiaryOs& os = bb.os;
  const AppId app = os.CreateApp("b2");

  std::vector<SaturatingClient*> clients;
  for (uint32_t i = 0; i < kPairs; ++i) {
    ServiceId echo_svc = 0;
    os.Deploy(app, std::make_unique<EchoAccelerator>(/*service_cycles=*/0), &echo_svc);
    // Half the pairs exercise the inline tier, half the arena tier.
    const uint32_t bytes = (i % 2 == 0) ? kSmallPayload : kLargePayload;
    auto client = std::make_unique<SaturatingClient>(echo_svc, bytes);
    clients.push_back(client.get());
    const TileId ct = os.Deploy(app, std::move(client));
    (void)os.GrantSendToService(ct, echo_svc);
  }

  // `--threads N` drives the run through the sharded engine. The partition
  // gives every shard its own pool and arena; the pooled/legacy toggle must
  // cover those domains too, or the ablation would compare mixed modes.
  std::optional<ParallelSimulator> psim;
  if (threads > 0) {
    psim.emplace(&bb.sim, &bb.board.mesh(), ParallelConfig{/*shards=*/0, threads});
    for (uint32_t sh = 0; sh < psim->shards(); ++sh) {
      PacketPool::ForContext(*psim->shard_context(sh)).SetEnabled(pooled);
      psim->shard_context(sh)->arena().SetEnabled(pooled);
    }
  }
  auto run = [&](Cycle end) {
    if (psim.has_value()) {
      psim->Run(end);
    } else {
      bb.sim.Run(end);
    }
  };

  // Warm up: the pool grows to the traffic's high-water mark, the arena
  // freelists fill, queues reach steady occupancy. Everything after the
  // ledger reset is steady state.
  run(warmup_cycles);
  bb.board.mesh().ResetPoolStats();
  bb.sim.context().arena().ResetStats();
  if (psim.has_value()) {
    for (uint32_t sh = 0; sh < psim->shards(); ++sh) {
      psim->shard_context(sh)->arena().ResetStats();
    }
  }
  uint64_t sent0 = 0;
  uint64_t received0 = 0;
  for (const SaturatingClient* c : clients) {
    sent0 += c->sent();
    received0 += c->received();
  }
  const uint64_t flits0 = bb.board.mesh().TotalFlitsRouted();
  const uint64_t ticked0 = bb.sim.ticked_blocks();
  const uint64_t executed0 = bb.sim.executed_cycles();
  const uint64_t wheel0 = bb.sim.wheel_wakes();
  const uint64_t wake0 = bb.sim.wake_calls();

  // Host wall time is the measurand; it never feeds back into simulated
  // state, so determinism is unaffected.
  const auto t0 = std::chrono::steady_clock::now();  // NOLINT(apiary-determinism): host wall time is the measurand, never fed back into sim state
  run(measure_cycles);
  const auto t1 = std::chrono::steady_clock::now();  // NOLINT(apiary-determinism): host wall time is the measurand, never fed back into sim state

  RunResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const SaturatingClient* c : clients) {
    r.sent += c->sent();
    r.received += c->received();
  }
  r.sent -= sent0;
  r.received -= received0;
  r.flits = bb.board.mesh().TotalFlitsRouted() - flits0;
  r.ticked_blocks = bb.sim.ticked_blocks() - ticked0;
  r.executed_cycles = bb.sim.executed_cycles() - executed0;
  r.wheel_wakes = bb.sim.wheel_wakes() - wheel0;
  r.wake_calls = bb.sim.wake_calls() - wake0;
  r.block_count = bb.sim.block_count();

  const PacketPoolStats pool = bb.board.mesh().AggregatePoolStats();
  r.acquires = pool.acquires;
  r.pool_hits = pool.pool_hits;
  r.heap_allocs = pool.heap_allocs;
  r.arena_allocs = bb.sim.context().arena().stats().chunk_allocs;
  if (psim.has_value()) {
    for (uint32_t sh = 0; sh < psim->shards(); ++sh) {
      r.arena_allocs += psim->shard_context(sh)->arena().stats().chunk_allocs;
    }
  }
  r.reuse_pct =
      r.acquires > 0 ? 100.0 * static_cast<double>(r.pool_hits) / static_cast<double>(r.acquires)
                     : 0;
  r.allocs_per_msg = r.received > 0 ? static_cast<double>(r.heap_allocs + r.arena_allocs) /
                                          static_cast<double>(r.received)
                                    : 0;
  r.msgs_per_wall_sec =
      r.wall_seconds > 0 ? static_cast<double>(r.received) / r.wall_seconds : 0;
  r.mcycles_per_sec =
      r.wall_seconds > 0 ? static_cast<double>(measure_cycles) / r.wall_seconds / 1e6 : 0;

  // Leave the process in the default (pooled) configuration; the pool and
  // arena die with this run's board and context, nothing else to restore.
  SetMessageLegacyAllocMode(false);
  return r;
}

void EmitRow(BenchJson& json, const char* config, const RunResult& r) {
  json.BeginRow();
  json.Metric("config", config);
  json.Metric("wall_seconds", r.wall_seconds);
  json.Metric("mcycles_per_sec", r.mcycles_per_sec);
  json.Metric("messages", r.received);
  json.Metric("msgs_per_wall_sec", r.msgs_per_wall_sec);
  json.Metric("flits", r.flits);
  json.Metric("packet_acquires", r.acquires);
  json.Metric("pool_hits", r.pool_hits);
  json.Metric("pool_reuse_pct", r.reuse_pct);
  json.Metric("heap_allocs", r.heap_allocs);
  json.Metric("arena_chunk_allocs", r.arena_allocs);
  json.Metric("allocs_per_msg", r.allocs_per_msg);
  json.Metric("ticked_blocks", r.ticked_blocks);
  json.Metric("executed_cycles", r.executed_cycles);
  json.Metric("active_fraction", r.ActiveFraction());
  json.Metric("wheel_wakes", r.wheel_wakes);
  json.Metric("wake_calls", r.wake_calls);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const bool no_pool_only = HasFlag(argc, argv, "--no-pool");
  const uint32_t threads = static_cast<uint32_t>(IntArg(argc, argv, "--threads", 0));
  const Cycle warmup_cycles = smoke ? 200'000 : 1'000'000;
  const Cycle measure_cycles = smoke ? 800'000 : 8'000'000;

  std::printf("B2: hot-path allocation discipline, saturated 4x4 mesh\n");
  std::printf("(%u closed-loop pairs, window %u, %u/%uB payloads; "
              "%llu warmup + %llu measured cycles)\n\n",
              kPairs, kWindow, kSmallPayload, kLargePayload,
              static_cast<unsigned long long>(warmup_cycles),
              static_cast<unsigned long long>(measure_cycles));

  BenchJson json("b2_hot_path");
  json.Param("warmup_cycles", static_cast<uint64_t>(warmup_cycles));
  json.Param("measure_cycles", static_cast<uint64_t>(measure_cycles));
  json.Param("pairs", static_cast<uint64_t>(kPairs));
  json.Param("window", static_cast<uint64_t>(kWindow));
  json.Param("threads", static_cast<uint64_t>(threads));
  json.Param("smoke", smoke ? 1 : 0);
  if (threads > 0) {
    std::printf("engine: ParallelSimulator, %u worker thread(s)\n\n", threads);
  }

  Table table("B2: steady-state hot path, pooled vs legacy alloc");
  table.SetHeader({"config", "Mcyc/s", "msgs", "msgs/wall-s", "reuse %",
                   "allocs/msg"});

  int rc = 0;
  const RunResult legacy =
      RunConfig(/*pooled=*/false, warmup_cycles, measure_cycles, threads);
  table.AddRow({"no-pool", Table::Num(legacy.mcycles_per_sec, 1), Table::Int(legacy.received),
                Table::Num(legacy.msgs_per_wall_sec, 0), "-",
                Table::Num(legacy.allocs_per_msg, 2)});
  EmitRow(json, "no-pool", legacy);

  if (!no_pool_only) {
    const RunResult pooled =
        RunConfig(/*pooled=*/true, warmup_cycles, measure_cycles, threads);
    table.AddRow({"pooled", Table::Num(pooled.mcycles_per_sec, 1), Table::Int(pooled.received),
                  Table::Num(pooled.msgs_per_wall_sec, 0), Table::Num(pooled.reuse_pct, 2),
                  Table::Num(pooled.allocs_per_msg, 4)});
    EmitRow(json, "pooled", pooled);

    // Pooling must be invisible to the simulation: identical traffic, or
    // the comparison is meaningless and the run is wrong.
    if (pooled.sent != legacy.sent || pooled.received != legacy.received ||
        pooled.flits != legacy.flits) {
      std::fprintf(stderr,
                   "B2 FAIL: configs diverged (sent %llu vs %llu, recv %llu vs "
                   "%llu, flits %llu vs %llu)\n",
                   static_cast<unsigned long long>(pooled.sent),
                   static_cast<unsigned long long>(legacy.sent),
                   static_cast<unsigned long long>(pooled.received),
                   static_cast<unsigned long long>(legacy.received),
                   static_cast<unsigned long long>(pooled.flits),
                   static_cast<unsigned long long>(legacy.flits));
      rc = 1;
    }
    const double speedup = legacy.msgs_per_wall_sec > 0
                               ? pooled.msgs_per_wall_sec / legacy.msgs_per_wall_sec
                               : 0;
    json.Param("speedup", speedup);
    std::printf("speedup (pooled / no-pool wall throughput): %.2fx\n", speedup);
    std::printf("steady-state pool reuse: %.2f%%, allocations/message: %.4f\n\n",
                pooled.reuse_pct, pooled.allocs_per_msg);
  }

  table.Print();

  const std::string json_path = JsonPathArg(argc, argv);
  if (!json_path.empty() && !json.WriteFile(json_path)) {
    return 1;
  }
  return rc;
}
