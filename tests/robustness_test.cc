// Robustness batch: adaptive load balancing, pipelined accelerator engines,
// concurrent DMA, monitor error-path loops, and miscellaneous hard edges.
#include <gtest/gtest.h>

#include "src/accel/compressor.h"
#include "src/accel/echo.h"
#include "src/accel/faulty.h"
#include "src/accel/video_encoder.h"
#include "src/accel/kv_store.h"
#include "src/core/service_ids.h"
#include "src/services/dma_service.h"
#include "src/services/load_balancer.h"
#include "src/services/memory_service.h"
#include "src/workload/frame_source.h"
#include "src/workload/kv_workload.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

TEST(LoadBalancerAdaptiveTest, LeastOutstandingAvoidsSlowReplica) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("svc");
  auto* lb = new LoadBalancer();
  ServiceId lb_svc = 0;
  const TileId lt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(lb), &lb_svc);
  auto* fast = new EchoAccelerator(10);
  auto* slow = new EchoAccelerator(2000);  // 200x slower replica.
  ServiceId fs = 0;
  ServiceId ss = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(fast), &fs);
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(slow), &ss);
  lb->AddBackend(tb.os.GrantSendToService(lt, fs));
  lb->AddBackend(tb.os.GrantSendToService(lt, ss));
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, lb_svc);
  for (int i = 0; i < 40; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    probe->EnqueueSend(msg, cap);
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() >= 40; }, 1'000'000));
  // Least-outstanding should route the bulk of the work to the fast replica.
  EXPECT_GT(fast->served(), 3 * slow->served());
}

TEST(VideoEncoderTest, SerialEngineQueuesFrames) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("v");
  auto* enc = new VideoEncoderAccelerator(/*cycles_per_block=*/100, 50);
  ServiceId svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(enc), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  // Two back-to-back 16x16 frames: 4 blocks x 100 = 400 cycles each, serial.
  for (int i = 0; i < 2; ++i) {
    const auto pixels = GenerateFrame(16, 16, 1, i);
    Message msg;
    msg.opcode = kOpEncodeFrame;
    msg.payload = FrameToRequestPayload(16, 16, pixels);
    probe->EnqueueSend(msg, cap);
  }
  const Cycle start = tb.sim.now();
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() >= 2; }, 100000));
  EXPECT_GE(tb.sim.now() - start, 800u);  // Strictly serial engine.
  EXPECT_EQ(enc->frames_encoded(), 2u);
}

TEST(CompressorPipelineTest, ForwardsToNextStageInsteadOfReplying) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("z");
  auto* sink = new ProbeAccelerator();
  ServiceId sink_svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(sink), &sink_svc);
  auto* comp = new CompressorAccelerator(64);
  ServiceId comp_svc = 0;
  const TileId ct = tb.os.Deploy(app, std::unique_ptr<Accelerator>(comp), &comp_svc);
  comp->SetNextStage(tb.os.GrantSendToService(ct, sink_svc), kOpEcho);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, comp_svc);
  Message msg;
  msg.opcode = kOpCompress;
  msg.payload.assign(200, 'x');
  probe->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !sink->received.empty(); }, 100000));
  // The requester got nothing; the next stage got the compressed chunk.
  EXPECT_TRUE(probe->received.empty());
  EXPECT_EQ(LzDecompress(sink->received[0].payload), msg.payload);
  // Decompress requests still reply to the requester even in pipeline mode.
  Message back;
  back.opcode = kOpDecompress;
  back.payload = sink->received[0].payload;
  probe->EnqueueSend(back, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 100000));
  EXPECT_EQ(probe->received[0].payload, msg.payload);
}

TEST(DmaConcurrencyTest, MultipleCopiesCompleteCorrectly) {
  TestBoard tb;
  tb.os.DeployService(kMemoryService,
                      std::make_unique<MemoryService>(&tb.os, &tb.board.memory()));
  auto* dma = new DmaService(&tb.board.memory());
  tb.os.DeployService(kDmaService, std::unique_ptr<Accelerator>(dma));
  AppId app = tb.os.CreateApp("u");
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef to_dma = tb.os.GrantSendToService(pt, kDmaService);
  const CapRef src = *tb.os.GrantMemory(pt, 64 << 10, kRightRead | kRightWrite);
  const CapRef dst = *tb.os.GrantMemory(pt, 64 << 10, kRightRead | kRightWrite);
  const Segment src_seg = tb.os.monitor(pt).cap_table().Lookup(src)->segment;
  const Segment dst_seg = tb.os.monitor(pt).cap_table().Lookup(dst)->segment;
  // Four interleaved 8KiB copies at distinct offsets.
  std::vector<std::vector<uint8_t>> patterns;
  for (int i = 0; i < 4; ++i) {
    std::vector<uint8_t> p(8 << 10);
    for (size_t k = 0; k < p.size(); ++k) {
      p[k] = static_cast<uint8_t>(k * (i + 3));
    }
    tb.board.memory().DebugWrite(src_seg.base + static_cast<uint64_t>(i) * (8 << 10), p);
    patterns.push_back(std::move(p));
    Message copy;
    copy.opcode = kOpDmaCopy;
    PutU64(copy.payload, static_cast<uint64_t>(i) * (8 << 10));
    PutU64(copy.payload, static_cast<uint64_t>(3 - i) * (8 << 10));  // Reversed layout.
    PutU32(copy.payload, 8 << 10);
    probe->EnqueueSend(copy, to_dma, src, dst);
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() >= 4; }, 2'000'000));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tb.board.memory().DebugRead(
                  dst_seg.base + static_cast<uint64_t>(3 - i) * (8 << 10), 8 << 10),
              patterns[i]);
  }
}

TEST(MonitorErrorPathTest, ErrorBouncesDoNotLoop) {
  // A sends a request to a stopped tile; the bounce is a response. Responses
  // to the bounce (which A never sends) cannot occur, and the stopped tile's
  // monitor never bounces responses — so no storm.
  TestBoard tb;
  AppId app = tb.os.CreateApp("a");
  ServiceId svc = 0;
  auto* dead = new EchoAccelerator(0);
  const TileId dt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(dead), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  tb.sim.Run(3);
  tb.os.FailStop(dt, "x");
  Message msg;
  msg.opcode = kOpEcho;
  probe->EnqueueSend(msg, cap);
  tb.sim.Run(5000);
  // Exactly one bounce, no further traffic.
  EXPECT_EQ(tb.os.monitor(dt).counters().Get("monitor.error_bounces"), 1u);
  EXPECT_EQ(probe->received.size(), 1u);
  EXPECT_EQ(probe->received[0].status, MsgStatus::kDestFailed);
}

TEST(KvParallelTest, ManyOutstandingGetsAllCorrect) {
  TestBoard tb;
  tb.os.DeployService(kMemoryService,
                      std::make_unique<MemoryService>(&tb.os, &tb.board.memory()));
  AppId app = tb.os.CreateApp("kv");
  auto* kv = new KvStoreAccelerator(1 << 18, 4096);
  ServiceId svc = 0;
  const TileId kt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(kv), &svc);
  (void)tb.os.GrantSendToService(kt, kMemoryService);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  tb.sim.RunUntil([&] { return kv->ready(); }, 50000);

  // Load 8 keys with distinct values, then GET them all back-to-back so
  // several DRAM reads are in flight at once (bank parallel completion).
  for (int i = 0; i < 8; ++i) {
    Message put;
    put.opcode = kOpKvPut;
    put.payload = MakeKvPutPayload("k" + std::to_string(i),
                                   std::vector<uint8_t>(50 + i, static_cast<uint8_t>(i)));
    probe->EnqueueSend(put, cap);
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() >= 8; }, 500000));
  probe->received.clear();
  for (int i = 0; i < 8; ++i) {
    Message get;
    get.opcode = kOpKvGet;
    get.payload = MakeKvGetPayload("k" + std::to_string(i));
    probe->EnqueueSend(get, cap);
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() >= 8; }, 500000));
  // Values must match sizes/content regardless of completion interleaving.
  int matched = 0;
  for (const auto& r : probe->received) {
    ASSERT_EQ(r.status, MsgStatus::kOk);
    const uint8_t tag = r.payload.empty() ? 0xff : r.payload[0];
    ASSERT_LT(tag, 8);
    EXPECT_EQ(r.payload, std::vector<uint8_t>(50 + tag, tag));
    ++matched;
  }
  EXPECT_EQ(matched, 8);
}

TEST(RouterCountersTest, StallsVisibleUnderContention) {
  Simulator sim;
  Mesh mesh(MeshConfig{4, 1, 2, 512});  // Tiny buffers force stalls.
  sim.Register(&mesh);
  // Two sources hammer one sink.
  for (int i = 0; i < 30; ++i) {
    PacketRef a(new NocPacket());
    a->src = 0;
    a->dst = 3;
    a->payload.assign(128, 1);
    mesh.ni(0).Inject(a, sim.now());
    PacketRef b(new NocPacket());
    b->src = 1;
    b->dst = 3;
    b->payload.assign(128, 1);
    mesh.ni(1).Inject(b, sim.now());
  }
  sim.Run(5000);
  const CounterSet agg = mesh.AggregateCounters();
  EXPECT_GT(agg.Get("router.stalls") + agg.Get("router.vc_blocked"), 0u);
  EXPECT_GT(mesh.TotalFlitsRouted(), 0u);
}

TEST(WedgeTest, HealthyPhaseServes) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("a");
  auto* wedge = new WedgeAccelerator(3, kInvalidCapRef, 1000);
  ServiceId svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(wedge), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  for (int i = 0; i < 5; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    probe->EnqueueSend(msg, cap);
  }
  tb.sim.Run(20000);
  // Exactly the 3 healthy requests were answered; the rest vanished into the
  // wedge (no watchdog deployed here, so nothing bounces).
  EXPECT_EQ(probe->received.size(), 3u);
  EXPECT_TRUE(wedge->wedged());
}

}  // namespace
}  // namespace apiary
